#!/usr/bin/env bash
# Repository CI: build, full test suite (the integration-test profile runs
# the coherence invariant checker — see tests/invariant_checker.rs and
# tests/fault_injection.rs), lints, and formatting. Everything runs offline
# against the vendored crates.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --offline

echo "== tests (workspace) =="
cargo test -q --workspace --offline

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== rustfmt (check) =="
cargo fmt --check

echo "CI OK"
