#!/usr/bin/env bash
# Repository CI. Two stages, both offline against the vendored crates:
#
#   ./ci.sh checks   build, full test suite (the integration-test profile
#                    runs the coherence invariant checker — see
#                    tests/invariant_checker.rs and tests/fault_injection.rs),
#                    lints, and formatting
#   ./ci.sh smoke    kill/resume drill: SIGKILL a tiny benchmark campaign
#                    mid-flight, resume it, and require the resumed report
#                    to be bit-identical to an uninterrupted reference
#   ./ci.sh bench    build and smoke-run the criterion hot-path suite
#                    (--test mode: every benchmark body executes once, no
#                    timing gate), then emit BENCH_hotpath.json at tiny
#                    scale so the workflow can archive it
#   ./ci.sh obs      observability gate: golden-stats snapshots,
#                    cross-protocol consistency checks, the release-mode
#                    throughput guard against BENCH_hotpath.json, and an
#                    end-to-end trace export validated with obs_lint
#                    (obs_trace_ci/ is left behind for the workflow to
#                    archive)
#   ./ci.sh lanes    lane-determinism gate: the full benchmark campaign
#                    (every kernel, both protocols, invariant checker on)
#                    runs once sequentially and once under 4 event lanes;
#                    the reports and every result record (stats + memory
#                    digests) must be byte-identical
#   ./ci.sh serve    simulation-service gate: the serve wire-protocol and
#                    cache/soak test suites, then a release loadgen run
#                    against an in-process server over a Unix socket —
#                    every response digest-checked against a direct
#                    simulation, the request timeline validated with
#                    obs_lint, and serve_metrics_ci.json left behind for
#                    the workflow to archive
#   ./ci.sh chaos    fault-tolerance gate: the same conformance suite
#                    driven through the seeded fault-injecting proxy
#                    (torn frames, partial writes, byte delays,
#                    slow-loris, resets) by resilient clients — once
#                    with a Unix-socket upstream and once over TCP.
#                    Every response must still match its oracle digest,
#                    the drained server must show no leaked work, the
#                    cache must respect its byte budget, the timeline is
#                    obs_lint-validated, and chaos_metrics_ci.json is
#                    left behind for the workflow to archive
#   ./ci.sh durable  durability gate: a cold loadgen run populates the
#                    crash-safe disk tier, the server is SIGKILLed and
#                    restarted on the same directory, and a warm run must
#                    serve every repeat bit-identically from disk with
#                    zero re-simulations (durable_metrics_ci.json is left
#                    behind for the workflow to archive); then the full
#                    conformance suite runs once more with seeded storage
#                    faults (torn writes, ENOSPC, corrupt reads, crashes
#                    around rename) injected under the disk tier
#   ./ci.sh protocols  protocol-zoo gate: the full tiny campaign runs once
#                    with --protocols all and the invariant checker on
#                    (the campaign layer fails the run if any protocol's
#                    memory image diverges or any invariant trips), the
#                    protocol-zoo differential suite and per-protocol
#                    golden stats run, and a per-protocol replay report
#                    is written into protocols_report_ci/ for the
#                    workflow to archive; bench_guard re-confirms the
#                    MESI/WARDen replay throughput envelope
#   ./ci.sh fuzz     differential fuzz gate: the workload-generator test
#                    suites, then 50 seeded synthetic workloads × every
#                    registered protocol with the invariant checker on —
#                    zero disagreements required — then the same gate with
#                    a deliberately mutated protocol, which must be caught
#                    and its shrunk reproducer archived + replayed
#                    (fuzz_ci/ is left behind for the workflow to
#                    archive); finally the coherence-atlas sweep is
#                    regenerated and diffed against the committed
#                    figures/coherence_atlas_tiny.* files
#   ./ci.sh          all of the above
set -euo pipefail
cd "$(dirname "$0")"

checks() {
  echo "== build (release) =="
  cargo build --release --offline

  echo "== tests (workspace) =="
  cargo test -q --workspace --offline

  echo "== clippy (deny warnings) =="
  cargo clippy --workspace --all-targets --offline -- -D warnings

  echo "== rustfmt (check) =="
  cargo fmt --check
}

# Completed-run records in a campaign directory (0 before the supervisor
# has created the directory).
count_records() {
  if [ -d "$1/records" ]; then
    find "$1/records" -name '*.rec' | wc -l
  else
    echo 0
  fi
}

smoke() {
  echo "== kill/resume smoke test =="
  cargo build -q --release --offline -p warden-bench --bin all_figures
  local bin=target/release/all_figures
  local dir
  dir="$(mktemp -d)"

  # Uninterrupted reference campaign.
  "$bin" --scale tiny --quiet --campaign-dir "$dir/ref" >"$dir/ref.out" 2>/dev/null
  local total
  total=$(count_records "$dir/ref")

  # Victim: the same campaign on one worker, SIGKILLed once a few runs have
  # been recorded. Retry in case the kill lands after completion (the tiny
  # campaign only takes a second or two).
  local n=0 pid attempt
  for attempt in 1 2 3 4 5; do
    rm -rf "$dir/victim"
    "$bin" --scale tiny --quiet --jobs 1 --campaign-dir "$dir/victim" \
      >/dev/null 2>&1 &
    pid=$!
    while kill -0 "$pid" 2>/dev/null; do
      n=$(count_records "$dir/victim")
      if [ "$n" -ge 5 ]; then
        break
      fi
      sleep 0.01
    done
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    n=$(count_records "$dir/victim")
    if [ "$n" -gt 0 ] && [ "$n" -lt "$total" ]; then
      echo "   SIGKILLed mid-flight with $n/$total runs recorded (attempt $attempt)"
      break
    fi
    echo "   kill landed too late ($n/$total records), retrying"
    n=0
  done
  if [ "$n" -le 0 ] || [ "$n" -ge "$total" ]; then
    echo "FAILED: could not SIGKILL the campaign mid-flight" >&2
    rm -rf "$dir"
    exit 1
  fi

  # Resume: the identical command must reuse the survivors' records, finish
  # the rest, and print a bit-identical report.
  "$bin" --scale tiny --quiet --jobs 1 --campaign-dir "$dir/victim" \
    >"$dir/resumed.out" 2>/dev/null
  if ! diff -u "$dir/ref.out" "$dir/resumed.out"; then
    echo "FAILED: resumed report differs from the uninterrupted reference" >&2
    rm -rf "$dir"
    exit 1
  fi
  if [ "$(count_records "$dir/victim")" -ne "$total" ]; then
    echo "FAILED: resumed campaign is missing result records" >&2
    rm -rf "$dir"
    exit 1
  fi
  if ! grep -q '"status": "done"' "$dir/victim/manifest.json"; then
    echo "FAILED: manifest.json records no completed runs" >&2
    rm -rf "$dir"
    exit 1
  fi
  echo "   resumed report is bit-identical to the uninterrupted reference"
  rm -rf "$dir"
}

bench() {
  echo "== hot-path criterion suite (smoke, --test mode) =="
  cargo bench -q --offline -p warden-bench --bench hotpath -- --test

  echo "== hot-path throughput report (tiny scale) =="
  cargo build -q --release --offline -p warden-bench --bin bench_baseline
  target/release/bench_baseline --scale tiny --runs 3 --out BENCH_hotpath_ci.json
  test -s BENCH_hotpath_ci.json
  echo "   wrote BENCH_hotpath_ci.json"
}

obs() {
  echo "== golden-stats snapshots + cross-protocol consistency =="
  cargo test -q --offline --test golden_stats --test stats_consistency

  echo "== throughput guard (obs compiled in, disabled) =="
  cargo test -q --release --offline -p warden-bench --test bench_guard

  echo "== trace export + validation =="
  cargo build -q --release --offline -p warden-bench \
    --bin replay --bin record --bin obs_lint
  local dir=obs_trace_ci
  rm -rf "$dir"
  mkdir -p "$dir"
  target/release/record suffix-array "$dir/suffix-array.trace" --scale tiny
  target/release/replay "$dir/suffix-array.trace" dual-socket --obs "$dir" \
    >/dev/null
  target/release/obs_lint "$dir"/*.trace.json
  test -s "$dir/suffix_array-warden.epochs.txt"
  echo "   exported and validated $(ls "$dir"/*.trace.json | wc -l) traces in $dir/"
}

lanes() {
  echo "== lane determinism: --lanes 4 campaign vs sequential =="
  cargo build -q --release --offline -p warden-bench --bin all_figures
  local bin=target/release/all_figures
  local dir
  dir="$(mktemp -d)"

  # The same full campaign (every benchmark, both protocols, the SWMR
  # invariant checker on) twice: sequential and under 4 event lanes.
  "$bin" --scale tiny --quiet --check --lanes 1 --campaign-dir "$dir/seq" \
    >"$dir/seq.out" 2>/dev/null
  "$bin" --scale tiny --quiet --check --lanes 4 --campaign-dir "$dir/laned" \
    >"$dir/laned.out" 2>/dev/null

  # The printed report and every result record (simulation statistics,
  # energy, memory-image digests — the record fingerprint deliberately
  # excludes the lane count) must be byte-identical.
  if ! diff -u "$dir/seq.out" "$dir/laned.out"; then
    echo "FAILED: laned campaign report differs from the sequential one" >&2
    rm -rf "$dir"
    exit 1
  fi
  if ! diff -r "$dir/seq/records" "$dir/laned/records"; then
    echo "FAILED: laned result records differ from the sequential ones" >&2
    rm -rf "$dir"
    exit 1
  fi
  echo "   laned campaign is bit-identical to the sequential reference" \
    "($(find "$dir/seq/records" -name '*.rec' | wc -l) records compared)"
  rm -rf "$dir"
}

serve() {
  echo "== serve protocol + cache + soak test suites =="
  cargo test -q --offline -p warden-serve
  cargo test -q --offline --test proptest_serve --test serve_soak

  echo "== loadgen conformance run (in-process server, Unix socket) =="
  cargo build -q --release --offline -p warden-bench --bin loadgen --bin obs_lint
  local dir=serve_ci
  rm -rf "$dir"
  mkdir -p "$dir"
  target/release/loadgen --spawn --uds "$dir/warden.sock" --scale tiny \
    --clients 8 --iters 6 --quiet \
    --out serve_metrics_ci.json --obs "$dir"
  target/release/obs_lint "$dir/loadgen.trace.json"
  test -s serve_metrics_ci.json
  # The run must have exercised the cache: a zero hit count would mean the
  # content addressing silently stopped working.
  if ! grep -qE '"cache_hits": [1-9]' serve_metrics_ci.json; then
    echo "FAILED: loadgen reports no cache hits" >&2
    exit 1
  fi
  echo "   wrote serve_metrics_ci.json and validated $dir/loadgen.trace.json"
}

chaos() {
  echo "== chaos conformance (seeded fault-injecting proxy) =="
  cargo build -q --release --offline -p warden-bench --bin loadgen --bin obs_lint
  local dir=chaos_ci
  rm -rf "$dir"
  mkdir -p "$dir"

  echo "   -- Unix-socket upstream --"
  target/release/loadgen --spawn --chaos --chaos-seed 7 \
    --uds "$dir/warden.sock" --scale tiny --clients 8 --iters 6 --quiet \
    --request-deadline-ms 30000 --cache-budget 65536 \
    --out chaos_metrics_ci.json --obs "$dir"
  target/release/obs_lint "$dir/loadgen.trace.json"
  test -s chaos_metrics_ci.json
  # The resilient clients must have been exercised: a chaos run in which
  # no client ever reconnected means the proxy injected nothing.
  if ! grep -qE '"reconnects": [1-9]' chaos_metrics_ci.json; then
    echo "FAILED: chaos run reports no client reconnects" >&2
    exit 1
  fi
  if ! grep -qE '"cache_hits": [1-9]' chaos_metrics_ci.json; then
    echo "FAILED: chaos run reports no cache hits" >&2
    exit 1
  fi

  echo "   -- TCP upstream --"
  target/release/loadgen --spawn --chaos --chaos-seed 11 \
    --scale tiny --clients 8 --iters 6 --quiet \
    --request-deadline-ms 30000 --cache-budget 65536
  echo "   wrote chaos_metrics_ci.json and validated $dir/loadgen.trace.json"
}

# Poll a server's captured stdout for its bound TCP address.
serve_addr() {
  local out="$1" addr="" i
  for i in $(seq 1 200); do
    addr=$(sed -n 's/^serve: listening on \([0-9.]*:[0-9]*\).*/\1/p' "$out")
    if [ -n "$addr" ]; then
      echo "$addr"
      return 0
    fi
    sleep 0.05
  done
  return 1
}

durable() {
  echo "== durable serving: restart-warm drill + storage chaos =="
  cargo build -q --release --offline -p warden-bench --bin serve --bin loadgen
  local dir=durable_ci
  rm -rf "$dir"
  mkdir -p "$dir"

  echo "   -- cold run: populate the disk tier --"
  # The serve daemon drains on stdin EOF, so each instance reads a fifo
  # that the script holds open until it wants the server gone.
  mkfifo "$dir/ctl1"
  target/release/serve --addr 127.0.0.1:0 --disk-cache "$dir/tier" \
    <"$dir/ctl1" >"$dir/serve1.out" 2>/dev/null &
  local pid=$!
  exec 3>"$dir/ctl1"
  local addr
  if ! addr=$(serve_addr "$dir/serve1.out"); then
    echo "FAILED: cold server never reported its address" >&2
    exit 1
  fi
  target/release/loadgen --addr "$addr" --scale tiny --clients 4 --iters 4 \
    --quiet --out "$dir/cold_metrics.json"

  # Results are durable on disk before each reply is sent, so SIGKILL —
  # not a drain — must lose nothing.
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  exec 3>&-
  echo "   SIGKILLed the populated server"

  echo "   -- warm run: restart on the same tier --"
  mkfifo "$dir/ctl2"
  target/release/serve --addr 127.0.0.1:0 --disk-cache "$dir/tier" \
    <"$dir/ctl2" >"$dir/serve2.out" 2>/dev/null &
  pid=$!
  exec 4>"$dir/ctl2"
  if ! addr=$(serve_addr "$dir/serve2.out"); then
    echo "FAILED: restarted server never reported its address" >&2
    exit 1
  fi
  # Conformance inside loadgen re-checks every response against its oracle
  # digest, so "served from disk" and "bit-identical" are proved together.
  target/release/loadgen --addr "$addr" --scale tiny --clients 4 --iters 4 \
    --quiet --out durable_metrics_ci.json
  echo quit >&4
  exec 4>&-
  wait "$pid" 2>/dev/null || true
  test -s durable_metrics_ci.json
  if ! grep -qE '"disk_hits": [1-9]' durable_metrics_ci.json; then
    echo "FAILED: restarted server served nothing from the disk tier" >&2
    exit 1
  fi
  if grep -qE '"serve_full_sims": [1-9]' durable_metrics_ci.json; then
    echo "FAILED: restarted server re-simulated instead of serving from disk" >&2
    exit 1
  fi
  echo "   restart-warm OK: disk hits, zero re-simulations, digests conform"

  echo "   -- seeded storage-fault conformance run --"
  target/release/loadgen --spawn --scale tiny --clients 6 --iters 6 --quiet \
    --disk-cache "$dir/chaos-tier" --storage-chaos --storage-chaos-seed 7 \
    --out "$dir/storage_chaos_metrics.json"
  if ! grep -qE '"storage_faults_injected": [1-9]' "$dir/storage_chaos_metrics.json"; then
    echo "FAILED: storage-chaos run injected no faults" >&2
    exit 1
  fi
  echo "   wrote durable_metrics_ci.json and $dir/storage_chaos_metrics.json"
}

protocols() {
  echo "== protocol zoo: differential suite + per-protocol goldens =="
  cargo test -q --offline --test protocol_zoo --test golden_stats

  echo "== protocol zoo: full campaign, every registered protocol, checker on =="
  cargo build -q --release --offline -p warden-bench \
    --bin all_figures --bin record --bin replay
  local dir=protocols_report_ci
  rm -rf "$dir"
  mkdir -p "$dir"
  # One combined run: the campaign layer enforces that every protocol's
  # final memory image matches the reference and that the invariant
  # checker stays clean on all of them.
  target/release/all_figures --scale tiny --quiet --check --protocols all \
    >"$dir/zoo_campaign.txt" 2>/dev/null
  grep -q "Protocol zoo" "$dir/zoo_campaign.txt"

  # Per-protocol replay reports: one file per registered protocol, each a
  # checker-on replay of the same recorded trace.
  target/release/record msort "$dir/msort.trace" --scale tiny >/dev/null
  local p
  for p in msi mesi warden si dls; do
    target/release/replay "$dir/msort.trace" dual-socket --check \
      --protocols "$p" >"$dir/report-$p.txt"
    grep -q "invariant checker: clean" "$dir/report-$p.txt"
  done
  echo "   zoo campaign + $(ls "$dir"/report-*.txt | wc -l) per-protocol reports in $dir/"

  echo "== throughput envelope unchanged (bench_guard) =="
  cargo test -q --release --offline -p warden-bench --test bench_guard
}

fuzz() {
  echo "== workload generator + differential gate test suites =="
  cargo test -q --offline --test proptest_workload --test fuzz_differential

  echo "== differential fuzz gate: 50 workloads x all protocols, checker on =="
  cargo build -q --release --offline -p warden-bench --bin fuzzgen
  local bin=target/release/fuzzgen
  local dir=fuzz_ci
  rm -rf "$dir"
  mkdir -p "$dir"
  "$bin" --fuzz-workloads 50 --fuzz-seed 2023 --protocols all --quiet \
    --artifacts "$dir/artifacts" >"$dir/gate.txt"
  grep -q "disagreements: 0" "$dir/gate.txt"
  echo "   $(grep 'fuzz gate:' "$dir/gate.txt")"

  echo "== mutation gate: a deliberately broken protocol must be caught =="
  "$bin" --fuzz-workloads 10 --fuzz-seed 2023 --protocols all --quiet \
    --mutate si:skip-self-invalidate --artifacts "$dir/artifacts" \
    >"$dir/mutation.txt"
  grep -q "^caught:" "$dir/mutation.txt"
  local seed_file
  seed_file=$(find "$dir/artifacts" -name '*.seed' | head -1)
  if [ -z "$seed_file" ]; then
    echo "FAILED: the mutation gate archived no shrunk reproducer" >&2
    exit 1
  fi
  # The archived token replays: clean without the mutation, caught with it.
  local token
  token=$(sed -n 's/^token: //p' "$seed_file")
  "$bin" --replay "$token" --quiet >/dev/null
  "$bin" --replay "$token" --mutate si:skip-self-invalidate --quiet \
    >"$dir/replay.txt"
  grep -q "^caught:" "$dir/replay.txt"
  echo "   caught + archived $(find "$dir/artifacts" -name '*.seed' | wc -l) shrunk seeds; replayed $token"

  echo "== coherence atlas: regenerate and diff against committed figures =="
  "$bin" --atlas "$dir/atlas" --quiet >/dev/null
  if ! diff -u figures/coherence_atlas_tiny.records "$dir/atlas/coherence_atlas.records"; then
    echo "FAILED: regenerated atlas records differ from figures/coherence_atlas_tiny.records" >&2
    exit 1
  fi
  if ! diff -u figures/coherence_atlas_tiny.txt "$dir/atlas/coherence_atlas.txt"; then
    echo "FAILED: regenerated atlas figure differs from figures/coherence_atlas_tiny.txt" >&2
    exit 1
  fi
  echo "   atlas is byte-identical to the committed figure data"
}

stage="${1:-all}"
case "$stage" in
  checks) checks ;;
  smoke) smoke ;;
  bench) bench ;;
  obs) obs ;;
  lanes) lanes ;;
  serve) serve ;;
  chaos) chaos ;;
  durable) durable ;;
  protocols) protocols ;;
  fuzz) fuzz ;;
  all)
    checks
    smoke
    bench
    obs
    lanes
    serve
    chaos
    durable
    protocols
    fuzz
    ;;
  *)
    echo "usage: ci.sh [checks|smoke|bench|obs|lanes|serve|chaos|durable|protocols|fuzz|all]" >&2
    exit 2
    ;;
esac

echo "CI OK"
