//! The §7.3 future-machines study: how WARDen's advantage grows as the
//! interconnect gets slower — dual socket, many sockets, and a
//! disaggregated two-node machine with a 1 µs remote access time.
//!
//! Run with `cargo run --release --example disaggregated`.

use warden::pbbs::{Bench, Scale};
use warden::prelude::*;

fn main() {
    let machines = [
        MachineConfig::single_socket(),
        MachineConfig::dual_socket(),
        MachineConfig::many_socket(4),
        MachineConfig::disaggregated(),
    ];
    println!(
        "WARDen speedup over MESI as the machine scales (paper Figure 1's\n\
         \"acceleration increases with hardware scale\"):\n"
    );
    print!("{:14}", "benchmark");
    for m in &machines {
        print!(" {:>14}", m.name);
    }
    println!();
    for bench in Bench::DISAGGREGATED {
        let program = bench.build(Scale::Paper);
        print!("{:14}", bench.name());
        for machine in &machines {
            let mesi = simulate(&program, machine, ProtocolId::Mesi);
            let warden = simulate(&program, machine, ProtocolId::Warden);
            assert_eq!(mesi.memory_image_digest, warden.memory_image_digest);
            let speedup = mesi.stats.cycles as f64 / warden.stats.cycles as f64;
            print!(" {:>13.2}x", speedup);
        }
        println!();
    }
    println!(
        "\n(the paper reports a mean of ~3.8x on its disaggregated configuration,\n\
         driven by the >3x higher LLC-miss penalty; see EXPERIMENTS.md)"
    );
}
