//! The paper's flagship example (Figure 4): a parallel prime sieve whose
//! `flags` array races benign same-value writes — WAW apathy in action.
//!
//! Shows the three protocol behaviours side by side:
//! * MESI — every racing write invalidates the other writers' copies,
//! * WARDen with automatic leaf-heap marking only (§4.2's conservative
//!   implementation — the ancestor-heap `flags` stays coherent), and
//! * WARDen with `flags` declared WARD for the marking loop (Figure 4's
//!   semantics, dynamically verified by the runtime checker).
//!
//! Run with `cargo run --release --example prime_sieve`.

use warden::pbbs::{primes, primes_automark, sieve_reference};
use warden::prelude::*;

fn main() {
    let n = 65_536;
    let machine = MachineConfig::dual_socket();
    let pi: usize = sieve_reference(n).iter().filter(|&&b| b).count();
    println!("primes up to {n}: {pi} (every traced run validates this)\n");

    let declared = primes(n, 2);
    let automark = primes_automark(n, 2);

    let mesi = simulate(&declared, &machine, ProtocolId::Mesi);
    let auto_ward = simulate(&automark, &machine, ProtocolId::Warden);
    let full_ward = simulate(&declared, &machine, ProtocolId::Warden);
    assert_eq!(mesi.memory_image_digest, full_ward.memory_image_digest);

    println!(
        "{:34} {:>10} {:>13} {:>11}",
        "", "cycles", "invalidations", "downgrades"
    );
    for (label, o) in [
        ("MESI baseline", &mesi),
        ("WARDen, automatic marking only", &auto_ward),
        ("WARDen + declared flags region", &full_ward),
    ] {
        println!(
            "{:34} {:>10} {:>13} {:>11}",
            label, o.stats.cycles, o.stats.coherence.invalidations, o.stats.coherence.downgrades
        );
    }
    println!(
        "\nwith the declared region, {} writes were served in the W state and\n\
         {} blocks were reconciled (masks merged) when each region ended",
        full_ward.stats.coherence.ward_serves, full_ward.stats.coherence.recon_blocks
    );
    println!(
        "speedup over MESI: {:.2}x",
        mesi.stats.cycles as f64 / full_ward.stats.cycles as f64
    );
}
