//! How a downstream user adds their own workload and experiment: write a
//! program against the runtime API, validate it, and run the full
//! MESI-vs-WARDen comparison on any machine — exactly what the suite's 14
//! benchmarks do internally.
//!
//! The example implements a parallel histogram (a classic fetch-add
//! workload the paper's suite does not include) and sweeps it across
//! machines.
//!
//! Run with `cargo run --release --example custom_benchmark`.

use warden::prelude::*;
use warden::rt::{summarize, TraceProgram};
use warden::sim::Comparison;

/// Build the histogram workload: `n` seeded samples binned into `bins`
/// shared counters via atomic fetch-adds, then a parallel verification sum.
fn histogram(n: u64, bins: u64, grain: u64) -> TraceProgram {
    // Inputs are plain Rust data, generated deterministically.
    let samples: Vec<u64> = {
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        (0..n)
            .map(|_| {
                // xorshift*
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                x.wrapping_mul(0x2545_F491_4F6C_DD1D) % bins
            })
            .collect()
    };
    let expected: Vec<u64> = {
        let mut h = vec![0u64; bins as usize];
        for &s in &samples {
            h[s as usize] += 1;
        }
        h
    };
    trace_program("histogram", RtOptions::default(), move |ctx| {
        let input = ctx.preload(&samples);
        let counts = ctx.tabulate::<u64>(bins, 64, &|_c, _i| 0);
        ctx.parallel_for(0, n, grain, &|c, i| {
            let bin = c.read(&input, i);
            c.work(3);
            c.fetch_add(&counts, bin, 1);
        });
        // Validate against the sequential reference (phase-1 values).
        for b in 0..bins {
            assert_eq!(ctx.peek(&counts, b), expected[b as usize], "bin {b}");
        }
    })
}

fn main() {
    let program = histogram(20_000, 256, 256);
    println!("{}\n", summarize(&program));

    for machine in [
        MachineConfig::single_socket(),
        MachineConfig::dual_socket(),
        MachineConfig::disaggregated(),
    ] {
        let mesi = simulate(&program, &machine, ProtocolId::Mesi);
        let warden = simulate(&program, &machine, ProtocolId::Warden);
        assert_eq!(mesi.memory_image_digest, warden.memory_image_digest);
        let c = Comparison::of("histogram", &mesi, &warden);
        println!(
            "{:14} MESI {:>9} cyc | WARDen {:>9} cyc | speedup {:.2}x | inv+dg avoided/k-instr {:>6.2}",
            machine.name, mesi.stats.cycles, warden.stats.cycles, c.speedup, c.inv_dg_reduced_per_kilo
        );
    }
    println!(
        "\n(histogram is atomics-bound: WARDen leaves atomics fully coherent by design,\n\
         so the gains here come only from the runtime's heap traffic — compare with\n\
         `cargo run --release --example prime_sieve` where benign WAW dominates)"
    );
}
