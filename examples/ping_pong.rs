//! The true-sharing microbenchmark of paper Figure 6 / Table 1: a cache
//! line "ping-pongs" between two hardware threads. Used to validate the
//! simulator's latency model against the paper's measurements.
//!
//! Run with `cargo run --release --example ping_pong`.

use warden::prelude::*;
use warden::sim::{pingpong, table1};

fn main() {
    let machine = MachineConfig::dual_socket();
    println!("cycles per ping-pong iteration (100k iterations each):\n");
    println!(
        "{:26} {:>13} {:>13} {:>14}",
        "scenario", "paper real HW", "paper Sniper", "this simulator"
    );
    for row in table1(&machine, 100_000) {
        println!(
            "{:26} {:>13.2} {:>13.2} {:>14.2}",
            row.scenario, row.paper_real_hw, row.paper_sniper, row.measured
        );
    }

    // The same kernel on the disaggregated machine of §7.3: the hand-off
    // now crosses a 1 µs link.
    let disagg = MachineConfig::disaggregated();
    println!(
        "\ndisaggregated (1 µs remote): {:.0} cycles/iteration",
        pingpong(&disagg, Placement::DiffSocket, 10_000)
    );
}
