//! The memory disciplines behind WARD, demonstrated live:
//!
//! 1. disentanglement (paper Definition 1) — tasks may only touch their own
//!    heap or an ancestor's; the runtime checks every access,
//! 2. the WARD property (paper §3.1) — inside a declared WARD scope no
//!    cross-task read-after-write may occur; benign same-value WAW races
//!    are fine.
//!
//! Run with `cargo run --release --example entanglement`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use warden::prelude::*;

fn main() {
    // The rejected programs below panic by design; keep the output clean.
    std::panic::set_hook(Box::new(|_| {}));

    // Disentangled: children write disjoint parts of the parent's array and
    // read their own allocations. Passes the checker.
    let ok = catch_unwind(AssertUnwindSafe(|| {
        trace_program("disentangled", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(1024);
            ctx.parallel_for(0, 1024, 64, &|c, i| {
                let tmp = c.alloc_scratch::<u64>(4); // own heap: fine
                c.write(&tmp, 0, i);
                let v = c.read(&tmp, 0);
                c.write(&xs, i, v * 2); // ancestor heap: fine
            });
        })
    }));
    println!(
        "disentangled program: {}",
        if ok.is_ok() { "accepted" } else { "rejected" }
    );

    // Entangled: one child leaks a pointer to its heap to its *sibling*
    // through a Rust-side channel; the sibling's read violates
    // disentanglement and panics.
    let bad = catch_unwind(AssertUnwindSafe(|| {
        trace_program("entangled", RtOptions::default(), |ctx| {
            let leak: std::cell::Cell<Option<SimSlice<u64>>> = std::cell::Cell::new(None);
            ctx.fork2(
                |c| {
                    let mine = c.alloc::<u64>(8);
                    c.write(&mine, 0, 42);
                    leak.set(Some(mine));
                },
                |c| {
                    if let Some(stolen) = leak.get() {
                        let _ = c.read(&stolen, 0); // sibling heap: violation
                    }
                },
            );
        })
    }));
    println!(
        "entangled program:    {}",
        if bad.is_err() {
            "rejected (disentanglement violation)"
        } else {
            "accepted?!"
        }
    );

    // WARD scope with a benign WAW: two tasks racing the same value.
    let waw = catch_unwind(AssertUnwindSafe(|| {
        trace_program("benign-waw", RtOptions::default(), |ctx| {
            let flags = ctx.alloc::<u8>(8192);
            ctx.ward_scope(&flags, |ctx| {
                ctx.fork2(|c| c.write(&flags, 6, 1), |c| c.write(&flags, 6, 1));
            });
            assert_eq!(ctx.peek(&flags, 6), 1);
        })
    }));
    println!(
        "benign WAW in scope:  {}",
        if waw.is_ok() { "accepted" } else { "rejected" }
    );

    // WARD scope with a cross-task RAW: condition 1 of the WARD definition
    // is violated and the checker panics.
    let raw = catch_unwind(AssertUnwindSafe(|| {
        trace_program("cross-raw", RtOptions::default(), |ctx| {
            let flags = ctx.alloc::<u64>(1024);
            ctx.ward_scope(&flags, |ctx| {
                ctx.fork2(
                    |c| c.write(&flags, 0, 7),
                    |c| {
                        let _ = c.read(&flags, 0); // cross-task RAW
                    },
                );
            });
        })
    }));
    println!(
        "cross-task RAW:       {}",
        if raw.is_err() {
            "rejected (WARD violation)"
        } else {
            "accepted?!"
        }
    );
}
