//! Quickstart: write a fork-join program against the runtime, replay it
//! under MESI and WARDen, and compare.
//!
//! Run with `cargo run --release --example quickstart`.

use warden::prelude::*;

fn main() {
    // 1. Write a program against the MPL-style runtime. Every access is
    //    traced, disentanglement-checked, and carries real data.
    let program = trace_program("quickstart", RtOptions::default(), |ctx| {
        // A parallel map into a fresh array…
        let squares = ctx.tabulate::<u64>(10_000, 250, &|c, i| {
            c.work(8);
            i * i
        });
        // …then a parallel reduction over it.
        let sum = ctx.reduce(
            0,
            10_000,
            250,
            &|c, i| c.read(&squares, i),
            &|a, b| a + b,
            0,
        );
        assert_eq!(sum, (0..10_000u64).map(|i| i * i).sum());
    });
    println!(
        "traced {} tasks, {} events, {} WARD regions marked",
        program.stats.tasks, program.stats.events, program.stats.regions_marked
    );

    // 2. Replay on the paper's dual-socket machine under both protocols.
    let machine = MachineConfig::dual_socket();
    let mesi = simulate(&program, &machine, ProtocolId::Mesi);
    let warden = simulate(&program, &machine, ProtocolId::Warden);

    // 3. WARDen must be semantically transparent…
    assert_eq!(
        mesi.memory_image_digest, warden.memory_image_digest,
        "both protocols must produce the same final memory"
    );

    // 4. …while avoiding coherence penalties.
    let cmp = Comparison::of("quickstart", &mesi, &warden);
    println!(
        "MESI   : {:>9} cycles, {:>6} invalidations, {:>6} downgrades",
        mesi.stats.cycles, mesi.stats.coherence.invalidations, mesi.stats.coherence.downgrades
    );
    println!(
        "WARDen : {:>9} cycles, {:>6} invalidations, {:>6} downgrades",
        warden.stats.cycles,
        warden.stats.coherence.invalidations,
        warden.stats.coherence.downgrades
    );
    println!(
        "speedup {:.2}x, total energy saved {:.1}%, inv+downgrades avoided per kilo-instruction {:.1}",
        cmp.speedup, cmp.total_energy_savings_pct, cmp.inv_dg_reduced_per_kilo
    );
}
