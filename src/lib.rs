//! # WARDen — reproduction of "Specializing Cache Coherence for High-Level Parallel Languages" (CGO 2023)
//!
//! This umbrella crate re-exports the whole system so examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`mem`] — addresses, cache arrays, sectored blocks, backing memory.
//! * [`coherence`] — directory-based MESI and the WARDen protocol (W state,
//!   WARD regions, reconciliation).
//! * [`sim`] — the deterministic multicore timing simulator and energy model.
//! * [`rt`] — the MPL-style fork-join runtime with heap hierarchy and
//!   automatic WARD region marking.
//! * [`pbbs`] — the 14-benchmark PBBS-style suite used in the evaluation.
//! * [`cacti`] — the analytical area model behind the paper's hardware-cost
//!   estimates.
//!
//! ## Quickstart
//!
//! ```
//! use warden::prelude::*;
//!
//! // Trace a small fork-join program, then run it under MESI and WARDen.
//! let program = trace_program("quick", RtOptions::default(), |ctx| {
//!     let xs = ctx.tabulate::<u64>(512, 64, &|_c, i| i * i);
//!     let _ = ctx.reduce(0, 512, 64, &|c, i| c.read(&xs, i), &|a, b| a + b, 0);
//! });
//! let machine = MachineConfig::single_socket().with_cores(4);
//! let baseline = simulate(&program, &machine, ProtocolId::Mesi);
//! let warden = simulate(&program, &machine, ProtocolId::Warden);
//! assert_eq!(baseline.memory_image_digest, warden.memory_image_digest);
//! ```

pub use warden_bench as bench;
pub use warden_cacti as cacti;
pub use warden_coherence as coherence;
pub use warden_mem as mem;
pub use warden_obs as obs;
pub use warden_pbbs as pbbs;
pub use warden_rt as rt;
pub use warden_serve as serve;
pub use warden_sim as sim;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use warden_coherence::ProtocolId;
    pub use warden_mem::{Addr, BlockAddr, Memory, BLOCK_SIZE, PAGE_SIZE};
    pub use warden_rt::{trace_program, MarkPolicy, RtOptions, SimSlice, TaskCtx};
    pub use warden_sim::{simulate, Comparison, MachineConfig, Placement, SimOutcome, SimStats};
}
