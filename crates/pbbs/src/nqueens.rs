//! `nqueens` — count the solutions of the N-queens problem.
//!
//! Backtracking search, parallel over the first two rows. Almost no
//! application memory traffic: like `fib`, its coherence events are
//! runtime-induced.

use warden_rt::{trace_program, RtOptions, TaskCtx, TraceProgram};

/// Sequential bitmask backtracking count with `row` rows already placed.
fn solve_seq(n: u32, cols: u32, diag1: u32, diag2: u32) -> u64 {
    let full = (1u32 << n) - 1;
    if cols == full {
        return 1;
    }
    let mut free = full & !(cols | diag1 | diag2);
    let mut count = 0;
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free -= bit;
        count += solve_seq(n, cols | bit, (diag1 | bit) << 1, (diag2 | bit) >> 1);
    }
    count
}

/// Number of board states the sequential search visits (for cost charging).
fn nodes_seq(n: u32, cols: u32, diag1: u32, diag2: u32) -> u64 {
    let full = (1u32 << n) - 1;
    if cols == full {
        return 1;
    }
    let mut free = full & !(cols | diag1 | diag2);
    let mut nodes = 1;
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free -= bit;
        nodes += nodes_seq(n, cols | bit, (diag1 | bit) << 1, (diag2 | bit) >> 1);
    }
    nodes
}

/// Known solution counts for validation.
pub fn known_count(n: u32) -> Option<u64> {
    match n {
        1 => Some(1),
        4 => Some(2),
        5 => Some(10),
        6 => Some(4),
        7 => Some(40),
        8 => Some(92),
        9 => Some(352),
        10 => Some(724),
        11 => Some(2680),
        12 => Some(14200),
        _ => None,
    }
}

fn count_par(ctx: &mut TaskCtx<'_>, n: u32) -> u64 {
    // Parallelize over the placements of the first two rows. The diagonal
    // masks passed down are already positioned for row 2.
    ctx.reduce(
        0,
        (n as u64) * (n as u64),
        1,
        &|c, pair| {
            let (r0, r1) = ((pair / n as u64) as u32, (pair % n as u64) as u32);
            let b0 = 1u32 << r0;
            let b1 = 1u32 << r1;
            if b1 & (b0 | (b0 << 1) | (b0 >> 1)) != 0 {
                c.work(4);
                return 0;
            }
            let cols = b0 | b1;
            let diag1 = (b0 << 2) | (b1 << 1);
            let diag2 = (b0 >> 2) | (b1 >> 1);
            // Charge the cost of the subtree this leaf explores.
            c.work(10 * nodes_seq(n, cols, diag1, diag2));
            solve_seq(n, cols, diag1, diag2)
        },
        &|a, b| a + b,
        0,
    )
}

/// Build the `nqueens` benchmark for an `n × n` board.
///
/// # Panics
///
/// Panics if `n < 4` or (during tracing) if the count disagrees with the
/// known value.
pub fn nqueens(n: u32) -> TraceProgram {
    assert!((4..=16).contains(&n), "nqueens supports 4 ≤ n ≤ 16");
    trace_program("nqueens", RtOptions::default(), move |ctx| {
        let count = count_par(ctx, n);
        assert_eq!(count, solve_seq(n, 0, 0, 0), "parallel/sequential mismatch");
        if let Some(known) = known_count(n) {
            assert_eq!(count, known, "nqueens({n}) known-count mismatch");
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_counts_match_known() {
        for n in [4u32, 5, 6, 7, 8] {
            assert_eq!(solve_seq(n, 0, 0, 0), known_count(n).unwrap(), "n={n}");
        }
    }

    #[test]
    fn traced_nqueens_validates() {
        let p = nqueens(7);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 16);
    }
}
