//! Seeded input generators shared by the benchmark suite.
//!
//! All generators are deterministic given a seed, so every trace — and
//! therefore every simulation — is exactly reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for a benchmark-specific stream.
pub fn rng(tag: u64) -> SmallRng {
    SmallRng::seed_from_u64(0x0C60_2023_u64 ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// `n` uniform random `u64`s.
pub fn random_u64s(tag: u64, n: usize) -> Vec<u64> {
    let mut r = rng(tag);
    (0..n).map(|_| r.gen()).collect()
}

/// `n` random `u64`s drawn from `0..universe` (for duplicate-heavy inputs).
pub fn random_u64s_in(tag: u64, n: usize, universe: u64) -> Vec<u64> {
    let mut r = rng(tag);
    (0..n).map(|_| r.gen_range(0..universe)).collect()
}

/// Random text over lowercase letters and spaces, word lengths 1–10.
pub fn random_text(tag: u64, n: usize) -> Vec<u8> {
    let mut r = rng(tag);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let word_len = r.gen_range(1..=10usize);
        for _ in 0..word_len.min(n - out.len()) {
            out.push(b'a' + r.gen_range(0..26u8));
        }
        if out.len() < n {
            out.push(if r.gen_range(0..14u8) == 0 {
                b'\n'
            } else {
                b' '
            });
        }
    }
    out
}

/// Random text over a tiny alphabet (palindrome-rich).
pub fn random_binary_text(tag: u64, n: usize) -> Vec<u8> {
    let mut r = rng(tag);
    (0..n)
        .map(|_| if r.gen::<bool>() { b'a' } else { b'b' })
        .collect()
}

/// `n` random 2-D points with coordinates in `0..extent`, packed
/// `(x << 32) | y`.
pub fn random_points(tag: u64, n: usize, extent: u32) -> Vec<u64> {
    let mut r = rng(tag);
    (0..n)
        .map(|_| {
            let x = r.gen_range(0..extent) as u64;
            let y = r.gen_range(0..extent) as u64;
            (x << 32) | y
        })
        .collect()
}

/// Unpack a point packed by [`random_points`].
pub fn unpack_point(p: u64) -> (i64, i64) {
    ((p >> 32) as i64, (p & 0xFFFF_FFFF) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_u64s(1, 10), random_u64s(1, 10));
        assert_ne!(random_u64s(1, 10), random_u64s(2, 10));
        assert_eq!(random_text(3, 100), random_text(3, 100));
    }

    #[test]
    fn bounded_values_respect_universe() {
        for v in random_u64s_in(4, 1000, 37) {
            assert!(v < 37);
        }
    }

    #[test]
    fn text_is_requested_length() {
        assert_eq!(random_text(5, 1234).len(), 1234);
        assert_eq!(random_binary_text(6, 99).len(), 99);
    }

    #[test]
    fn points_round_trip() {
        for p in random_points(7, 100, 1 << 20) {
            let (x, y) = unpack_point(p);
            assert!(x >= 0 && y >= 0 && x < (1 << 20) && y < (1 << 20));
            assert_eq!(((x as u64) << 32) | y as u64, p);
        }
    }
}
