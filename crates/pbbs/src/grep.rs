//! `grep` — parallel substring search over text.
//!
//! Each task scans a chunk of (read-shared) text for a pattern and collects
//! match positions into its own leaf-allocated buffer; counts combine up the
//! join tree. Mostly-read traffic with leaf-allocated result flow.

use warden_rt::{trace_program, RtOptions, SimSlice, TaskCtx, TraceProgram};

/// Count matches of `pattern` in `text[lo..hi)` (sequential reference).
pub fn count_reference(text: &[u8], pattern: &[u8]) -> u64 {
    if pattern.is_empty() || text.len() < pattern.len() {
        return 0;
    }
    (0..=text.len() - pattern.len())
        .filter(|&i| &text[i..i + pattern.len()] == pattern)
        .count() as u64
}

fn scan_chunk(ctx: &mut TaskCtx<'_>, text: &SimSlice<u8>, pattern: &[u8], lo: u64, hi: u64) -> u64 {
    // Collect match offsets into a leaf-local buffer (like PBBS's grep
    // writing output lines), then return the count.
    let out = ctx.alloc_scratch::<u64>(hi - lo);
    let mut found = 0u64;
    for i in lo..hi {
        ctx.work(2);
        let mut ok = true;
        for (j, &pb) in pattern.iter().enumerate() {
            if ctx.read(text, i + j as u64) != pb {
                ok = false;
                break;
            }
        }
        if ok {
            ctx.write(&out, found, i);
            found += 1;
        }
    }
    found
}

/// Build the `grep` benchmark: search seeded random text of `n` bytes for a
/// fixed pattern, in parallel chunks of `grain` start positions.
///
/// # Panics
///
/// Panics (during tracing) if the parallel count disagrees with the
/// sequential reference.
pub fn grep(n: u64, grain: u64) -> TraceProgram {
    let text = crate::util::random_text(0x4752_4550, n as usize);
    // A short, reasonably frequent pattern.
    let pattern: Vec<u8> = b"ab".to_vec();
    let expected = count_reference(&text, &pattern);
    trace_program("grep", RtOptions::default(), move |ctx| {
        let sim_text = ctx.preload(&text);
        let positions = n - pattern.len() as u64 + 1;
        let pat = pattern.clone();
        let total = ctx.reduce(
            0,
            positions.div_ceil(grain),
            1,
            &|c, chunk| {
                let lo = chunk * grain;
                let hi = (lo + grain).min(positions);
                scan_chunk(c, &sim_text, &pat, lo, hi)
            },
            &|a, b| a + b,
            0,
        );
        assert_eq!(total, expected, "grep count mismatch");
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_counts() {
        assert_eq!(count_reference(b"ababab", b"ab"), 3);
        assert_eq!(count_reference(b"aaaa", b"aa"), 3);
        assert_eq!(count_reference(b"xyz", b"ab"), 0);
        assert_eq!(count_reference(b"a", b"ab"), 0);
    }

    #[test]
    fn traced_grep_validates() {
        let p = grep(4096, 256);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 8);
    }

    #[test]
    fn leaves_use_scratch_buffers() {
        let p = grep(8192, 256);
        // Every chunk allocates a scratch match buffer; the pages flow into
        // the join-ordered recycling pools (reuse itself depends on the
        // allocation pattern — see warden-rt's heap tests).
        assert!(
            p.stats.allocated_bytes > 8192,
            "leaf scratch allocations expected"
        );
    }
}
