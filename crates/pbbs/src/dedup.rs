//! `dedup` — duplicate removal via a concurrent hash set.
//!
//! Tasks claim slots of a shared open-addressing table with CAS (the
//! busy-wait atomic primitive of PBBS). The table lives in an ancestor heap,
//! so its traffic is fully coherent under both protocols — the paper finds
//! dedup among the benchmarks WARDen helps least, and this structure is why.

use warden_rt::{trace_program, RtOptions, SimSlice, TaskCtx, TraceProgram};

fn hash(x: u64) -> u64 {
    let mut h = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// Insert `key` (non-zero) into the CAS-claimed table; returns true if this
/// call inserted it (i.e. `key` was not yet present).
fn insert(ctx: &mut TaskCtx<'_>, table: &SimSlice<u64>, key: u64) -> bool {
    let cap = table.len();
    let mut slot = hash(key) % cap;
    loop {
        ctx.work(4);
        let cur = ctx.read(table, slot);
        if cur == key {
            return false;
        }
        if cur == 0 {
            let (won, prev) = ctx.cas(table, slot, 0, key);
            if won {
                return true;
            }
            if prev == key {
                return false;
            }
            // Lost the race to a different key: keep probing.
        }
        slot = (slot + 1) % cap;
    }
}

/// Build the `dedup` benchmark: count distinct values among `n` seeded
/// random draws from a duplicate-heavy universe.
///
/// # Panics
///
/// Panics (during tracing) if the distinct count disagrees with a sequential
/// reference.
pub fn dedup(n: u64, grain: u64) -> TraceProgram {
    // Draw from a universe of n/4 so ~75% of inputs are duplicates; keys are
    // made non-zero because 0 is the empty-slot sentinel.
    let data: Vec<u64> = crate::util::random_u64s_in(0x4445_4455, n as usize, (n / 4).max(2))
        .into_iter()
        .map(|x| x + 1)
        .collect();
    let expected = {
        let mut set = std::collections::HashSet::new();
        data.iter().for_each(|&x| {
            set.insert(x);
        });
        set.len() as u64
    };
    trace_program("dedup", RtOptions::default(), move |ctx| {
        let input = ctx.preload(&data);
        let table = ctx.tabulate::<u64>(2 * n, 1024, &|_c, _i| 0);
        let distinct = ctx.reduce(
            0,
            n,
            grain,
            &|c, i| {
                let key = c.read(&input, i);
                u64::from(insert(c, &table, key))
            },
            &|a, b| a + b,
            0,
        );
        assert_eq!(distinct, expected, "dedup distinct count mismatch");
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_dedup_validates() {
        let p = dedup(1024, 64);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 8);
    }

    #[test]
    fn uses_atomics() {
        let p = dedup(512, 64);
        // Each distinct key costs one successful CAS (plus join CASes).
        assert!(
            p.tasks
                .iter()
                .flat_map(|t| &t.events)
                .filter(|e| matches!(e, warden_rt::Event::Rmw { .. }))
                .count()
                > 100
        );
    }

    #[test]
    fn hash_spreads() {
        assert_ne!(hash(1) % 997, hash(2) % 997);
    }
}
