//! `quickhull` — 2-D convex hull by recursive farthest-point splitting.
//!
//! Each recursive call packs the points outside its two sub-edges into
//! *scratch* leaf-heap arrays (recycled at task completion — the prompt-GC
//! pattern of paper §4.1) and forks on them. Hull vertices are claimed in a
//! shared output array with atomic cursor increments.

use crate::util::unpack_point;
use warden_rt::{trace_program, RtOptions, SimSlice, TaskCtx, TraceProgram};

/// Twice the signed area of triangle `(a, b, c)`: positive when `c` is to
/// the left of `a → b`.
fn cross(a: u64, b: u64, c: u64) -> i64 {
    let (ax, ay) = unpack_point(a);
    let (bx, by) = unpack_point(b);
    let (cx, cy) = unpack_point(c);
    (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
}

/// Sequential reference with tie-breaking identical to the traced version,
/// returning the set of hull vertices it discovers.
pub fn hull_reference(points: &[u64]) -> std::collections::BTreeSet<u64> {
    fn rec(pts: &[u64], a: u64, b: u64, out: &mut std::collections::BTreeSet<u64>) {
        let mut best: Option<u64> = None;
        let mut best_d = 0i64;
        for &p in pts {
            let d = cross(a, b, p);
            let better = d > best_d || (d == best_d && d > 0 && best.is_none_or(|bp| p < bp));
            if better {
                best_d = d;
                best = Some(p);
            }
        }
        let Some(c) = best else { return };
        out.insert(c);
        let left: Vec<u64> = pts
            .iter()
            .copied()
            .filter(|&p| cross(a, c, p) > 0)
            .collect();
        let right: Vec<u64> = pts
            .iter()
            .copied()
            .filter(|&p| cross(c, b, p) > 0)
            .collect();
        rec(&left, a, c, out);
        rec(&right, c, b, out);
    }
    let mut out = std::collections::BTreeSet::new();
    if points.is_empty() {
        return out;
    }
    let lo = *points.iter().min().expect("non-empty");
    let hi = *points.iter().max().expect("non-empty");
    out.insert(lo);
    out.insert(hi);
    let upper: Vec<u64> = points
        .iter()
        .copied()
        .filter(|&p| cross(lo, hi, p) > 0)
        .collect();
    let lower: Vec<u64> = points
        .iter()
        .copied()
        .filter(|&p| cross(hi, lo, p) > 0)
        .collect();
    rec(&upper, lo, hi, &mut out);
    rec(&lower, hi, lo, &mut out);
    out
}

/// Coordinate bits of quickhull inputs: keeps the reduce encoding of
/// [`farthest`] within 64 bits.
const COORD_BITS: u32 = 10;

fn compress(p: u64) -> u64 {
    let (x, y) = unpack_point(p);
    ((x as u64) << COORD_BITS) | y as u64
}

fn decompress(q: u64) -> u64 {
    let x = q >> COORD_BITS;
    let y = q & ((1 << COORD_BITS) - 1);
    (x << 32) | y
}

/// Farthest point from edge `(a, b)` among `pts` (ties: smallest packed
/// value), or `None` if none is strictly outside.
fn farthest(ctx: &mut TaskCtx<'_>, pts: &SimSlice<u64>, a: u64, b: u64) -> Option<u64> {
    let n = pts.len();
    let qmask = (1u64 << (2 * COORD_BITS)) - 1;
    let enc = ctx.reduce(
        0,
        n,
        256,
        &|c, i| {
            let p = c.read(pts, i);
            c.work(8);
            let d = cross(a, b, p);
            if d > 0 {
                // Encode (distance, !compressed-point): max() picks the
                // farthest, ties resolve to the smallest point. Distances
                // fit 2·2^(2·COORD_BITS) and the point 2·COORD_BITS bits.
                ((d as u64) << (2 * COORD_BITS)) | (!compress(p) & qmask)
            } else {
                0
            }
        },
        &|x, y| x.max(y),
        0,
    );
    if enc == 0 {
        None
    } else {
        Some(decompress(!enc & qmask))
    }
}

/// Pack the elements of `pts` outside edge `(a, b)` into a fresh scratch
/// array, in index order (sequential pass — PBBS uses a parallel pack; the
/// sequential one keeps slot assignment trivially deterministic).
fn pack_outside(
    ctx: &mut TaskCtx<'_>,
    pts: &SimSlice<u64>,
    a: u64,
    b: u64,
) -> (SimSlice<u64>, u64) {
    let n = pts.len();
    let out = ctx.alloc_scratch::<u64>(n.max(1));
    let mut k = 0u64;
    for i in 0..n {
        let p = ctx.read(pts, i);
        ctx.work(8);
        if cross(a, b, p) > 0 {
            ctx.write(&out, k, p);
            k += 1;
        }
    }
    (out, k)
}

/// The shared hull output: the vertex array and its atomic cursor.
#[derive(Clone, Copy)]
struct HullOut {
    out: SimSlice<u64>,
    cursor: SimSlice<u64>,
}

fn hull_rec(
    ctx: &mut TaskCtx<'_>,
    pts: SimSlice<u64>,
    len: u64,
    a: u64,
    b: u64,
    sink: HullOut,
    grain: u64,
) {
    let pts = pts.view(0, len);
    let Some(c) = farthest(ctx, &pts, a, b) else {
        return;
    };
    let slot = ctx.fetch_add(&sink.cursor, 0, 1);
    ctx.write(&sink.out, slot, c);
    let (left, nl) = pack_outside(ctx, &pts, a, c);
    let (right, nr) = pack_outside(ctx, &pts, c, b);
    if nl + nr <= grain {
        hull_rec(ctx, left, nl, a, c, sink, grain);
        hull_rec(ctx, right, nr, c, b, sink, grain);
    } else {
        ctx.fork2_dyn(
            &mut |x| hull_rec(x, left, nl, a, c, sink, grain),
            &mut |x| hull_rec(x, right, nr, c, b, sink, grain),
        );
    }
}

/// Build the `quickhull` benchmark over `n` seeded random points.
///
/// # Panics
///
/// Panics (during tracing) if the traced hull differs from the sequential
/// reference.
pub fn quickhull(n: u64, grain: u64) -> TraceProgram {
    // Small coordinates keep the reduce encoding of `farthest` in 64 bits.
    let raw = crate::util::random_points(0x5148, n as usize, 1 << COORD_BITS);
    let expected = hull_reference(&raw);
    trace_program("quickhull", RtOptions::default(), move |ctx| {
        let pts = ctx.preload(&raw);
        let out = ctx.alloc::<u64>(n.max(4));
        let cursor = ctx.alloc::<u64>(1);
        ctx.write(&cursor, 0, 0);
        let lo = *raw.iter().min().expect("non-empty input");
        let hi = *raw.iter().max().expect("non-empty input");
        let (upper, nu) = pack_outside(ctx, &pts, lo, hi);
        let (lower, nl) = pack_outside(ctx, &pts, hi, lo);
        let sink = HullOut { out, cursor };
        ctx.fork2_dyn(
            &mut |x| hull_rec(x, upper, nu, lo, hi, sink, grain),
            &mut |x| hull_rec(x, lower, nl, hi, lo, sink, grain),
        );
        // Validate: the found vertices plus the two extremes must equal the
        // reference set.
        let found = ctx.peek(&cursor, 0);
        let mut set = std::collections::BTreeSet::new();
        set.insert(lo);
        set.insert(hi);
        for i in 0..found {
            set.insert(ctx.peek(&out, i));
        }
        assert_eq!(set, expected, "hull vertex set mismatch");
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: u64, y: u64) -> u64 {
        (x << 32) | y
    }

    #[test]
    fn reference_square_hull() {
        let pts = vec![pt(0, 0), pt(10, 0), pt(0, 10), pt(10, 10), pt(5, 5)];
        let hull = hull_reference(&pts);
        assert_eq!(hull.len(), 4);
        assert!(!hull.contains(&pt(5, 5)));
    }

    #[test]
    fn cross_orientation() {
        assert!(cross(pt(0, 0), pt(10, 0), pt(5, 5)) > 0);
        assert!(cross(pt(0, 0), pt(10, 0), pt(5, 0)) == 0);
        assert!(cross(pt(10, 0), pt(0, 0), pt(5, 5)) < 0);
    }

    #[test]
    fn traced_quickhull_validates() {
        let p = quickhull(512, 64);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 4);
        // Each recursion level packs into scratch pages.
        assert!(p.stats.allocated_bytes > 512 * 8, "packs must allocate");
    }
}
