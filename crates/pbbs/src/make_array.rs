//! `make_array` — parallel array construction (tabulate) plus a verification
//! sweep.
//!
//! The simplest of the suite: children write disjoint segments of an
//! ancestor-allocated array. The paper finds WARDen helps this benchmark
//! least — its traffic is dominated by compulsory misses the W state cannot
//! remove.

use warden_rt::{trace_program, RtOptions, TraceProgram};

/// The element generator: a cheap integer hash.
fn gen(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i >> 7)
}

/// Build the `make_array` benchmark: tabulate `n` elements, then reduce them
/// for validation.
pub fn make_array(n: u64, grain: u64) -> TraceProgram {
    trace_program("make_array", RtOptions::default(), move |ctx| {
        let xs = ctx.tabulate::<u64>(n, grain, &|c, i| {
            c.work(4);
            gen(i)
        });
        let sum = ctx.reduce(
            0,
            n,
            grain,
            &|c, i| c.read(&xs, i),
            &|a, b| a.wrapping_add(b),
            0,
        );
        let expected = (0..n).fold(0u64, |acc, i| acc.wrapping_add(gen(i)));
        assert_eq!(sum, expected, "make_array checksum mismatch");
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_and_forks() {
        let p = make_array(2048, 64);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 16);
        assert!(p.stats.memory_accesses >= 2 * 2048);
    }

    #[test]
    fn generator_is_not_constant() {
        assert_ne!(gen(1), gen(2));
    }
}
