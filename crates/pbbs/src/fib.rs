//! `fib` — the classic fork-join recursion benchmark.
//!
//! Almost pure compute with very fine-grained tasks: its coherence traffic
//! is nearly all runtime-induced (descriptors, join cells), which is why the
//! paper finds fib has the lowest share of downgrades (2.65%) and sees
//! little speedup despite a visible reduction in coherence events.

use warden_rt::{trace_program, RtOptions, TaskCtx, TraceProgram};

fn fib_seq(n: u64) -> u64 {
    let (mut a, mut b) = (0u64, 1);
    for _ in 0..n {
        let c = a + b;
        a = b;
        b = c;
    }
    a
}

fn fib_rec(ctx: &mut TaskCtx<'_>, n: u64, cutoff: u64) -> u64 {
    if n < 2 {
        ctx.work(2);
        return n;
    }
    if n <= cutoff {
        // Sequential recursion below the cutoff: charge the exponential
        // instruction count of the naive recursion it replaces.
        ctx.work(6 * fib_seq(n + 1));
        return fib_seq(n);
    }
    let (a, b) = ctx.fork2(|c| fib_rec(c, n - 1, cutoff), |c| fib_rec(c, n - 2, cutoff));
    ctx.work(4);
    a + b
}

/// Build the `fib` benchmark: compute `fib(n)` with sequential cutoff
/// `cutoff`.
///
/// # Panics
///
/// Panics (during tracing) if the parallel result disagrees with the
/// sequential reference.
pub fn fib(n: u64, cutoff: u64) -> TraceProgram {
    trace_program("fib", RtOptions::default(), move |ctx| {
        let result = fib_rec(ctx, n, cutoff);
        assert_eq!(result, fib_seq(n), "fib({n}) mismatch");
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_seq_reference() {
        assert_eq!(fib_seq(0), 0);
        assert_eq!(fib_seq(10), 55);
        assert_eq!(fib_seq(20), 6765);
    }

    #[test]
    fn traced_fib_validates() {
        let p = fib(16, 8);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 10, "should fork tasks above the cutoff");
    }

    #[test]
    fn cutoff_bounds_task_count() {
        let coarse = fib(16, 14);
        let fine = fib(16, 6);
        assert!(fine.stats.tasks > coarse.stats.tasks);
    }
}
