//! `msort` — parallel mergesort with parallel merging.
//!
//! The divide-and-conquer shape the WARD marking captures best: each
//! recursive call allocates its output buffer in its *own* leaf heap, fills
//! it, and the parent merges the two children's buffers into a buffer of its
//! own. Under MESI every merge read downgrades the child core's dirty lines;
//! under WARDen the children's completion reconciliation has already pushed
//! them to the LLC.

use warden_rt::{trace_program, RtOptions, SimSlice, TaskCtx, TraceProgram};

/// Sequential insertion sort of a freshly copied leaf segment.
fn sort_leaf(ctx: &mut TaskCtx<'_>, input: &SimSlice<u64>) -> SimSlice<u64> {
    let n = input.len();
    let out = ctx.alloc::<u64>(n);
    // Copy, then insertion-sort in simulated memory.
    for i in 0..n {
        let v = ctx.read(input, i);
        ctx.write(&out, i, v);
    }
    for i in 1..n {
        let v = ctx.read(&out, i);
        let mut j = i;
        while j > 0 {
            let w = ctx.read(&out, j - 1);
            if w <= v {
                break;
            }
            ctx.write(&out, j, w);
            ctx.work(3);
            j -= 1;
        }
        ctx.write(&out, j, v);
    }
    out
}

/// Find how many elements of `xs` are `< key` (binary search).
fn lower_bound(ctx: &mut TaskCtx<'_>, xs: &SimSlice<u64>, key: u64) -> u64 {
    let (mut lo, mut hi) = (0u64, xs.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        ctx.work(4);
        if ctx.read(xs, mid) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Parallel merge of sorted `a` and `b` into `out` (PBBS-style: split the
/// larger side at its midpoint, binary-search the split key in the other).
pub(crate) fn merge_par(
    ctx: &mut TaskCtx<'_>,
    a: SimSlice<u64>,
    b: SimSlice<u64>,
    out: SimSlice<u64>,
    grain: u64,
) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    if a.len() + b.len() <= grain {
        let (mut i, mut j, mut k) = (0u64, 0u64, 0u64);
        while i < a.len() && j < b.len() {
            let x = ctx.read(&a, i);
            let y = ctx.read(&b, j);
            ctx.work(3);
            if x <= y {
                ctx.write(&out, k, x);
                i += 1;
            } else {
                ctx.write(&out, k, y);
                j += 1;
            }
            k += 1;
        }
        while i < a.len() {
            let x = ctx.read(&a, i);
            ctx.write(&out, k, x);
            i += 1;
            k += 1;
        }
        while j < b.len() {
            let y = ctx.read(&b, j);
            ctx.write(&out, k, y);
            j += 1;
            k += 1;
        }
        return;
    }
    // Split the larger input at its midpoint.
    let (big, small, big_first) = if a.len() >= b.len() {
        (a, b, true)
    } else {
        (b, a, false)
    };
    let mid = big.len() / 2;
    let key = ctx.read(&big, mid);
    let split = lower_bound(ctx, &small, key);
    let (bl, br) = (big.view(0, mid), big.view(mid, big.len()));
    let (sl, sr) = (small.view(0, split), small.view(split, small.len()));
    let cut = mid + split;
    let (ol, or) = (out.view(0, cut), out.view(cut, out.len()));
    ctx.fork2_dyn(
        &mut |c| {
            if big_first {
                merge_par(c, bl, sl, ol, grain)
            } else {
                merge_par(c, sl, bl, ol, grain)
            }
        },
        &mut |c| {
            if big_first {
                merge_par(c, br, sr, or, grain)
            } else {
                merge_par(c, sr, br, or, grain)
            }
        },
    );
}

pub(crate) fn msort_rec(ctx: &mut TaskCtx<'_>, input: SimSlice<u64>, grain: u64) -> SimSlice<u64> {
    if input.len() <= grain {
        return sort_leaf(ctx, &input);
    }
    let mid = input.len() / 2;
    let (l, r) = ctx.fork2(
        move |c| msort_rec(c, input.view(0, mid), grain),
        move |c| msort_rec(c, input.view(mid, input.len()), grain),
    );
    let out = ctx.alloc::<u64>(input.len());
    merge_par(ctx, l, r, out, grain.max(64));
    out
}

/// Build the `msort` benchmark: sort `n` seeded random keys.
///
/// # Panics
///
/// Panics (during tracing) if the output is not a sorted permutation of the
/// input.
pub fn msort(n: u64, grain: u64) -> TraceProgram {
    let data = crate::util::random_u64s(0x4D53_4F52_5400, n as usize);
    trace_program("msort", RtOptions::default(), move |ctx| {
        let input = ctx.preload(&data);
        let sorted = msort_rec(ctx, input, grain);
        assert_eq!(sorted.len(), n);
        let mut prev = 0u64;
        let mut xor = 0u64;
        for i in 0..n {
            let v = ctx.peek(&sorted, i);
            assert!(v >= prev, "not sorted at {i}");
            prev = v;
            xor ^= v;
        }
        let expected_xor = data.iter().fold(0u64, |a, &b| a ^ b);
        assert_eq!(xor, expected_xor, "output is not a permutation");
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_correctly() {
        let p = msort(512, 32);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 16);
    }

    #[test]
    fn handles_tiny_inputs() {
        msort(3, 16).check_invariants().unwrap();
        msort(1, 16).check_invariants().unwrap();
    }

    #[test]
    fn parallel_merge_forks() {
        // With a grain far below n, merging itself must fork.
        let p = msort(1024, 16);
        // Leaves (64) + merge tasks: well above the sort tree alone.
        assert!(p.stats.forks > 63 * 2);
    }
}
