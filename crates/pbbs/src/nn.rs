//! `nn` — all-nearest-neighbors on 2-D points via a uniform grid.
//!
//! Three parallel phases: histogram the points into grid cells (atomic
//! fetch-adds on a shared histogram), bucket them (atomic cursor claims),
//! then for each point scan its 3×3 cell neighborhood for the nearest other
//! point. Mixed atomic/shared/read traffic.

use crate::util::unpack_point;
use warden_rt::{trace_program, RtOptions, SimSlice, TaskCtx, TraceProgram};

const GRID_BITS: u32 = 4; // 16×16 cells
const GRID: u64 = 1 << GRID_BITS;

fn cell_of(p: u64, extent_bits: u32) -> u64 {
    let (x, y) = unpack_point(p);
    let shift = extent_bits - GRID_BITS;
    ((x as u64 >> shift) << GRID_BITS) | (y as u64 >> shift)
}

fn dist2(a: u64, b: u64) -> u64 {
    let (ax, ay) = unpack_point(a);
    let (bx, by) = unpack_point(b);
    ((ax - bx) * (ax - bx) + (ay - by) * (ay - by)) as u64
}

/// Sequential reference: index of the nearest other point to `points[i]`
/// (ties broken by lower index).
pub fn nearest_reference(points: &[u64], i: usize) -> usize {
    let mut best = usize::MAX;
    let mut best_d = u64::MAX;
    for (j, &q) in points.iter().enumerate() {
        if j == i {
            continue;
        }
        let d = dist2(points[i], q);
        if d < best_d || (d == best_d && j < best) {
            best_d = d;
            best = j;
        }
    }
    best
}

/// The bucketed grid a neighborhood scan walks.
#[derive(Clone, Copy)]
struct Grid {
    cell_start: SimSlice<u64>,
    cell_len: SimSlice<u64>,
    buckets: SimSlice<u64>,
    bucket_idx: SimSlice<u64>,
}

fn scan_neighborhood(
    ctx: &mut TaskCtx<'_>,
    i: u64,
    p: u64,
    extent_bits: u32,
    grid: &Grid,
) -> (u64, u64) {
    let (cx, cy) = {
        let c = cell_of(p, extent_bits);
        (c >> GRID_BITS, c & (GRID - 1))
    };
    let mut best = u64::MAX;
    let mut best_d = u64::MAX;
    for dx in -1i64..=1 {
        for dy in -1i64..=1 {
            let nx = cx as i64 + dx;
            let ny = cy as i64 + dy;
            if nx < 0 || ny < 0 || nx >= GRID as i64 || ny >= GRID as i64 {
                continue;
            }
            let cell = (nx as u64) << GRID_BITS | ny as u64;
            let start = ctx.read(&grid.cell_start, cell);
            let len = ctx.read(&grid.cell_len, cell);
            for k in 0..len {
                let j = ctx.read(&grid.bucket_idx, start + k);
                if j == i {
                    continue;
                }
                let q = ctx.read(&grid.buckets, start + k);
                ctx.work(8);
                let d = dist2(p, q);
                if d < best_d || (d == best_d && j < best) {
                    best_d = d;
                    best = j;
                }
            }
        }
    }
    (best, best_d)
}

/// Build the `nn` benchmark over `n` seeded random points.
///
/// The grid search is approximate when the neighborhood is empty; such
/// points fall back to "no neighbor found" and are validated against the
/// reference only when the grid found one at least as close as any grid
/// point — the standard uniform-grid caveat. With the default density every
/// point finds a neighbor.
///
/// # Panics
///
/// Panics (during tracing) if a found neighbor is farther than the true
/// nearest neighbor *within the scanned neighborhood*.
pub fn nn(n: u64, grain: u64) -> TraceProgram {
    let extent_bits = 16u32;
    let points = crate::util::random_points(0x4E4E, n as usize, 1 << extent_bits);
    let reference: Vec<usize> = (0..n.min(64) as usize)
        .map(|i| nearest_reference(&points, i))
        .collect();
    let ncells = GRID * GRID;
    trace_program("nn", RtOptions::default(), move |ctx| {
        let pts = ctx.preload(&points);
        // Phase 1: histogram cells with atomic fetch-adds.
        let counts = ctx.tabulate::<u64>(ncells, 64, &|_c, _i| 0);
        ctx.parallel_for(0, n, grain, &|c, i| {
            let p = c.read(&pts, i);
            c.work(4);
            c.fetch_add(&counts, cell_of(p, extent_bits), 1);
        });
        // Phase 2: exclusive scan (root-sequential: 256 cells).
        let cell_start = ctx.alloc::<u64>(ncells);
        let cursor = ctx.alloc::<u64>(ncells);
        let mut acc = 0u64;
        for cell in 0..ncells {
            ctx.write(&cell_start, cell, acc);
            ctx.write(&cursor, cell, acc);
            acc += ctx.read(&counts, cell);
            ctx.work(2);
        }
        // Phase 3: bucket points (atomic cursor claims).
        let buckets = ctx.alloc::<u64>(n);
        let bucket_idx = ctx.alloc::<u64>(n);
        ctx.parallel_for(0, n, grain, &|c, i| {
            let p = c.read(&pts, i);
            let slot = c.fetch_add(&cursor, cell_of(p, extent_bits), 1);
            c.write(&buckets, slot, p);
            c.write(&bucket_idx, slot, i);
        });
        // Phase 4: per-point neighborhood scan; results to a leaf-written
        // output array.
        let out = ctx.alloc::<u64>(n);
        let grid = Grid {
            cell_start,
            cell_len: counts,
            buckets,
            bucket_idx,
        };
        ctx.parallel_for(0, n, grain.max(8) / 8, &|c, i| {
            let p = c.read(&pts, i);
            let (best, _d) = scan_neighborhood(c, i, p, extent_bits, &grid);
            c.write(&out, i, best);
        });
        // Validate a prefix against the exact reference when the grid found
        // the true nearest neighbor's cell (dense default: always).
        for (i, &want) in reference.iter().enumerate() {
            let got = ctx.peek(&out, i as u64);
            if got != u64::MAX {
                let dg = dist2(points[i], points[got as usize]);
                let dw = dist2(points[i], points[want]);
                assert!(
                    dg >= dw,
                    "grid answer cannot beat the exact nearest neighbor"
                );
                // The grid answer must be exact unless the true neighbor
                // lies outside the 3×3 neighborhood.
                if dg != dw {
                    let side = 1u64 << (extent_bits - GRID_BITS);
                    assert!(dw >= side * side, "missed an in-neighborhood point");
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_nearest_is_symmetric_sanity() {
        let pts = vec![0, (1u64 << 32) | 1, (10u64 << 32) | 10];
        assert_eq!(nearest_reference(&pts, 0), 1);
        assert_eq!(nearest_reference(&pts, 1), 0);
        assert_eq!(nearest_reference(&pts, 2), 1);
    }

    #[test]
    fn traced_nn_validates() {
        let p = nn(512, 64);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 8);
    }

    #[test]
    fn cell_of_stays_in_grid() {
        for p in crate::util::random_points(9, 200, 1 << 16) {
            assert!(cell_of(p, 16) < GRID * GRID);
        }
    }
}
