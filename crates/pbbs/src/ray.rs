//! `ray` — ray casting against a triangle soup.
//!
//! Every ray (one per output pixel) tests all triangles with Möller–Trumbore
//! intersection and records the nearest hit. The triangle data is shared
//! read-only; the image is written by leaves; the per-ray work is floating
//! point heavy. The paper's `ray` is the benchmark whose speedup comes with
//! an IPC *drop* from synchronization effects (§7.2).

use warden_rt::{trace_program, RtOptions, SimSlice, TaskCtx, TraceProgram};

/// One triangle: three vertices of three `f64` coordinates.
const FLOATS_PER_TRI: u64 = 9;

/// Generate a deterministic triangle soup: `m` triangles hovering above the
/// unit square at depths 1..2.
pub fn make_triangles(m: usize) -> Vec<f64> {
    let mut r = crate::util::rng(0x5241_5900);
    let mut out = Vec::with_capacity(m * FLOATS_PER_TRI as usize);
    for _ in 0..m {
        use rand::Rng;
        let cx: f64 = r.gen_range(0.0..1.0);
        let cy: f64 = r.gen_range(0.0..1.0);
        let cz: f64 = r.gen_range(1.0..2.0);
        for _ in 0..3 {
            out.push(cx + r.gen_range(-0.15..0.15));
            out.push(cy + r.gen_range(-0.15..0.15));
            out.push(cz + r.gen_range(-0.05..0.05));
        }
    }
    out
}

/// Ray direction for pixel `(px, py)` on a `side × side` image: through the
/// unit square at z = 1.
fn ray_dir(px: u64, py: u64, side: u64) -> [f64; 3] {
    let x = (px as f64 + 0.5) / side as f64;
    let y = (py as f64 + 0.5) / side as f64;
    [x, y, 1.0]
}

/// Möller–Trumbore: distance `t` along `dir` (from the origin) to the
/// triangle, if hit.
fn intersect(v: &[f64; 9], dir: &[f64; 3]) -> Option<f64> {
    let e1 = [v[3] - v[0], v[4] - v[1], v[5] - v[2]];
    let e2 = [v[6] - v[0], v[7] - v[1], v[8] - v[2]];
    let p = [
        dir[1] * e2[2] - dir[2] * e2[1],
        dir[2] * e2[0] - dir[0] * e2[2],
        dir[0] * e2[1] - dir[1] * e2[0],
    ];
    let det = e1[0] * p[0] + e1[1] * p[1] + e1[2] * p[2];
    if det.abs() < 1e-12 {
        return None;
    }
    let inv = 1.0 / det;
    let tv = [-v[0], -v[1], -v[2]];
    let u = (tv[0] * p[0] + tv[1] * p[1] + tv[2] * p[2]) * inv;
    if !(0.0..=1.0).contains(&u) {
        return None;
    }
    let q = [
        tv[1] * e1[2] - tv[2] * e1[1],
        tv[2] * e1[0] - tv[0] * e1[2],
        tv[0] * e1[1] - tv[1] * e1[0],
    ];
    let w = (dir[0] * q[0] + dir[1] * q[1] + dir[2] * q[2]) * inv;
    if w < 0.0 || u + w > 1.0 {
        return None;
    }
    let t = (e2[0] * q[0] + e2[1] * q[1] + e2[2] * q[2]) * inv;
    (t > 0.0).then_some(t)
}

/// Sequential reference: nearest triangle per pixel.
pub fn render_reference(tris: &[f64], side: u64) -> Vec<u64> {
    let m = tris.len() as u64 / FLOATS_PER_TRI;
    let mut img = vec![u64::MAX; (side * side) as usize];
    for py in 0..side {
        for px in 0..side {
            let dir = ray_dir(px, py, side);
            let mut best = f64::INFINITY;
            let mut hit = u64::MAX;
            for t in 0..m {
                let base = (t * FLOATS_PER_TRI) as usize;
                let v: [f64; 9] = tris[base..base + 9].try_into().expect("9 floats");
                if let Some(d) = intersect(&v, &dir) {
                    if d < best {
                        best = d;
                        hit = t;
                    }
                }
            }
            img[(py * side + px) as usize] = hit;
        }
    }
    img
}

fn trace_pixel(
    ctx: &mut TaskCtx<'_>,
    tris: &SimSlice<f64>,
    m: u64,
    px: u64,
    py: u64,
    side: u64,
) -> u64 {
    let dir = ray_dir(px, py, side);
    let mut best = f64::INFINITY;
    let mut hit = u64::MAX;
    for t in 0..m {
        let base = t * FLOATS_PER_TRI;
        let mut v = [0.0f64; 9];
        for (k, slot) in v.iter_mut().enumerate() {
            *slot = ctx.read(tris, base + k as u64);
        }
        ctx.work(40);
        if let Some(d) = intersect(&v, &dir) {
            if d < best {
                best = d;
                hit = t;
            }
        }
    }
    hit
}

/// Build the `ray` benchmark: a `side × side` image over `m` triangles.
///
/// # Panics
///
/// Panics (during tracing) if any pixel disagrees with the sequential
/// reference (float operations are identical, so equality is exact).
pub fn ray(side: u64, m: usize, grain: u64) -> TraceProgram {
    let tris = make_triangles(m);
    let expected = render_reference(&tris, side);
    trace_program("ray", RtOptions::default(), move |ctx| {
        let sim_tris = ctx.preload(&tris);
        let img = ctx.alloc::<u64>(side * side);
        ctx.parallel_for(0, side * side, grain, &|c, pix| {
            let (px, py) = (pix % side, pix / side);
            let hit = trace_pixel(c, &sim_tris, m as u64, px, py, side);
            c.write(&img, pix, hit);
        });
        for pix in 0..side * side {
            assert_eq!(
                ctx.peek(&img, pix),
                expected[pix as usize],
                "pixel {pix} mismatch"
            );
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_ray_hits_centered_triangle() {
        // Triangle straddling (0.5, 0.5) at z=1.
        let v = [0.3, 0.3, 1.0, 0.8, 0.4, 1.0, 0.4, 0.8, 1.0];
        let dir = ray_dir(0, 0, 1); // through (0.5, 0.5, 1)
        assert!(intersect(&v, &dir).is_some());
    }

    #[test]
    fn miss_returns_none() {
        let v = [10.0, 10.0, 1.0, 11.0, 10.0, 1.0, 10.0, 11.0, 1.0];
        assert!(intersect(&v, &ray_dir(0, 0, 2)).is_none());
    }

    #[test]
    fn reference_image_has_hits_and_misses() {
        let tris = make_triangles(16);
        let img = render_reference(&tris, 8);
        assert!(img.iter().any(|&p| p != u64::MAX), "some pixel should hit");
    }

    #[test]
    fn traced_ray_validates() {
        let p = ray(8, 8, 8);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 4);
    }
}
