//! `suffix-array` — suffix array construction by prefix doubling.
//!
//! Each round packs `(rank[i], rank[i+k])` pairs into keys, sorts them with
//! the suite's parallel mergesort, and recomputes ranks. Sort-dominated,
//! with heavy leaf-allocated buffer flow between rounds.

use crate::msort::msort_rec;
use warden_rt::{trace_program, RtOptions, TraceProgram};

/// Bits reserved for one rank in a packed sort key (supports n < 2^22).
const RANK_BITS: u32 = 22;
/// Bits reserved for the suffix index.
const IDX_BITS: u32 = 20;

/// Sequential reference: sort suffix indices by suffix comparison.
pub fn suffix_array_reference(text: &[u8]) -> Vec<u64> {
    let mut sa: Vec<u64> = (0..text.len() as u64).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

fn pack(r1: u64, r2: u64, idx: u64) -> u64 {
    (r1 << (RANK_BITS as u64 + IDX_BITS as u64)) | (r2 << IDX_BITS) | idx
}

fn unpack_idx(key: u64) -> u64 {
    key & ((1 << IDX_BITS) - 1)
}

fn pair_of(key: u64) -> u64 {
    key >> IDX_BITS
}

/// Build the `suffix_array` benchmark over `n` bytes of seeded random text.
///
/// # Panics
///
/// Panics if `n` exceeds the packing capacity, or (during tracing) if the
/// result disagrees with the sequential reference.
pub fn suffix_array(n: u64, grain: u64) -> TraceProgram {
    assert!(n < (1 << IDX_BITS), "n exceeds index packing");
    let text = crate::util::random_text(0x5355_4646, n as usize);
    let expected = suffix_array_reference(&text);
    trace_program("suffix_array", RtOptions::default(), move |ctx| {
        let sim_text = ctx.preload(&text);
        // Initial ranks are the bytes themselves.
        let mut rank = ctx.tabulate::<u64>(n, grain, &|c, i| c.read(&sim_text, i) as u64);
        let mut k = 1u64;
        let mut sorted_keys: Option<warden_rt::SimSlice<u64>>;
        loop {
            // Pack (rank[i], rank[i+k], i) keys and sort them.
            let keys = ctx.tabulate::<u64>(n, grain, &|c, i| {
                let r1 = c.read(&rank, i);
                let r2 = if i + k < n {
                    c.read(&rank, i + k) + 1
                } else {
                    0
                };
                c.work(4);
                pack(r1, r2, i)
            });
            let sorted = msort_rec(ctx, keys, grain.max(32));
            // Re-rank with a parallel diff + prefix scan (PBBS-style):
            // flags[j] = 1 iff sorted[j]'s pair differs from its
            // predecessor; the inclusive prefix sum of flags is the rank.
            let flags = ctx.tabulate::<u64>(n, grain, &|c, j| {
                if j == 0 {
                    return 0;
                }
                let cur = pair_of(c.read(&sorted, j));
                let prev = pair_of(c.read(&sorted, j - 1));
                c.work(3);
                u64::from(cur != prev)
            });
            let diff = ctx.tabulate::<u64>(n, grain, &|c, j| c.read(&flags, j));
            let max_rank = ctx.scan_exclusive(&diff, grain.max(16));
            let new_rank = ctx.alloc::<u64>(n);
            ctx.parallel_for(0, n, grain, &|c, j| {
                let key = c.read(&sorted, j);
                let r = c.read(&diff, j) + c.read(&flags, j);
                c.write(&new_rank, unpack_idx(key), r);
            });
            rank = new_rank;
            sorted_keys = Some(sorted);
            k *= 2;
            if max_rank == n - 1 || k >= n {
                break;
            }
        }
        // The suffix array is the index column of the final sorted keys.
        let sorted = sorted_keys.expect("at least one round");
        for j in 0..n {
            let idx = unpack_idx(ctx.peek(&sorted, j));
            assert_eq!(idx, expected[j as usize], "suffix array mismatch at {j}");
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_on_banana() {
        let sa = suffix_array_reference(b"banana");
        assert_eq!(sa, vec![5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn packing_round_trips() {
        let key = pack(5, 9, 123);
        assert_eq!(unpack_idx(key), 123);
        assert_eq!(pair_of(key), (5 << IDX_BITS >> IDX_BITS << RANK_BITS) | 9);
    }

    #[test]
    fn traced_suffix_array_validates() {
        let p = suffix_array(256, 32);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 8);
    }
}
