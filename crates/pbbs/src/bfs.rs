//! `bfs` — parallel breadth-first search with *different-value* benign
//! races (an extension beyond the paper's figure list, implementing its
//! §2.1 example directly).
//!
//! Frontier expansion races to claim each vertex's parent: multiple
//! neighbours on the same level may write different parents to the same
//! slot, and "it does not matter which thread wins the race because they are
//! all writing back values which meet the search criteria" — WAW apathy with
//! *different* values (Figure 3, Event 3). Consequently the final memory
//! image is schedule- and protocol-dependent *by design*; validation checks
//! the semantic invariant instead: every claimed parent is a real in-edge
//! from the previous level, and distances are exactly the true BFS
//! distances.

use warden_rt::{trace_program, RtOptions, SimSlice, TaskCtx, TraceProgram};

/// A deterministic sparse digraph: `n` vertices, ~`deg` out-edges each, in
/// CSR form `(offsets, targets)`, always containing the cycle edges
/// `v → v+1` so everything is reachable from 0.
pub fn make_graph(n: u64, deg: u64, tag: u64) -> (Vec<u64>, Vec<u64>) {
    use rand::Rng;
    let mut r = crate::util::rng(tag);
    let mut offsets = Vec::with_capacity(n as usize + 1);
    let mut targets = Vec::new();
    offsets.push(0u64);
    for v in 0..n {
        targets.push((v + 1) % n);
        for _ in 1..deg {
            targets.push(r.gen_range(0..n));
        }
        offsets.push(targets.len() as u64);
    }
    (offsets, targets)
}

/// Sequential reference: exact BFS distances from vertex 0.
pub fn bfs_reference(offsets: &[u64], targets: &[u64]) -> Vec<u64> {
    let n = offsets.len() - 1;
    let mut dist = vec![u64::MAX; n];
    dist[0] = 0;
    let mut frontier = vec![0usize];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for &t in &targets[offsets[v] as usize..offsets[v + 1] as usize] {
                let w = t as usize;
                if dist[w] == u64::MAX {
                    dist[w] = dist[v] + 1;
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// One parallel frontier expansion: each frontier vertex writes itself as
/// the parent of every neighbour that was unvisited *as of the previous
/// level* (checked against the level-frozen `dist` array). Neighbours shared
/// by several frontier vertices therefore receive genuinely racing writes of
/// *different* parents — WAW apathy with different values, and the trace
/// records every one of them.
#[allow(clippy::too_many_arguments)]
fn expand(
    ctx: &mut TaskCtx<'_>,
    offsets: &SimSlice<u64>,
    targets: &SimSlice<u64>,
    dist: &SimSlice<u64>,
    parent: &SimSlice<u64>,
    frontier: &SimSlice<u64>,
    frontier_len: u64,
    grain: u64,
) {
    ctx.parallel_for(0, frontier_len, grain, &|c, i| {
        let v = c.read(frontier, i);
        let lo = c.read(offsets, v);
        let hi = c.read(offsets, v + 1);
        for e in lo..hi {
            let w = c.read(targets, e);
            c.work(4);
            // `dist` is only written between levels, so this read never
            // races; the parent write does, benignly.
            if c.read(dist, w) == u64::MAX {
                c.write(parent, w, v + 1); // +1: 0 is a valid parent id
            }
        }
    });
}

/// Where the interesting arrays of a [`bfs`] trace live, so tests can
/// validate the *replayed* images (whose racing parents may legitimately
/// differ from the logical run).
#[derive(Clone, Debug)]
pub struct BfsLayout {
    /// Base address of the `parent` array (`n` u64 slots).
    pub parent_base: warden_mem::Addr,
    /// CSR offsets of the generated graph.
    pub offsets: Vec<u64>,
    /// CSR targets of the generated graph.
    pub targets: Vec<u64>,
}

/// Build the `bfs` benchmark: BFS from vertex 0 over a seeded graph.
///
/// # Panics
///
/// Panics (during tracing) if the claimed parents violate the BFS invariant
/// or the per-level visit counts differ from the reference.
pub fn bfs(n: u64, deg: u64, grain: u64) -> TraceProgram {
    bfs_with_layout(n, deg, grain).0
}

/// [`bfs`] plus the memory layout needed to validate replayed images.
pub fn bfs_with_layout(n: u64, deg: u64, grain: u64) -> (TraceProgram, BfsLayout) {
    let (offsets, targets) = make_graph(n, deg, 0x424653);
    let layout_cell = std::rc::Rc::new(std::cell::Cell::new(warden_mem::Addr(0)));
    let program = bfs_program(
        n,
        grain,
        offsets.clone(),
        targets.clone(),
        layout_cell.clone(),
    );
    let layout = BfsLayout {
        parent_base: layout_cell.get(),
        offsets,
        targets,
    };
    (program, layout)
}

fn bfs_program(
    n: u64,
    grain: u64,
    offsets: Vec<u64>,
    targets: Vec<u64>,
    parent_base: std::rc::Rc<std::cell::Cell<warden_mem::Addr>>,
) -> TraceProgram {
    let reference = bfs_reference(&offsets, &targets);
    trace_program("bfs", RtOptions::default(), move |ctx| {
        let soff = ctx.preload(&offsets);
        let stgt = ctx.preload(&targets);
        // parent[w] = claiming vertex + 1, or MAX if unvisited; dist[w] is
        // only updated between levels (the race-free claim check).
        let parent = ctx.tabulate::<u64>(n, 1024.max(grain), &|_c, _i| u64::MAX);
        parent_base.set(parent.base());
        let dist = ctx.tabulate::<u64>(n, 1024.max(grain), &|_c, _i| u64::MAX);
        ctx.write(&parent, 0, 0); // root sentinel: claimed, no parent
        ctx.write(&dist, 0, 0);
        let frontier = ctx.alloc::<u64>(n);
        let next = ctx.alloc::<u64>(n);
        ctx.write(&frontier, 0, 0);
        let mut flen = 1u64;
        let mut level = 0u64;
        let mut visited = 1u64;
        let mut cur = frontier;
        let mut nxt = next;
        while flen > 0 {
            // The parent array is WARD for the duration of the expansion:
            // only writes target it inside the scope (the checker verifies
            // no cross-task RAW), and the racing writes are apathetic —
            // Figure 3's Event 3 with genuinely different values.
            ctx.ward_scope(&parent, |ctx| {
                expand(ctx, &soff, &stgt, &dist, &parent, &cur, flen, grain);
            });
            // Sequentially gather the next frontier and freeze distances (a
            // parallel pack in PBBS; sequential keeps slot order
            // deterministic).
            let mut k = 0u64;
            for w in 0..n {
                if ctx.peek(&parent, w) != u64::MAX && ctx.peek(&dist, w) == u64::MAX {
                    ctx.work(2);
                    ctx.write(&dist, w, level + 1);
                    ctx.write(&nxt, k, w);
                    k += 1;
                }
            }
            level += 1;
            visited += k;
            flen = k;
            std::mem::swap(&mut cur, &mut nxt);
        }
        // Validate the semantic invariant on the logical image: every
        // visited vertex's parent is a true in-edge at distance d-1.
        let mut seen = 0u64;
        for w in 0..n {
            let p = ctx.peek(&parent, w);
            let d = reference[w as usize];
            if d == u64::MAX {
                assert_eq!(p, u64::MAX, "unreachable vertex {w} claimed");
                continue;
            }
            seen += 1;
            if w == 0 {
                assert_eq!(p, 0);
                continue;
            }
            assert_ne!(p, u64::MAX, "reachable vertex {w} missed");
            let pv = p - 1;
            assert_eq!(
                reference[pv as usize] + 1,
                d,
                "vertex {w}: parent {pv} not on the previous level"
            );
            let lo = offsets[pv as usize] as usize;
            let hi = offsets[pv as usize + 1] as usize;
            assert!(
                targets[lo..hi].contains(&w),
                "vertex {w}: {pv} is not an in-neighbour"
            );
        }
        assert_eq!(seen, visited, "visit count mismatch");
    })
}

/// Check the BFS invariant on an arbitrary final memory image (used by
/// integration tests on the *replayed* images, where the racing parents may
/// legitimately differ from the logical run — Figure 3's "either value is
/// accepted").
pub fn validate_parents(
    mem: &warden_mem::Memory,
    parent_base: warden_mem::Addr,
    offsets: &[u64],
    targets: &[u64],
) -> Result<(), String> {
    let reference = bfs_reference(offsets, targets);
    let n = reference.len();
    for w in 0..n {
        let p = mem.read_u64(parent_base + (w as u64) * 8);
        let d = reference[w];
        if d == u64::MAX {
            if p != u64::MAX {
                return Err(format!("unreachable vertex {w} claimed"));
            }
            continue;
        }
        if w == 0 {
            continue;
        }
        if p == u64::MAX {
            return Err(format!("reachable vertex {w} missed"));
        }
        let pv = (p - 1) as usize;
        if pv >= n || reference[pv] + 1 != d {
            return Err(format!("vertex {w}: bad parent level"));
        }
        let (lo, hi) = (offsets[pv] as usize, offsets[pv + 1] as usize);
        if !targets[lo..hi].contains(&(w as u64)) {
            return Err(format!("vertex {w}: parent {pv} not an in-neighbour"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_distances_on_ring() {
        // Pure ring when deg = 1.
        let (off, tgt) = make_graph(6, 1, 9);
        let d = bfs_reference(&off, &tgt);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn traced_bfs_validates() {
        let p = bfs(256, 4, 16);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 4);
    }

    #[test]
    fn graph_is_connected_by_construction() {
        let (off, tgt) = make_graph(100, 3, 1);
        let d = bfs_reference(&off, &tgt);
        assert!(d.iter().all(|&x| x != u64::MAX));
    }
}
