//! `tokens` — text tokenization.
//!
//! Marks token-start positions (a non-delimiter preceded by a delimiter or
//! the text start) into a flags array and counts tokens. Two traced reads
//! and up to one write per character, with chunk boundaries forcing a little
//! cross-task read overlap.

use warden_rt::{trace_program, RtOptions, TraceProgram};

fn is_delim(b: u8) -> bool {
    b == b' ' || b == b'\n' || b == b'\t'
}

/// Sequential reference: number of maximal non-delimiter runs.
pub fn count_reference(text: &[u8]) -> u64 {
    let mut count = 0u64;
    let mut in_tok = false;
    for &b in text {
        let d = is_delim(b);
        if !d && !in_tok {
            count += 1;
        }
        in_tok = !d;
    }
    count
}

/// Build the `tokens` benchmark over `n` bytes of seeded random text.
///
/// # Panics
///
/// Panics (during tracing) if the parallel token count disagrees with the
/// sequential reference.
pub fn tokens(n: u64, grain: u64) -> TraceProgram {
    let text = crate::util::random_text(0x544F_4B45, n as usize);
    let expected = count_reference(&text);
    trace_program("tokens", RtOptions::default(), move |ctx| {
        let sim_text = ctx.preload(&text);
        // starts[i] = 1 iff a token starts at i.
        let starts = ctx.alloc::<u8>(n);
        ctx.parallel_for(0, n, grain, &|c, i| {
            let b = c.read(&sim_text, i);
            c.work(2);
            let start = if is_delim(b) {
                false
            } else if i == 0 {
                true
            } else {
                is_delim(c.read(&sim_text, i - 1))
            };
            c.write(&starts, i, u8::from(start));
        });
        let total = ctx.reduce(
            0,
            n,
            grain,
            &|c, i| c.read(&starts, i) as u64,
            &|a, b| a + b,
            0,
        );
        assert_eq!(total, expected, "token count mismatch");
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_counts() {
        assert_eq!(count_reference(b"a bb  ccc"), 3);
        assert_eq!(count_reference(b"   "), 0);
        assert_eq!(count_reference(b"x"), 1);
        assert_eq!(count_reference(b""), 0);
        assert_eq!(count_reference(b"a\nb\tc"), 3);
    }

    #[test]
    fn traced_tokens_validates() {
        let p = tokens(4096, 256);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 8);
    }
}
