//! The PBBS-style benchmark suite of the WARDen evaluation (paper §7.1).
//!
//! All fourteen benchmarks of Figures 7–11 are re-implemented on the
//! `warden-rt` fork-join runtime with seeded synthetic inputs, scaled down —
//! as the paper itself scales its inputs — so that simulation completes in
//! seconds. Every benchmark validates its own result during tracing against
//! an independent sequential reference, so a trace that builds is a trace
//! whose answer is right.
//!
//! # Example
//!
//! ```
//! use warden_pbbs::{Bench, Scale};
//!
//! let program = Bench::Primes.build(Scale::Tiny);
//! assert_eq!(program.name, "primes");
//! program.check_invariants().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfs;
mod dedup;
mod dmm;
mod fib;
mod grep;
mod make_array;
mod msort;
mod nn;
mod nqueens;
mod palindrome;
mod primes;
mod quickhull;
mod ray;
mod suffix_array;
mod tokens;
pub mod util;

pub use bfs::{bfs, bfs_reference, bfs_with_layout, make_graph, validate_parents, BfsLayout};
pub use dedup::dedup;
pub use dmm::{dmm, multiply_reference};
pub use fib::fib;
pub use grep::grep;
pub use make_array::make_array;
pub use msort::msort;
pub use nn::{nearest_reference, nn};
pub use nqueens::{known_count, nqueens};
pub use palindrome::{longest_reference, palindrome};
pub use primes::{primes, primes_automark, sieve_reference};
pub use quickhull::{hull_reference, quickhull};
pub use ray::{make_triangles, ray, render_reference};
pub use suffix_array::{suffix_array, suffix_array_reference};
pub use tokens::tokens;

use warden_rt::TraceProgram;

/// Input scale for a benchmark build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for unit/integration tests (fast to trace and replay).
    Tiny,
    /// The evaluation scale used to regenerate the paper's figures —
    /// scaled to simulate in seconds, mirroring the paper's own input
    /// downscaling (§7.1).
    Paper,
}

/// One benchmark of the suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Bench {
    Dedup,
    Dmm,
    Fib,
    Grep,
    MakeArray,
    Msort,
    Nn,
    Nqueens,
    Palindrome,
    Primes,
    Quickhull,
    Ray,
    SuffixArray,
    Tokens,
}

impl Bench {
    /// All benchmarks, in the paper's figure order.
    pub const ALL: [Bench; 14] = [
        Bench::Dedup,
        Bench::Dmm,
        Bench::Fib,
        Bench::Grep,
        Bench::MakeArray,
        Bench::Msort,
        Bench::Nn,
        Bench::Nqueens,
        Bench::Palindrome,
        Bench::Primes,
        Bench::Quickhull,
        Bench::Ray,
        Bench::SuffixArray,
        Bench::Tokens,
    ];

    /// The four benchmarks the paper carries into the disaggregated study
    /// (Figure 12): "the most promising benchmarks from our study of modern
    /// hardware".
    pub const DISAGGREGATED: [Bench; 4] = [Bench::Dmm, Bench::Grep, Bench::Nn, Bench::Palindrome];

    /// The same selection criterion applied to *this* reproduction: the four
    /// benchmarks most accelerated on our dual-socket runs (the paper picked
    /// its own best performers; see EXPERIMENTS.md for why the sets differ).
    pub const DISAGGREGATED_OURS: [Bench; 4] = [
        Bench::MakeArray,
        Bench::Msort,
        Bench::Primes,
        Bench::SuffixArray,
    ];

    /// The benchmark's display name (as it appears in the figures).
    pub fn name(self) -> &'static str {
        match self {
            Bench::Dedup => "dedup",
            Bench::Dmm => "dmm",
            Bench::Fib => "fib",
            Bench::Grep => "grep",
            Bench::MakeArray => "make_array",
            Bench::Msort => "msort",
            Bench::Nn => "nn",
            Bench::Nqueens => "nqueens",
            Bench::Palindrome => "palindrome",
            Bench::Primes => "primes",
            Bench::Quickhull => "quickhull",
            Bench::Ray => "ray",
            Bench::SuffixArray => "suffix-array",
            Bench::Tokens => "tokens",
        }
    }

    /// Look a benchmark up by its display name.
    pub fn by_name(name: &str) -> Option<Bench> {
        Bench::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Trace the benchmark at the given scale (validating its result).
    pub fn build(self, scale: Scale) -> TraceProgram {
        let tiny = scale == Scale::Tiny;
        match self {
            Bench::Dedup => {
                if tiny {
                    dedup(1024, 64)
                } else {
                    dedup(32_768, 512)
                }
            }
            Bench::Dmm => {
                if tiny {
                    dmm(16)
                } else {
                    dmm(64)
                }
            }
            Bench::Fib => {
                if tiny {
                    fib(16, 8)
                } else {
                    fib(27, 13)
                }
            }
            Bench::Grep => {
                if tiny {
                    grep(4096, 256)
                } else {
                    grep(131_072, 1024)
                }
            }
            Bench::MakeArray => {
                if tiny {
                    make_array(2048, 128)
                } else {
                    make_array(65_536, 512)
                }
            }
            Bench::Msort => {
                if tiny {
                    msort(512, 32)
                } else {
                    msort(8192, 64)
                }
            }
            Bench::Nn => {
                if tiny {
                    nn(512, 64)
                } else {
                    nn(2048, 64)
                }
            }
            Bench::Nqueens => {
                if tiny {
                    nqueens(7)
                } else {
                    nqueens(11)
                }
            }
            Bench::Palindrome => {
                if tiny {
                    palindrome(2048, 128)
                } else {
                    palindrome(65_536, 512)
                }
            }
            Bench::Primes => {
                if tiny {
                    primes(1000, 4)
                } else {
                    primes(65_536, 2)
                }
            }
            Bench::Quickhull => {
                if tiny {
                    quickhull(512, 64)
                } else {
                    quickhull(8192, 256)
                }
            }
            Bench::Ray => {
                if tiny {
                    ray(8, 8, 8)
                } else {
                    ray(40, 24, 8)
                }
            }
            Bench::SuffixArray => {
                if tiny {
                    suffix_array(128, 16)
                } else {
                    suffix_array(2048, 32)
                }
            }
            Bench::Tokens => {
                if tiny {
                    tokens(4096, 256)
                } else {
                    tokens(131_072, 1024)
                }
            }
        }
    }
}

impl std::fmt::Display for Bench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in Bench::ALL {
            assert_eq!(Bench::by_name(b.name()), Some(b));
        }
        assert_eq!(Bench::by_name("nope"), None);
    }

    #[test]
    fn disaggregated_subset_is_in_all() {
        for b in Bench::DISAGGREGATED {
            assert!(Bench::ALL.contains(&b));
        }
    }

    #[test]
    fn all_tiny_benchmarks_trace_and_validate() {
        for b in Bench::ALL {
            let p = b.build(Scale::Tiny);
            p.check_invariants()
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert!(p.stats.tasks > 1, "{} must fork", b.name());
            assert!(p.stats.events > 100, "{} too trivial", b.name());
        }
    }
}
