//! `palindrome` — longest palindromic substring by parallel center
//! expansion.
//!
//! Every task expands around its centers, reading the shared text (clean
//! read sharing) and keeping a local best that flows up the join tree.
//! Generated over a two-letter alphabet so expansions are long enough to
//! matter.

use warden_rt::{trace_program, RtOptions, SimSlice, TaskCtx, TraceProgram};

/// Sequential reference: `(length, start)` of the longest palindromic
/// substring, preferring the smallest start on ties.
pub fn longest_reference(text: &[u8]) -> (u64, u64) {
    let n = text.len() as i64;
    let mut best = (0u64, 0u64);
    for center in 0..(2 * n - 1).max(0) {
        let (mut l, mut r) = (center / 2, center / 2 + center % 2);
        // [l, r] inclusive bounds once the first match is checked.
        let mut len = 0i64;
        while l >= 0 && r < n && text[l as usize] == text[r as usize] {
            len = r - l + 1;
            l -= 1;
            r += 1;
        }
        let start = (l + 1) as u64;
        // Centers are visited in ascending order, so the first maximal
        // length found has the smallest start.
        if len as u64 > best.0 {
            best = (len as u64, start);
        }
    }
    best
}

fn expand(ctx: &mut TaskCtx<'_>, text: &SimSlice<u8>, center: u64, n: u64) -> (u64, u64) {
    let (mut l, mut r) = (center as i64 / 2, center as i64 / 2 + center as i64 % 2);
    let mut len = 0i64;
    while l >= 0 && (r as u64) < n {
        let a = ctx.read(text, l as u64);
        let b = ctx.read(text, r as u64);
        ctx.work(4);
        if a != b {
            break;
        }
        len = r - l + 1;
        l -= 1;
        r += 1;
    }
    (len as u64, (l + 1) as u64)
}

/// Build the `palindrome` benchmark over `n` bytes of seeded two-letter
/// text.
///
/// # Panics
///
/// Panics (during tracing) if the parallel answer's length disagrees with
/// the sequential reference.
pub fn palindrome(n: u64, grain: u64) -> TraceProgram {
    let text = crate::util::random_binary_text(0x50414C, n as usize);
    let expected = longest_reference(&text);
    trace_program("palindrome", RtOptions::default(), move |ctx| {
        let sim_text = ctx.preload(&text);
        // Encode (len, start) as len*2^32 + (2^32-1-start): max-reduce picks
        // the longest, ties to the smallest start.
        let best = ctx.reduce(
            0,
            2 * n - 1,
            grain,
            &|c, center| {
                let (len, start) = expand(c, &sim_text, center, n);
                (len << 32) | (u32::MAX as u64 - start)
            },
            &|a, b| a.max(b),
            0,
        );
        let len = best >> 32;
        let start = u32::MAX as u64 - (best & u32::MAX as u64);
        assert_eq!(len, expected.0, "palindrome length mismatch");
        assert_eq!(start, expected.1, "palindrome start mismatch");
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_finds_longest() {
        assert_eq!(longest_reference(b"babad").0, 3);
        assert_eq!(longest_reference(b"cbbd").0, 2);
        assert_eq!(longest_reference(b"aaaa"), (4, 0));
        assert_eq!(longest_reference(b"abc").0, 1);
    }

    #[test]
    fn traced_palindrome_validates() {
        let p = palindrome(2048, 128);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 8);
    }
}
