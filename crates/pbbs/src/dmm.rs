//! `dmm` — dense matrix multiplication over tiles.
//!
//! `C = A · B` with wrapping `u64` arithmetic (exactly checkable). Parallel
//! over output tiles; every leaf streams a row band of `A` and a column band
//! of `B` — long, read-shared scans with leaf-private accumulation.

use warden_rt::{trace_program, RtOptions, TraceProgram};

/// Tile side length.
const TILE: u64 = 8;

/// Sequential reference multiply.
pub fn multiply_reference(a: &[u64], b: &[u64], n: u64) -> Vec<u64> {
    let mut c = vec![0u64; (n * n) as usize];
    for i in 0..n {
        for k in 0..n {
            let aik = a[(i * n + k) as usize];
            for j in 0..n {
                let idx = (i * n + j) as usize;
                c[idx] = c[idx].wrapping_add(aik.wrapping_mul(b[(k * n + j) as usize]));
            }
        }
    }
    c
}

/// Build the `dmm` benchmark for `n × n` matrices (`n` must be a multiple of
/// the tile size, 8).
///
/// # Panics
///
/// Panics if `n` is not a multiple of 8, or (during tracing) if any output
/// element disagrees with the sequential reference.
pub fn dmm(n: u64) -> TraceProgram {
    assert!(
        n.is_multiple_of(TILE) && n > 0,
        "n must be a positive multiple of {TILE}"
    );
    let a = crate::util::random_u64s(0x444D_4D41, (n * n) as usize);
    let b = crate::util::random_u64s(0x444D_4D42, (n * n) as usize);
    let expected = multiply_reference(&a, &b, n);
    trace_program("dmm", RtOptions::default(), move |ctx| {
        let sa = ctx.preload(&a);
        let sb = ctx.preload(&b);
        let sc = ctx.alloc::<u64>(n * n);
        let tiles = n / TILE;
        ctx.parallel_for(0, tiles * tiles, 1, &|c, tile| {
            let ti = (tile / tiles) * TILE;
            let tj = (tile % tiles) * TILE;
            // Register-blocked accumulation: the tile lives in registers
            // (Rust locals) and is written out once.
            let mut acc = [0u64; (TILE * TILE) as usize];
            for k in 0..n {
                let mut brow = [0u64; TILE as usize];
                for (j, slot) in brow.iter_mut().enumerate() {
                    *slot = c.read(&sb, k * n + (tj + j as u64));
                }
                for i in 0..TILE {
                    let aik = c.read(&sa, (ti + i) * n + k);
                    c.work(2 * TILE);
                    for j in 0..TILE {
                        let t = (i * TILE + j) as usize;
                        acc[t] = acc[t].wrapping_add(aik.wrapping_mul(brow[j as usize]));
                    }
                }
            }
            for i in 0..TILE {
                for j in 0..TILE {
                    c.write(&sc, (ti + i) * n + (tj + j), acc[(i * TILE + j) as usize]);
                }
            }
        });
        for idx in 0..n * n {
            assert_eq!(
                ctx.peek(&sc, idx),
                expected[idx as usize],
                "C[{idx}] mismatch"
            );
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_identity() {
        // A · I = A for a 2×2-of-tiles identity — use n=8 identity.
        let n = 8u64;
        let mut ident = vec![0u64; 64];
        for i in 0..8 {
            ident[i * 8 + i] = 1;
        }
        let a = crate::util::random_u64s(1, 64);
        assert_eq!(multiply_reference(&a, &ident, n), a);
    }

    #[test]
    fn traced_dmm_validates() {
        let p = dmm(16);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 2);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_non_tile_sizes() {
        dmm(12);
    }
}
