//! `primes` — the recursive parallel sieve of paper Figure 4.
//!
//! `prime_sieve_upto(N)` first recursively computes the primes up to √N,
//! then for each such prime marks its multiples composite in parallel. The
//! marking writes race benignly: distinct tasks may write `flags[p*m]` for
//! the same index, but always with the same value (`0`) — the flagship
//! example of WAW apathy (paper §3.3).
//!
//! Two variants are provided: [`primes`] declares each `flags` array as a
//! WARD region for the duration of its marking loop (the §3/Figure 4
//! semantics — "Throughout execution, all instances of flags are WARD
//! regions"), with the runtime's dynamic checker verifying that no
//! cross-task RAW occurs; [`primes_automark`] is the ablation with only the
//! automatic leaf-heap marking of §4.2.

use warden_rt::{trace_program, RtOptions, SimSlice, TaskCtx, TraceProgram};

/// Sequential reference sieve.
pub fn sieve_reference(n: u64) -> Vec<bool> {
    let mut flags = vec![true; (n + 1) as usize];
    flags[0] = false;
    if n >= 1 {
        flags[1] = false;
    }
    let mut p = 2u64;
    while p * p <= n {
        if flags[p as usize] {
            let mut m = p * p;
            while m <= n {
                flags[m as usize] = false;
                m += p;
            }
        }
        p += 1;
    }
    flags
}

fn isqrt(n: u64) -> u64 {
    let mut r = (n as f64).sqrt() as u64;
    while (r + 1) * (r + 1) <= n {
        r += 1;
    }
    while r * r > n {
        r -= 1;
    }
    r
}

/// The marking loop shared by both variants.
fn mark_composites(
    ctx: &mut TaskCtx<'_>,
    flags: &SimSlice<u8>,
    sqrtflags: &SimSlice<u8>,
    n: u64,
    grain: u64,
) {
    let root = isqrt(n);
    let inner_grain = 1024u64;
    ctx.parallel_for(2, root + 1, grain.max(1), &|ctx, p| {
        if ctx.read(sqrtflags, p) != 0 {
            // p is prime: mark multiples p*2, p*3, … ≤ n composite. Start at
            // 2p (not p²) exactly as Figure 4 does, so different primes race
            // on common multiples — benignly, with the same value. Long
            // chains (small primes) are themselves parallel, mirroring the
            // nested `parallelfor m` of the figure.
            let last = n / p;
            if last > 2 * inner_grain {
                ctx.parallel_for(2, last + 1, inner_grain, &|ctx, m| {
                    ctx.write(flags, p * m, 0);
                    ctx.work(3);
                });
            } else {
                for m in 2..=last {
                    ctx.write(flags, p * m, 0);
                    ctx.work(3);
                }
            }
        }
    });
}

fn sieve_rec(ctx: &mut TaskCtx<'_>, n: u64, grain: u64, ward: bool) -> SimSlice<u8> {
    let flags = ctx.tabulate::<u8>(n + 1, 512.max(grain), &|_c, _i| 1);
    ctx.write(&flags, 0, 0);
    if n >= 1 {
        ctx.write(&flags, 1, 0);
    }
    if n >= 4 {
        let sqrtflags = sieve_rec(ctx, isqrt(n), grain, ward);
        if ward {
            ctx.ward_scope(&flags, |ctx| {
                mark_composites(ctx, &flags, &sqrtflags, n, grain);
            });
        } else {
            mark_composites(ctx, &flags, &sqrtflags, n, grain);
        }
    }
    flags
}

fn build(name: &str, n: u64, grain: u64, ward: bool) -> TraceProgram {
    trace_program(name, RtOptions::default(), move |ctx| {
        let flags = sieve_rec(ctx, n, grain, ward);
        // Validate against the sequential reference.
        let reference = sieve_reference(n);
        let mut count = 0u64;
        for i in 0..=n {
            let got = ctx.peek(&flags, i) != 0;
            assert_eq!(got, reference[i as usize], "flag mismatch at {i}");
            count += u64::from(got);
        }
        let expected = reference.iter().filter(|&&b| b).count() as u64;
        assert_eq!(count, expected);
    })
}

/// Build the `primes` benchmark with the Figure 4 semantics: each level's
/// `flags` array is a declared WARD region for the duration of its marking
/// loop (verified dynamically), exactly as the paper's example states —
/// "Throughout execution, all instances of flags are WARD regions."
pub fn primes(n: u64, grain: u64) -> TraceProgram {
    build("primes", n, grain, true)
}

/// Ablation: the same sieve with only the automatic leaf-heap marking of
/// §4.2 (no declared scope) — the racing composite-marking writes then run
/// under plain MESI.
pub fn primes_automark(n: u64, grain: u64) -> TraceProgram {
    build("primes_automark", n, grain, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_counts() {
        // π(100) = 25, π(1000) = 168.
        assert_eq!(sieve_reference(100).iter().filter(|&&b| b).count(), 25);
        assert_eq!(sieve_reference(1000).iter().filter(|&&b| b).count(), 168);
    }

    #[test]
    fn isqrt_exact() {
        for n in 0..200u64 {
            let r = isqrt(n.max(1));
            assert!(r * r <= n.max(1) && (r + 1) * (r + 1) > n.max(1), "n={n}");
        }
    }

    #[test]
    fn traced_sieve_validates() {
        let p = primes(500, 4);
        p.check_invariants().unwrap();
        assert!(p.stats.tasks > 3);
    }

    #[test]
    fn ward_scopes_cover_the_marking_writes() {
        // Flags arrays must span whole pages for the inward-rounded scope
        // region to be non-empty.
        let auto = primes_automark(16_384, 4);
        let ward = primes(16_384, 4);
        ward.check_invariants().unwrap();
        assert!(
            ward.stats.accesses_in_ward > auto.stats.accesses_in_ward,
            "declared scopes must cover the marking writes (auto {}, ward {})",
            auto.stats.accesses_in_ward,
            ward.stats.accesses_in_ward
        );
    }

    #[test]
    fn sub_page_ward_scope_is_checker_only() {
        // A scope over a sub-page slice emits no hardware region but still
        // validates (and its trace stays balanced).
        let p = primes(300, 4);
        p.check_invariants().unwrap();
    }
}
