//! Criterion suite for the replay hot path: the three lookups every demand
//! access can touch (region CAM, directory page masks, backing memory) and
//! the end-to-end replay of the baseline kernels under both protocols.
//!
//! These complement `benches/microbench.rs` (single coherence transactions)
//! by hammering exactly the structures the flat-index layout optimizes.
//! Run with `cargo bench --bench hotpath`; `--test` smoke-runs the harness
//! without the timing loops (used by `ci.sh bench`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use warden_coherence::{
    AddRegion, CacheConfig, CoherenceSystem, LatencyModel, ProtocolId, RegionStore, Topology,
};
use warden_mem::{Addr, Memory, PAGE_SIZE};
use warden_pbbs::Scale;
use warden_sim::{simulate, simulate_with_options, MachineConfig, SimOptions};

/// Region-CAM lookups against a half-full store: the per-access
/// "is this address WARD?" question, both when it hits and when it misses.
fn region_lookup(c: &mut Criterion) {
    let mut store = RegionStore::new(1024);
    for i in 0..512u64 {
        match store.add(Addr(2 * i * PAGE_SIZE), Addr((2 * i + 1) * PAGE_SIZE)) {
            AddRegion::Added(_) => {}
            AddRegion::Overflow => unreachable!(),
        }
    }
    let mut g = c.benchmark_group("hotpath/region_lookup");
    g.bench_function("hit", |b| {
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 2) % 1024;
            store.contains(black_box(Addr(page * PAGE_SIZE)))
        });
    });
    g.bench_function("miss", |b| {
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 2) % 1024;
            store.contains(black_box(Addr((page + 1) * PAGE_SIZE)))
        });
    });
    g.finish();
}

/// Directory accesses streaming over many pages: every store walks the
/// per-page Owned/Ward block-mask index.
fn dir_access(c: &mut Criterion) {
    let mut sys = CoherenceSystem::new(
        Topology::new(2, 4),
        LatencyModel::xeon_gold_6126(),
        CacheConfig::paper(4),
        ProtocolId::Mesi,
    );
    let mut a = 0u64;
    c.bench_function("hotpath/dir_store_stream", |b| {
        b.iter(|| {
            a = (a + 64) % (256 * PAGE_SIZE);
            sys.store(0, black_box(Addr(a)), &[1]);
            sys.store(5, black_box(Addr(a)), &[2]);
        });
    });
}

/// Backing-memory block reads across a wide address range: the page-table
/// lookup behind every LLC miss.
fn memory_access(c: &mut Criterion) {
    let mut mem = Memory::new();
    for page in 0..512u64 {
        mem.write_bytes(Addr(page * PAGE_SIZE), &[page as u8; 64]);
    }
    let mut a = 0u64;
    c.bench_function("hotpath/memory_read_block", |b| {
        b.iter(|| {
            a = (a + PAGE_SIZE + 64) % (512 * PAGE_SIZE);
            mem.read_block(black_box(Addr(a).block()))
        });
    });
}

/// End-to-end replay of the baseline kernels (tiny traces) under both
/// protocols — the number `bench_baseline` tracks, in criterion form.
fn replay(c: &mut Criterion) {
    let machine = MachineConfig::dual_socket().with_cores(4);
    for &bench in warden_bench::hotpath::KERNELS {
        let program = bench.build(Scale::Tiny);
        let name = format!("hotpath/replay/{}", bench.name());
        let mut g = c.benchmark_group(&name);
        g.bench_function("mesi", |b| {
            b.iter(|| simulate(&program, &machine, ProtocolId::Mesi))
        });
        g.bench_function("warden", |b| {
            b.iter(|| simulate(&program, &machine, ProtocolId::Warden))
        });
        g.finish();
    }
}

/// The same replays under the sharded-selection lane engine: a lane sweep
/// per kernel. Every laned replay is bit-identical to the sequential one;
/// this tracks what the sharded core selection costs (or saves) in wall
/// clock as the lane count varies.
fn replay_lanes(c: &mut Criterion) {
    let machine = MachineConfig::dual_socket().with_cores(4);
    for &bench in warden_bench::hotpath::KERNELS {
        let program = bench.build(Scale::Tiny);
        let name = format!("hotpath/replay_lanes/{}", bench.name());
        let mut g = c.benchmark_group(&name);
        for lanes in [1usize, 2, 4] {
            let opts = SimOptions {
                lanes,
                ..SimOptions::default()
            };
            g.bench_function(format!("warden/lanes{lanes}"), |b| {
                b.iter(|| simulate_with_options(&program, &machine, ProtocolId::Warden, &opts))
            });
        }
        g.finish();
    }
}

criterion_group!(
    benches,
    region_lookup,
    dir_access,
    memory_access,
    replay,
    replay_lanes
);
criterion_main!(benches);
