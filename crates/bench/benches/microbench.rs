//! Criterion microbenchmarks of the simulator's hot paths: the region
//! store, the cache arrays, individual coherence transactions, trace
//! capture, and end-to-end replay.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use warden_coherence::{
    CacheConfig, CoherenceSystem, LatencyModel, ProtocolId, RegionStore, Topology,
};
use warden_mem::{Addr, BlockAddr, CacheArray, CacheGeometry, PAGE_SIZE};
use warden_pbbs::{Bench, Scale};
use warden_rt::{trace_program, RtOptions};
use warden_sim::{pingpong, simulate, MachineConfig, Placement};

fn region_store(c: &mut Criterion) {
    c.bench_function("region_store/add_remove", |b| {
        let mut store = RegionStore::new(1024);
        b.iter(|| {
            let id = match store.add(Addr(0), Addr(PAGE_SIZE)) {
                warden_coherence::AddRegion::Added(id) => id,
                warden_coherence::AddRegion::Overflow => unreachable!(),
            };
            store.remove(black_box(id));
        });
    });
    c.bench_function("region_store/lookup", |b| {
        let mut store = RegionStore::new(1024);
        for i in 0..512u64 {
            store.add(Addr(2 * i * PAGE_SIZE), Addr((2 * i + 1) * PAGE_SIZE));
        }
        b.iter(|| store.contains(black_box(Addr(100 * PAGE_SIZE + 7))));
    });
}

fn cache_array(c: &mut Criterion) {
    c.bench_function("cache_array/insert_evict", |b| {
        let mut arr: CacheArray<u64> = CacheArray::new(CacheGeometry::new(32 * 1024, 8));
        let mut i = 0u64;
        b.iter(|| {
            arr.insert(BlockAddr(i), i);
            i += 1;
        });
    });
    c.bench_function("cache_array/hit", |b| {
        let mut arr: CacheArray<u64> = CacheArray::new(CacheGeometry::new(32 * 1024, 8));
        arr.insert(BlockAddr(42), 1);
        b.iter(|| arr.get(black_box(BlockAddr(42))).copied());
    });
}

fn coherence(c: &mut Criterion) {
    let mk = |protocol| {
        CoherenceSystem::new(
            Topology::new(2, 12),
            LatencyModel::xeon_gold_6126(),
            CacheConfig::paper(12),
            protocol,
        )
    };
    c.bench_function("coherence/l1_hit_load", |b| {
        let mut sys = mk(ProtocolId::Mesi);
        sys.load(0, Addr(0x1000), 8);
        b.iter(|| sys.load(0, black_box(Addr(0x1000)), 8));
    });
    c.bench_function("coherence/sharing_store", |b| {
        let mut sys = mk(ProtocolId::Mesi);
        b.iter(|| {
            // Two cores trading a line: the expensive MESI path.
            sys.store(0, Addr(0x2000), &[1]);
            sys.store(13, Addr(0x2000), &[2]);
        });
    });
    c.bench_function("coherence/ward_serve", |b| {
        let mut sys = mk(ProtocolId::Warden);
        sys.add_region(Addr(0), Addr(PAGE_SIZE)).unwrap();
        b.iter(|| {
            sys.store(0, Addr(64), &[1]);
            sys.store(13, Addr(64), &[2]);
        });
    });
    c.bench_function("coherence/region_cycle_with_reconcile", |b| {
        let mut sys = mk(ProtocolId::Warden);
        b.iter(|| {
            let id = sys.add_region(Addr(0), Addr(PAGE_SIZE)).unwrap();
            sys.store(0, Addr(0), &[1]);
            sys.store(13, Addr(8), &[2]);
            sys.remove_region(id);
        });
    });
}

fn end_to_end(c: &mut Criterion) {
    c.bench_function("pingpong/diff_socket_1k", |b| {
        let m = MachineConfig::dual_socket();
        b.iter(|| pingpong(&m, Placement::DiffSocket, 1000));
    });
    c.bench_function("trace/tabulate_reduce_4k", |b| {
        b.iter(|| {
            trace_program("bench", RtOptions::default(), |ctx| {
                let xs = ctx.tabulate::<u64>(4096, 256, &|_c, i| i);
                let _ = ctx.reduce(0, 4096, 256, &|c, i| c.read(&xs, i), &|a, b| a + b, 0);
            })
        });
    });
    let program = Bench::MakeArray.build(Scale::Tiny);
    let machine = MachineConfig::dual_socket().with_cores(2);
    c.bench_function("replay/make_array_tiny_mesi", |b| {
        b.iter(|| simulate(&program, &machine, ProtocolId::Mesi));
    });
    c.bench_function("replay/make_array_tiny_warden", |b| {
        b.iter(|| simulate(&program, &machine, ProtocolId::Warden));
    });
}

criterion_group!(benches, region_store, cache_array, coherence, end_to_end);
criterion_main!(benches);
