//! Criterion benches of the simulator under the design-choice variants
//! DESIGN.md calls out (the *simulated-cycle* comparisons live in the
//! `ablations` binary; these measure the simulator's own cost so regressions
//! in the hot paths are caught).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use warden_coherence::ProtocolId;
use warden_pbbs::{Bench, Scale};
use warden_rt::{trace_program, MarkPolicy, RtOptions};
use warden_sim::{simulate, MachineConfig};

fn protocols(c: &mut Criterion) {
    let program = Bench::Msort.build(Scale::Tiny);
    let machine = MachineConfig::dual_socket();
    let mut g = c.benchmark_group("replay_protocol");
    for proto in [ProtocolId::Mesi, ProtocolId::Warden] {
        g.bench_with_input(BenchmarkId::from_parameter(proto), &proto, |b, &p| {
            b.iter(|| simulate(&program, &machine, p));
        });
    }
    g.finish();
}

fn sector_granularity(c: &mut Criterion) {
    let program = Bench::Tokens.build(Scale::Tiny);
    let mut g = c.benchmark_group("replay_sector_bytes");
    for sector in [1u64, 8, 64] {
        let mut machine = MachineConfig::dual_socket();
        machine.cache.sector_bytes = sector;
        g.bench_with_input(BenchmarkId::from_parameter(sector), &machine, |b, m| {
            b.iter(|| simulate(&program, m, ProtocolId::Warden));
        });
    }
    g.finish();
}

fn region_capacity(c: &mut Criterion) {
    let program = Bench::Primes.build(Scale::Tiny);
    let mut g = c.benchmark_group("replay_region_capacity");
    for cap in [8usize, 128, 1024] {
        let mut machine = MachineConfig::dual_socket();
        machine.cache.region_capacity = cap;
        g.bench_with_input(BenchmarkId::from_parameter(cap), &machine, |b, m| {
            b.iter(|| simulate(&program, m, ProtocolId::Warden));
        });
    }
    g.finish();
}

fn mark_policy_tracing(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_mark_policy");
    for (label, mark) in [
        ("none", MarkPolicy::None),
        ("no_unmark_at_fork", MarkPolicy::NoUnmarkAtFork),
        ("leaf_heaps", MarkPolicy::LeafHeaps),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                trace_program(
                    "bench",
                    RtOptions {
                        mark,
                        ..RtOptions::default()
                    },
                    |ctx| {
                        let xs = ctx.tabulate::<u64>(4096, 128, &|_c, i| i);
                        let _ = ctx.reduce(0, 4096, 128, &|c, i| c.read(&xs, i), &|a, b| a + b, 0);
                    },
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    protocols,
    sector_granularity,
    region_capacity,
    mark_policy_tracing
);
criterion_main!(benches);
