//! Experiment harness regenerating every table and figure of the WARDen
//! paper's evaluation (§6.2 validation and §7).
//!
//! The library provides the shared machinery; each binary under `src/bin/`
//! regenerates one table or figure:
//!
//! | binary        | regenerates |
//! |---------------|-------------|
//! | `table1`      | Table 1 — ping-pong latency validation |
//! | `table2`      | Table 2 — simulated system specification |
//! | `fig7`        | Figure 7 — single-socket speedup + energy |
//! | `fig8`        | Figure 8 — dual-socket speedup + energy |
//! | `fig9`        | Figure 9 — inv+downgrade reduction vs speedup |
//! | `fig10`       | Figure 10 — downgrade/invalidations breakdown |
//! | `fig11`       | Figure 11 — IPC improvement |
//! | `fig12`       | Figure 12 — disaggregated machine |
//! | `area`        | §6.1 — CACTI-style area estimates |
//! | `ablations`   | design-choice ablations from DESIGN.md |
//! | `all_figures` | everything above, plus an EXPERIMENTS.md-style report |
//! | `serve`       | the `warden-serve` simulation server (drains on stdin EOF/`quit`) |
//! | `fuzzgen`     | seeded differential coherence fuzz gate + coherence-atlas sweep |
//! | `loadgen`     | oracle-backed conformance load generator for `serve` |
//!
//! Run with `cargo run -p warden-bench --release --bin <name> [-- --scale tiny]`.
//!
//! Every matrix binary routes its simulations through the supervised
//! [`campaign`] runner: worker threads with `catch_unwind` panic isolation,
//! per-run watchdog deadlines, bounded retry-with-backoff, and — with
//! `--campaign-dir <dir>` — durable, checksummed per-run records plus a
//! `manifest.json`, so a killed campaign resumes from completed work and
//! interrupted runs continue from their engine checkpoints bit-identically.
//! See [`args`] for the shared strict flag vocabulary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod atlas;
pub mod campaign;
pub mod chaos;
pub mod error;
pub mod figures;
pub mod fmt;
pub mod fuzz;
pub mod hotpath;
pub mod loadgen;
pub mod obs_export;
pub mod paper;
pub mod runner;

pub use args::{parse_patterns, parse_protocols, HarnessArgs};
pub use atlas::{atlas_machines, run_atlas, Atlas, AtlasCell};
pub use campaign::{
    campaign_suite, protocol_campaign, run_campaign, CampaignConfig, ProtocolRun, RunResult,
    RunSpec, Workload,
};
pub use error::{harness_main, HarnessError, RunFailure};
pub use fuzz::{
    check_spec, parse_mutation_spec, run_fuzz_gate, Disagreement, FuzzOptions, FuzzReport,
};
pub use obs_export::export_outcome;
pub use runner::{run_bench, run_pair, suite, BenchRun, RunOptions, SuiteScale};
