//! Replay-throughput measurement backing `bench_baseline` and
//! `BENCH_hotpath.json`.
//!
//! The hot-path baseline answers one question: *how many trace events per
//! wall-clock second does the replay engine sustain on the paper kernels?*
//! Each kernel is traced once, then replayed `runs` times under each
//! protocol; the **median** wall time is the sample (robust to a stray
//! scheduler hiccup). Because replay is deterministic, the simulated cycle
//! count is a constant per (kernel, protocol) — so the ratio of
//! `cycles_per_sec` between two builds equals the ratio of wall times, and
//! either rate works as "replay throughput".
//!
//! `render_report` emits a small stable JSON document; `parse_report` reads
//! the same document back (only the `"kernels"` section), so a run on an
//! old build can be carried forward as the `"baseline"` section of the next
//! report and the per-kernel speedup computed in one place.

use crate::error::HarnessError;
use std::time::Instant;
use warden_coherence::ProtocolId;
use warden_pbbs::{Bench, Scale};
use warden_sim::{simulate_with_options, MachineConfig, SimOptions};

/// The kernels tracked by the baseline. `fib` and `msort` are the paper's
/// classic divide-and-conquer pair; `dedup`, `suffix-array`, and `nqueens`
/// stand in for irregular-access kernels (this repo's pbbs port has no
/// `bfs`): `suffix-array` has the widest resident footprint in the suite
/// and `nqueens` the deepest task tree relative to its trace length.
pub const KERNELS: &[Bench] = &[
    Bench::Fib,
    Bench::Msort,
    Bench::Dedup,
    Bench::SuffixArray,
    Bench::Nqueens,
];

/// Schema tag written into (and required from) every report.
pub const SCHEMA: &str = "warden-hotpath-v1";

/// Lane count of the `"laned"` report section: the sharded-selection
/// engine at one lane per socket pair on the baseline machine. Laned
/// replays are bit-identical to sequential ones (the lane-determinism CI
/// gate asserts it); this section tracks their wall-clock cost so a
/// regression in the sharded selection path is caught like any other.
pub const LANED_LANES: usize = 4;

/// One (kernel, protocol) throughput sample.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelSample {
    /// Benchmark name (`fib`, `msort`, `bfs`).
    pub kernel: String,
    /// `mesi` or `warden`.
    pub protocol: String,
    /// Trace events replayed per run (constant per kernel+scale).
    pub events: u64,
    /// Simulated makespan in cycles (deterministic per kernel+protocol).
    pub sim_cycles: u64,
    /// Median wall time of the replay, in nanoseconds.
    pub median_wall_ns: u64,
    /// Replay throughput: `events / median wall seconds`.
    pub events_per_sec: f64,
    /// Simulated cycles retired per wall second.
    pub cycles_per_sec: f64,
}

/// The machine every baseline sample runs on (recorded in the report).
pub fn baseline_machine() -> MachineConfig {
    MachineConfig::dual_socket().with_cores(4)
}

fn protocol_name(p: ProtocolId) -> &'static str {
    p.name()
}

/// Replay `bench` under `protocol` `runs` times and take the median wall
/// time. The trace is built once, outside the timed region.
pub fn measure_kernel(
    bench: Bench,
    scale: Scale,
    machine: &MachineConfig,
    protocol: ProtocolId,
    runs: u32,
) -> KernelSample {
    measure_kernel_laned(bench, scale, machine, protocol, runs, 1)
}

/// [`measure_kernel`] under the sharded-selection lane engine
/// ([`SimOptions::lanes`]): the replay is bit-identical, only the
/// wall-clock differs. `lanes <= 1` measures the plain sequential scan.
pub fn measure_kernel_laned(
    bench: Bench,
    scale: Scale,
    machine: &MachineConfig,
    protocol: ProtocolId,
    runs: u32,
    lanes: usize,
) -> KernelSample {
    assert!(runs > 0, "need at least one run");
    let program = bench.build(scale);
    let opts = SimOptions {
        lanes,
        ..SimOptions::default()
    };
    let mut walls: Vec<u64> = Vec::with_capacity(runs as usize);
    let mut sim_cycles = 0;
    for _ in 0..runs {
        let t0 = Instant::now();
        let out = simulate_with_options(&program, machine, protocol, &opts);
        walls.push(t0.elapsed().as_nanos().max(1) as u64);
        sim_cycles = out.stats.cycles;
    }
    walls.sort_unstable();
    let median_wall_ns = walls[walls.len() / 2];
    let secs = median_wall_ns as f64 / 1e9;
    let events = program.total_events();
    KernelSample {
        kernel: bench.name().to_string(),
        protocol: protocol_name(protocol).to_string(),
        events,
        sim_cycles,
        median_wall_ns,
        events_per_sec: events as f64 / secs,
        cycles_per_sec: sim_cycles as f64 / secs,
    }
}

/// Measure every tracked kernel under MESI and WARDen on the baseline
/// machine.
pub fn measure_suite(scale: Scale, runs: u32) -> Vec<KernelSample> {
    measure_suite_laned(scale, runs, 1)
}

/// [`measure_suite`] at a given lane count (see [`LANED_LANES`]).
pub fn measure_suite_laned(scale: Scale, runs: u32, lanes: usize) -> Vec<KernelSample> {
    let machine = baseline_machine();
    let mut out = Vec::new();
    for &bench in KERNELS {
        for protocol in [ProtocolId::Mesi, ProtocolId::Warden] {
            eprint!("  {:<8} {:<6}\r", bench.name(), protocol_name(protocol));
            out.push(measure_kernel_laned(
                bench, scale, &machine, protocol, runs, lanes,
            ));
        }
    }
    out
}

fn sample_json(s: &KernelSample) -> String {
    format!(
        "    {{\"kernel\":\"{}\",\"protocol\":\"{}\",\"events\":{},\"sim_cycles\":{},\
         \"median_wall_ns\":{},\"events_per_sec\":{:.1},\"cycles_per_sec\":{:.1}}}",
        s.kernel,
        s.protocol,
        s.events,
        s.sim_cycles,
        s.median_wall_ns,
        s.events_per_sec,
        s.cycles_per_sec
    )
}

fn section(name: &str, samples: &[KernelSample]) -> String {
    let body: Vec<String> = samples.iter().map(sample_json).collect();
    format!("  \"{}\": [\n{}\n  ]", name, body.join(",\n"))
}

/// The baseline sample matching `s`, if any.
fn matching<'a>(baseline: &'a [KernelSample], s: &KernelSample) -> Option<&'a KernelSample> {
    baseline
        .iter()
        .find(|b| b.kernel == s.kernel && b.protocol == s.protocol)
}

/// Per-(kernel, protocol) throughput ratio `current / baseline`.
pub fn speedups(current: &[KernelSample], baseline: &[KernelSample]) -> Vec<(String, String, f64)> {
    current
        .iter()
        .filter_map(|s| {
            matching(baseline, s).map(|b| {
                (
                    s.kernel.clone(),
                    s.protocol.clone(),
                    s.events_per_sec / b.events_per_sec,
                )
            })
        })
        .collect()
}

/// Render the JSON report. With a `laned` sample set, the report carries a
/// `"laned"` section (same kernels replayed under [`LANED_LANES`] event
/// lanes — bit-identical results, independently tracked wall clock). With
/// a `baseline`, the report also carries that sample set plus the
/// per-kernel speedup ratios.
pub fn render_report(
    current: &[KernelSample],
    laned: Option<&[KernelSample]>,
    baseline: Option<&[KernelSample]>,
    scale: Scale,
    runs: u32,
) -> String {
    let scale_name = match scale {
        Scale::Tiny => "tiny",
        Scale::Paper => "paper",
    };
    let mut sections = vec![
        format!("  \"schema\": \"{SCHEMA}\""),
        format!("  \"scale\": \"{scale_name}\""),
        format!("  \"machine\": \"{}\"", baseline_machine().name),
        format!("  \"runs\": {runs}"),
        section("kernels", current),
    ];
    if let Some(lan) = laned {
        sections.push(format!("  \"laned_lanes\": {LANED_LANES}"));
        sections.push(section("laned", lan));
    }
    if let Some(base) = baseline {
        sections.push(section("baseline", base));
        let sp: Vec<String> = speedups(current, base)
            .iter()
            .map(|(k, p, r)| {
                format!("    {{\"kernel\":\"{k}\",\"protocol\":\"{p}\",\"ratio\":{r:.3}}}")
            })
            .collect();
        sections.push(format!("  \"speedup\": [\n{}\n  ]", sp.join(",\n")));
    }
    format!("{{\n{}\n}}\n", sections.join(",\n"))
}

fn field<'a>(obj: &'a str, key: &str) -> Result<&'a str, HarnessError> {
    let tag = format!("\"{key}\":");
    let start = obj
        .find(&tag)
        .ok_or_else(|| HarnessError::Args(format!("baseline report missing {key:?} in {obj:?}")))?
        + tag.len();
    let rest = &obj[start..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| HarnessError::Args(format!("unterminated {key:?} in {obj:?}")))?;
    Ok(rest[..end].trim().trim_matches('"'))
}

fn num<T: std::str::FromStr>(obj: &str, key: &str) -> Result<T, HarnessError> {
    field(obj, key)?
        .parse()
        .map_err(|_| HarnessError::Args(format!("bad number for {key:?} in {obj:?}")))
}

/// Parse the `"kernels"` section back out of a report written by
/// [`render_report`]. Only this tool's own reports are accepted (the
/// schema tag is checked); this is a reader for a fixed format, not a
/// general JSON parser.
pub fn parse_report(json: &str) -> Result<Vec<KernelSample>, HarnessError> {
    parse_section(json, "kernels")
}

/// Parse the `"laned"` section (sequential-identical replays under
/// [`LANED_LANES`] event lanes) out of a report, if present. Reports from
/// before the lane engine simply have no such section.
pub fn parse_laned(json: &str) -> Result<Option<Vec<KernelSample>>, HarnessError> {
    if !json.contains("\"laned\": [") {
        return Ok(None);
    }
    parse_section(json, "laned").map(Some)
}

fn parse_section(json: &str, name: &str) -> Result<Vec<KernelSample>, HarnessError> {
    if !json.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(HarnessError::Args(format!(
            "baseline report does not carry schema {SCHEMA:?}"
        )));
    }
    let tag = format!("\"{name}\": [");
    let start = json
        .find(&tag)
        .ok_or_else(|| HarnessError::Args(format!("baseline report has no {name:?} section")))?;
    let rest = &json[start..];
    let end = rest
        .find(']')
        .ok_or_else(|| HarnessError::Args(format!("unterminated {name:?} section")))?;
    let mut out = Vec::new();
    for obj in rest[..end].split('{').skip(1) {
        out.push(KernelSample {
            kernel: field(obj, "kernel")?.to_string(),
            protocol: field(obj, "protocol")?.to_string(),
            events: num(obj, "events")?,
            sim_cycles: num(obj, "sim_cycles")?,
            median_wall_ns: num(obj, "median_wall_ns")?,
            events_per_sec: num(obj, "events_per_sec")?,
            cycles_per_sec: num(obj, "cycles_per_sec")?,
        });
    }
    if out.is_empty() {
        return Err(HarnessError::Args(format!(
            "baseline report has an empty {name:?} section"
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kernel: &str, protocol: &str, eps: f64) -> KernelSample {
        KernelSample {
            kernel: kernel.into(),
            protocol: protocol.into(),
            events: 1000,
            sim_cycles: 2500,
            median_wall_ns: 1_000_000,
            events_per_sec: eps,
            cycles_per_sec: eps * 2.5,
        }
    }

    #[test]
    fn report_round_trips_through_parse() {
        let samples = vec![sample("fib", "mesi", 1e6), sample("fib", "warden", 2e6)];
        let json = render_report(&samples, None, None, Scale::Tiny, 5);
        let parsed = parse_report(&json).unwrap();
        assert_eq!(parsed, samples);
        assert_eq!(parse_laned(&json).unwrap(), None, "no laned section");
    }

    #[test]
    fn laned_section_round_trips_independently() {
        let seq = vec![sample("fib", "mesi", 1e6)];
        let lan = vec![sample("fib", "mesi", 0.9e6)];
        let json = render_report(&seq, Some(&lan), None, Scale::Tiny, 5);
        assert!(json.contains(&format!("\"laned_lanes\": {LANED_LANES}")));
        assert_eq!(parse_report(&json).unwrap(), seq);
        assert_eq!(parse_laned(&json).unwrap(), Some(lan));
    }

    #[test]
    fn baseline_section_yields_speedups() {
        let before = vec![sample("fib", "mesi", 1e6)];
        let after = vec![sample("fib", "mesi", 2e6)];
        let json = render_report(&after, None, Some(&before), Scale::Tiny, 5);
        assert!(json.contains("\"baseline\""));
        assert!(json.contains("\"ratio\":2.000"), "{json}");
        // Parsing recovers the *current* samples, not the baseline.
        assert_eq!(parse_report(&json).unwrap(), after);
    }

    #[test]
    fn foreign_documents_are_rejected() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report("{\"schema\": \"warden-hotpath-v1\"}").is_err());
    }

    #[test]
    fn laned_measurement_replays_the_same_simulation() {
        let machine = MachineConfig::single_socket().with_cores(2);
        let seq = measure_kernel(Bench::Fib, Scale::Tiny, &machine, ProtocolId::Warden, 1);
        let lan = measure_kernel_laned(Bench::Fib, Scale::Tiny, &machine, ProtocolId::Warden, 1, 2);
        assert_eq!(
            seq.sim_cycles, lan.sim_cycles,
            "laned replay is bit-identical"
        );
        assert_eq!(seq.events, lan.events);
    }

    #[test]
    fn measure_produces_consistent_rates() {
        let machine = MachineConfig::single_socket().with_cores(2);
        let s = measure_kernel(Bench::Fib, Scale::Tiny, &machine, ProtocolId::Mesi, 1);
        assert!(s.events > 0 && s.sim_cycles > 0);
        let secs = s.median_wall_ns as f64 / 1e9;
        assert!((s.events_per_sec - s.events as f64 / secs).abs() < 1.0);
        assert!((s.cycles_per_sec - s.sim_cycles as f64 / secs).abs() < 1.0);
    }
}
