//! Reference numbers from the paper, for side-by-side reporting.
//!
//! Values stated in the paper's text are exact; per-benchmark values from
//! the bar charts are approximate read-offs (±0.05) and are marked as such
//! in the generated reports.

/// Table 1: ping-pong cycles/iteration (scenario, real HW, Sniper).
pub const TABLE1: [(&str, f64, f64); 3] = [
    ("Same core", 8.738, 11.21),
    ("Diff. core, same socket", 479.68, 286.01),
    ("Diff. core, diff. socket", 1163.23, 1213.59),
];

/// Figure 7 (single socket): mean speedup stated in §7.2.
pub const FIG7_MEAN_SPEEDUP: f64 = 1.24;
/// Figure 7: mean total-processor energy savings (%).
pub const FIG7_MEAN_TOTAL_ENERGY: f64 = 17.4;
/// Figure 7: mean interconnect energy savings (%).
pub const FIG7_MEAN_INTERCONNECT_ENERGY: f64 = 17.3;

/// Figure 8 (dual socket): mean speedup stated in the abstract and §7.2.
pub const FIG8_MEAN_SPEEDUP: f64 = 1.46;
/// Figure 8: mean total-processor energy savings (%).
pub const FIG8_MEAN_TOTAL_ENERGY: f64 = 23.1;
/// Figure 8: mean interconnect energy savings (%).
pub const FIG8_MEAN_INTERCONNECT_ENERGY: f64 = 52.9;

/// Figure 8a per-benchmark speedups, approximate read-offs from the chart.
pub fn fig8_speedup(bench: &str) -> Option<f64> {
    Some(match bench {
        "dedup" => 1.05,
        "dmm" => 1.40,
        "fib" => 1.05,
        "grep" => 1.30,
        "make_array" => 1.10,
        "msort" => 1.35,
        "nn" => 1.50,
        "nqueens" => 1.60,
        "palindrome" => 2.10,
        "primes" => 1.30,
        "quickhull" => 1.25,
        "ray" => 1.75,
        "suffix-array" => 1.65,
        "tokens" => 1.25,
        _ => return None,
    })
}

/// Figure 10: downgrade share of the avoided events (%), for the benchmarks
/// the paper quotes exactly in §7.2.
pub fn fig10_downgrade_share(bench: &str) -> Option<f64> {
    Some(match bench {
        "nqueens" => 77.7,
        "ray" => 86.4,
        "suffix-array" => 98.3,
        "fib" => 2.65,
        _ => return None,
    })
}

/// Figure 12 (disaggregated): mean speedup stated in §7.3.
pub const FIG12_MEAN_SPEEDUP: f64 = 3.8;
/// Figure 12: mean network energy savings (%).
pub const FIG12_MEAN_NETWORK_ENERGY: f64 = 77.1;
/// Figure 12: mean processor energy savings (%).
pub const FIG12_MEAN_PROCESSOR_ENERGY: f64 = 49.5;

/// §6.1: cache-area overhead of byte sectoring.
pub const AREA_SECTORING: f64 = 0.079;
/// §6.1: area fraction bound for the 1024-entry region store.
pub const AREA_REGION_CAM_BOUND: f64 = 0.0005;

/// §6.2: observed reconciliation rate — one block per this many cycles.
pub const RECON_CYCLES_PER_BLOCK: f64 = 50_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoted_values_present() {
        assert_eq!(TABLE1.len(), 3);
        assert!(fig10_downgrade_share("ray").unwrap() > 80.0);
        assert!(fig10_downgrade_share("unknown").is_none());
        assert!(fig8_speedup("palindrome").unwrap() > 2.0);
    }
}
