//! Conformance load generation against a `warden-serve` instance.
//!
//! The load generator is an *oracle-backed* client: before opening a single
//! connection it computes every expected outcome directly — each unique
//! request is simulated once through the supervised [`crate::campaign`]
//! runner (panic isolation, watchdog, retries) and reduced to its
//! [`warden_serve::outcome_digest`]. K concurrent clients then hammer the
//! server with the request mix, and **every** `Outcome` response must carry
//! exactly the digest the oracle predicts — statistics, energy, final
//! memory image and region peak all collapse into that one comparison, so
//! a single flipped bit anywhere in the served result fails the run.
//!
//! `Busy` responses are retried with backoff and counted, never fatal:
//! backpressure is the server working as designed, and the report proves
//! the rejected requests eventually completed.

use crate::campaign::{run_campaign, RunSpec, Workload};
use crate::error::HarnessError;
use crate::CampaignConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use warden_obs::MetricsRegistry;
use warden_serve::SimRequest;
use warden_serve::{
    outcome_digest, Client, Request, ResilientClient, Response, RetryPolicy, ServedFrom,
};

/// Where the load generator connects.
#[derive(Clone, Debug)]
pub enum Target {
    /// A TCP address (`host:port`).
    Tcp(String),
    /// A Unix-socket path.
    Uds(PathBuf),
}

/// One request paired with the digest a conforming server must produce.
#[derive(Clone, Debug)]
pub struct Expectation {
    /// The request to send.
    pub req: SimRequest,
    /// FNV-1a digest of the directly computed [`warden_sim::SimOutcome`].
    pub digest: u64,
}

/// Latency aggregate for one provenance class, in microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStat {
    /// Responses observed in this class.
    pub count: u64,
    /// Sum of per-response latencies.
    pub total_us: u64,
    /// Fastest response (0 when `count == 0`).
    pub min_us: u64,
    /// Slowest response.
    pub max_us: u64,
}

impl LatencyStat {
    fn record(&mut self, us: u64) {
        if self.count == 0 || us < self.min_us {
            self.min_us = us;
        }
        if us > self.max_us {
            self.max_us = us;
        }
        self.count += 1;
        self.total_us = self.total_us.saturating_add(us);
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }
}

/// Warm-vs-cold latency split, one [`LatencyStat`] per wire-reported
/// [`ServedFrom`] provenance class.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServedBreakdown {
    /// Served straight from the in-memory result cache.
    pub memory_hit: LatencyStat,
    /// Coalesced onto another request's in-flight simulation.
    pub coalesced: LatencyStat,
    /// Warmed from the crash-safe disk tier.
    pub disk_hit: LatencyStat,
    /// Resumed from a persisted prefix checkpoint.
    pub prefix_resume: LatencyStat,
    /// Simulated from cycle 0.
    pub full_sim: LatencyStat,
}

impl ServedBreakdown {
    fn record(&mut self, served: ServedFrom, us: u64) {
        match served {
            ServedFrom::Memory => self.memory_hit.record(us),
            ServedFrom::Coalesced => self.coalesced.record(us),
            ServedFrom::Disk => self.disk_hit.record(us),
            ServedFrom::Resumed => self.prefix_resume.record(us),
            ServedFrom::Fresh => self.full_sim.record(us),
        }
    }

    fn merge(&mut self, other: &ServedBreakdown) {
        for (mine, theirs) in self.classes_mut().into_iter().zip(other.classes()) {
            if theirs.count == 0 {
                continue;
            }
            if mine.count == 0 || theirs.min_us < mine.min_us {
                mine.min_us = theirs.min_us;
            }
            if theirs.max_us > mine.max_us {
                mine.max_us = theirs.max_us;
            }
            mine.count += theirs.count;
            mine.total_us = mine.total_us.saturating_add(theirs.total_us);
        }
    }

    fn classes(&self) -> [LatencyStat; 5] {
        [
            self.memory_hit,
            self.coalesced,
            self.disk_hit,
            self.prefix_resume,
            self.full_sim,
        ]
    }

    fn classes_mut(&mut self) -> [&mut LatencyStat; 5] {
        [
            &mut self.memory_hit,
            &mut self.coalesced,
            &mut self.disk_hit,
            &mut self.prefix_resume,
            &mut self.full_sim,
        ]
    }

    /// Total responses across every class.
    pub fn total(&self) -> u64 {
        self.classes().iter().map(|s| s.count).sum()
    }

    /// Fraction of responses served without a from-scratch simulation
    /// (memory, coalesced or disk); `None` when no responses were seen.
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let hits = self.memory_hit.count + self.coalesced.count + self.disk_hit.count;
        Some(hits as f64 / total as f64)
    }
}

/// What one load-generation run measured.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// `Outcome` responses received (across all clients and retries).
    pub responses: u64,
    /// Responses the server marked as cache-served (memory, coalesced or
    /// disk — see [`ServedFrom::cache_hit`]).
    pub cache_hits: u64,
    /// `Busy` rejections absorbed by retrying.
    pub busy_retries: u64,
    /// Responses whose digest disagreed with the oracle (must be 0).
    pub mismatches: u64,
    /// Transport-level retries the resilient clients performed
    /// (always 0 under [`drive`], which fails fast on transport errors).
    pub retries: u64,
    /// Reconnects the resilient clients performed.
    pub reconnects: u64,
    /// Client-observed latency split by served-from provenance. Under
    /// [`drive_resilient`] each sample times the whole resilient call,
    /// retries and reconnects included — that is the latency a caller
    /// actually experiences.
    pub served: ServedBreakdown,
}

/// Compute the oracle digest for every request through the campaign
/// runner. Requests are deduplicated by equality first, so the ground
/// truth costs one simulation per unique request.
pub fn oracle(
    requests: &[SimRequest],
    cfg: &CampaignConfig,
) -> Result<Vec<Expectation>, HarnessError> {
    let mut unique: Vec<SimRequest> = Vec::new();
    for r in requests {
        if !unique.contains(r) {
            unique.push(*r);
        }
    }
    let mut specs = Vec::with_capacity(unique.len());
    for req in &unique {
        let machine = req
            .machine
            .to_machine()
            .map_err(|e| HarnessError::Failed(format!("unusable machine in plan: {e}")))?;
        let opts = warden_sim::SimOptions {
            check: req.check,
            ..warden_sim::SimOptions::default()
        };
        specs.push(RunSpec {
            id: format!(
                "loadgen-{}-{:?}-{:#x}-{:?}{}",
                req.bench.name(),
                req.scale,
                machine.fingerprint(),
                req.protocol,
                if req.check { "-check" } else { "" }
            ),
            workload: Workload::bench(req.bench, req.scale),
            machine,
            protocol: req.protocol,
            opts,
        });
    }
    let results = run_campaign(&specs, cfg)?;
    Ok(unique
        .into_iter()
        .zip(results)
        .map(|(req, res)| Expectation {
            req,
            digest: outcome_digest(&res.outcome),
        })
        .collect())
}

fn connect(target: &Target) -> Result<Box<dyn ClientCall>, HarnessError> {
    match target {
        Target::Tcp(addr) => Client::connect(addr)
            .map(|c| Box::new(c) as Box<dyn ClientCall>)
            .map_err(|e| HarnessError::Failed(format!("cannot connect to {addr}: {e}"))),
        #[cfg(unix)]
        Target::Uds(path) => Client::connect_uds(path)
            .map(|c| Box::new(c) as Box<dyn ClientCall>)
            .map_err(|e| {
                HarnessError::Failed(format!("cannot connect to {}: {e}", path.display()))
            }),
        #[cfg(not(unix))]
        Target::Uds(path) => Err(HarnessError::Failed(format!(
            "Unix sockets are unavailable on this platform ({})",
            path.display()
        ))),
    }
}

/// The one client operation the load generator needs, object-safe so TCP
/// and Unix-socket clients share the driving loop.
trait ClientCall: Send {
    fn call(&mut self, req: &Request) -> Result<Response, warden_serve::ServeError>;
}

impl<S: std::io::Read + std::io::Write + Send> ClientCall for Client<S> {
    fn call(&mut self, req: &Request) -> Result<Response, warden_serve::ServeError> {
        Client::call(self, req)
    }
}

/// Maximum `Busy` retries per request before the run is declared stuck.
const BUSY_RETRY_LIMIT: u64 = 10_000;

/// Drive the server at `target` with `clients` concurrent connections,
/// each sending `iters` requests drawn round-robin from `plan` (offset by
/// client id, so the mix interleaves hot and cold keys). Every `Outcome`
/// is checked against its oracle digest; any mismatch, transport error or
/// non-`Busy` rejection fails the run.
pub fn drive(
    target: &Target,
    plan: &[Expectation],
    clients: usize,
    iters: usize,
) -> Result<LoadReport, HarnessError> {
    if plan.is_empty() {
        return Err(HarnessError::Failed("empty load plan".into()));
    }
    let plan: Arc<[Expectation]> = plan.to_vec().into();
    let responses = AtomicU64::new(0);
    let cache_hits = AtomicU64::new(0);
    let busy_retries = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let served_split: Mutex<ServedBreakdown> = Mutex::new(ServedBreakdown::default());
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients.max(1));
        for client_id in 0..clients.max(1) {
            let plan = Arc::clone(&plan);
            let (responses, cache_hits, busy_retries, mismatches, served_split, failures) = (
                &responses,
                &cache_hits,
                &busy_retries,
                &mismatches,
                &served_split,
                &failures,
            );
            handles.push(scope.spawn(move || {
                let mut client = match connect(target) {
                    Ok(c) => c,
                    Err(e) => {
                        failures
                            .lock()
                            .expect("failures lock")
                            .push(format!("client {client_id}: {e}"));
                        return;
                    }
                };
                let mut local_split = ServedBreakdown::default();
                for i in 0..iters {
                    let exp = &plan[(client_id + i) % plan.len()];
                    let mut busy = 0u64;
                    loop {
                        let began = Instant::now();
                        match client.call(&Request::Simulate(exp.req)) {
                            Ok(Response::Outcome { summary, served }) => {
                                let us = began.elapsed().as_micros() as u64;
                                responses.fetch_add(1, Ordering::Relaxed);
                                if served.cache_hit() {
                                    cache_hits.fetch_add(1, Ordering::Relaxed);
                                }
                                local_split.record(served, us);
                                if summary.outcome_digest != exp.digest {
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                    failures.lock().expect("failures lock").push(format!(
                                        "client {client_id}: digest mismatch for {}/{:?}: \
                                         served {:#018x}, oracle {:#018x}",
                                        exp.req.bench.name(),
                                        exp.req.protocol,
                                        summary.outcome_digest,
                                        exp.digest
                                    ));
                                }
                                break;
                            }
                            Ok(Response::Busy { .. }) => {
                                busy += 1;
                                busy_retries.fetch_add(1, Ordering::Relaxed);
                                if busy > BUSY_RETRY_LIMIT {
                                    failures.lock().expect("failures lock").push(format!(
                                        "client {client_id}: still Busy after {busy} retries"
                                    ));
                                    return;
                                }
                                std::thread::sleep(Duration::from_millis(1 + busy.min(20)));
                            }
                            Ok(other) => {
                                failures.lock().expect("failures lock").push(format!(
                                    "client {client_id}: unexpected response {other:?}"
                                ));
                                return;
                            }
                            Err(e) => {
                                failures
                                    .lock()
                                    .expect("failures lock")
                                    .push(format!("client {client_id}: transport error: {e}"));
                                return;
                            }
                        }
                    }
                }
                served_split
                    .lock()
                    .expect("served lock")
                    .merge(&local_split);
            }));
        }
        for h in handles {
            if h.join().is_err() {
                failures
                    .lock()
                    .expect("failures lock")
                    .push("a load-generator thread panicked".to_string());
            }
        }
    });

    let failures = failures.into_inner().expect("failures lock");
    if !failures.is_empty() {
        return Err(HarnessError::Failed(format!(
            "{} load-generation failure(s):\n  {}",
            failures.len(),
            failures.join("\n  ")
        )));
    }
    Ok(LoadReport {
        responses: responses.into_inner(),
        cache_hits: cache_hits.into_inner(),
        busy_retries: busy_retries.into_inner(),
        mismatches: mismatches.into_inner(),
        retries: 0,
        reconnects: 0,
        served: served_split.into_inner().expect("served lock"),
    })
}

/// Like [`drive`], but through [`ResilientClient`]s: transport errors,
/// torn frames and stalls are absorbed by reconnect-and-retry instead of
/// failing the run, which is what makes this the driver for chaos runs —
/// the conformance bar stays identical (every `Outcome` must match its
/// oracle digest bit for bit; anything the retry budget cannot absorb is
/// a failure), only the tolerance for a hostile wire changes. Each client
/// gets its own deterministic jitter stream derived from `policy.seed`
/// and its client id.
pub fn drive_resilient(
    target: &Target,
    plan: &[Expectation],
    clients: usize,
    iters: usize,
    policy: &RetryPolicy,
) -> Result<LoadReport, HarnessError> {
    if plan.is_empty() {
        return Err(HarnessError::Failed("empty load plan".into()));
    }
    let plan: Arc<[Expectation]> = plan.to_vec().into();
    let responses = AtomicU64::new(0);
    let cache_hits = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let reconnects = AtomicU64::new(0);
    let served_split: Mutex<ServedBreakdown> = Mutex::new(ServedBreakdown::default());
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients.max(1));
        for client_id in 0..clients.max(1) {
            let plan = Arc::clone(&plan);
            let (responses, cache_hits, mismatches, retries, reconnects, served_split, failures) = (
                &responses,
                &cache_hits,
                &mismatches,
                &retries,
                &reconnects,
                &served_split,
                &failures,
            );
            let policy = RetryPolicy {
                seed: policy.seed ^ (client_id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                ..policy.clone()
            };
            handles.push(scope.spawn(move || {
                let built = match target {
                    Target::Tcp(addr) => ResilientClient::tcp(addr.clone(), policy),
                    #[cfg(unix)]
                    Target::Uds(path) => ResilientClient::uds(path.clone(), policy),
                    #[cfg(not(unix))]
                    Target::Uds(path) => {
                        failures.lock().expect("failures lock").push(format!(
                            "client {client_id}: Unix sockets unavailable ({})",
                            path.display()
                        ));
                        return;
                    }
                };
                let mut client = match built {
                    Ok(client) => client,
                    Err(e) => {
                        failures
                            .lock()
                            .expect("failures lock")
                            .push(format!("client {client_id}: invalid retry policy: {e}"));
                        return;
                    }
                };
                let mut local_split = ServedBreakdown::default();
                for i in 0..iters {
                    let exp = &plan[(client_id + i) % plan.len()];
                    let began = Instant::now();
                    match client.simulate(exp.req) {
                        Ok((summary, served)) => {
                            let us = began.elapsed().as_micros() as u64;
                            responses.fetch_add(1, Ordering::Relaxed);
                            if served.cache_hit() {
                                cache_hits.fetch_add(1, Ordering::Relaxed);
                            }
                            local_split.record(served, us);
                            if summary.outcome_digest != exp.digest {
                                mismatches.fetch_add(1, Ordering::Relaxed);
                                failures.lock().expect("failures lock").push(format!(
                                    "client {client_id}: digest mismatch for {}/{:?}: \
                                     served {:#018x}, oracle {:#018x}",
                                    exp.req.bench.name(),
                                    exp.req.protocol,
                                    summary.outcome_digest,
                                    exp.digest
                                ));
                            }
                        }
                        Err(e) => {
                            failures
                                .lock()
                                .expect("failures lock")
                                .push(format!("client {client_id}: request {i} not absorbed: {e}"));
                            break;
                        }
                    }
                }
                served_split
                    .lock()
                    .expect("served lock")
                    .merge(&local_split);
                retries.fetch_add(client.retries(), Ordering::Relaxed);
                reconnects.fetch_add(client.reconnects(), Ordering::Relaxed);
            }));
        }
        for h in handles {
            if h.join().is_err() {
                failures
                    .lock()
                    .expect("failures lock")
                    .push("a load-generator thread panicked".to_string());
            }
        }
    });

    let failures = failures.into_inner().expect("failures lock");
    if !failures.is_empty() {
        return Err(HarnessError::Failed(format!(
            "{} load-generation failure(s):\n  {}",
            failures.len(),
            failures.join("\n  ")
        )));
    }
    Ok(LoadReport {
        responses: responses.into_inner(),
        cache_hits: cache_hits.into_inner(),
        busy_retries: 0, // Busy absorption happens inside ResilientClient
        mismatches: mismatches.into_inner(),
        retries: retries.into_inner(),
        reconnects: reconnects.into_inner(),
        served: served_split.into_inner().expect("served lock"),
    })
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a metrics snapshot as a stable JSON document (counters sorted as
/// stored, histograms reduced to count/sum/min/max) — the artifact the CI
/// `serve` stage uploads.
pub fn metrics_json(reg: &MetricsRegistry, report: &LoadReport) -> String {
    let mut out = String::from("{\n  \"loadgen\": {\n");
    out.push_str(&format!(
        "    \"responses\": {},\n    \"cache_hits\": {},\n    \
         \"busy_retries\": {},\n    \"mismatches\": {},\n    \
         \"retries\": {},\n    \"reconnects\": {},\n",
        report.responses,
        report.cache_hits,
        report.busy_retries,
        report.mismatches,
        report.retries,
        report.reconnects
    ));
    out.push_str(&format!(
        "    \"hit_ratio\": {:.4}\n  }},\n",
        report.served.hit_ratio().unwrap_or(0.0)
    ));
    out.push_str("  \"served\": {\n");
    let classes: [(&str, &LatencyStat); 5] = [
        ("memory_hit", &report.served.memory_hit),
        ("coalesced", &report.served.coalesced),
        ("disk_hit", &report.served.disk_hit),
        ("prefix_resume", &report.served.prefix_resume),
        ("full_sim", &report.served.full_sim),
    ];
    for (i, (name, s)) in classes.iter().enumerate() {
        let comma = if i + 1 < classes.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{name}\": {{\"count\": {}, \"mean_us\": {}, \
             \"min_us\": {}, \"max_us\": {}}}{comma}\n",
            s.count,
            s.mean_us(),
            s.min_us,
            s.max_us
        ));
    }
    out.push_str("  },\n  \"counters\": {\n");
    let counters = reg.counters();
    for (i, (name, v)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        out.push_str(&format!("    \"{}\": {v}{comma}\n", json_escape(name)));
    }
    out.push_str("  },\n  \"hists\": {\n");
    let hists = reg.hists();
    for (i, (name, h)) in hists.iter().enumerate() {
        let comma = if i + 1 < hists.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}{comma}\n",
            json_escape(name),
            h.count(),
            h.sum(),
            h.min().unwrap_or(0),
            h.max().unwrap_or(0)
        ));
    }
    out.push_str("  }\n}\n");
    out
}
