//! The N-way differential coherence fuzz gate.
//!
//! Generated [`WorkloadSpec`]s (see `warden_rt::workload`) run under every
//! registered protocol with the invariant checker armed; the gate then
//! asserts the protocols are *semantically interchangeable* on each
//! workload:
//!
//! 1. every final memory image matches the logical (phase-1) execution —
//!    and therefore every other protocol's image,
//! 2. image digests agree with the reference protocol,
//! 3. no protocol reports an invariant violation,
//! 4. each protocol's cache levels exactly partition its accesses,
//! 5. a serial DRF replay of the trace through the raw coherence engine
//!    observes identical per-load value sequences under every protocol.
//!
//! A disagreement is **shrunk** — knobs greedily halved while the failure
//! reproduces — and archived as a replayable `.seed` file whose token
//! feeds straight back into `fuzzgen --replay`. Injecting a seeded
//! [`ProtocolMutation`] through the same gate (`--mutate`) proves the gate
//! is alive: a deliberately broken protocol must be caught.

use crate::campaign::{run_campaign, CampaignConfig, RunSpec, Workload};
use crate::error::HarnessError;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use warden_coherence::{CoherenceSystem, ProtocolId, ProtocolMutation, RegionId};
use warden_rt::workload::{SharingPattern, WorkloadGen, WorkloadSpec};
use warden_rt::{Event, RegionToken, RmwOp, TaskId, TraceProgram};
use warden_sim::{simulate_with_options, FaultPlan, MachineConfig, SimOptions, SimOutcome};

/// Every injectable protocol defect, by stable kebab-case name (the
/// `--mutate` vocabulary).
pub const MUTATIONS: [(&str, ProtocolMutation); 9] = [
    ("skip-ward-entry-sync", ProtocolMutation::SkipWardEntrySync),
    (
        "skip-reconciliation-writeback",
        ProtocolMutation::SkipReconciliationWriteback,
    ),
    (
        "coarse-sector-merge",
        ProtocolMutation::CoarseSectorMerge { sector_bytes: 16 },
    ),
    ("skip-self-invalidate", ProtocolMutation::SkipSelfInvalidate),
    ("skip-self-downgrade", ProtocolMutation::SkipSelfDowngrade),
    (
        "skip-ward-registration",
        ProtocolMutation::SkipWardRegistration,
    ),
    ("dls-cache-private", ProtocolMutation::DlsCachePrivate),
    ("dls-dirty-private", ProtocolMutation::DlsDirtyPrivate),
    ("dls-skip-llc-dirty", ProtocolMutation::DlsSkipLlcDirty),
];

/// Parse a `--mutate` argument of the form `<protocol>:<mutation>`, e.g.
/// `si:skip-self-invalidate`.
pub fn parse_mutation_spec(s: &str) -> Result<(ProtocolId, ProtocolMutation), HarnessError> {
    let usage = || {
        let names: Vec<&str> = MUTATIONS.iter().map(|(n, _)| *n).collect();
        HarnessError::Args(format!(
            "--mutate wants <protocol>:<mutation>, got {s:?}; mutations: {}",
            names.join(", ")
        ))
    };
    let (proto, mutation) = s.split_once(':').ok_or_else(usage)?;
    let proto =
        ProtocolId::from_name(proto).map_err(|e| HarnessError::Args(format!("--mutate: {e}")))?;
    let m = MUTATIONS
        .iter()
        .find(|(n, _)| *n == mutation)
        .map(|(_, m)| *m)
        .ok_or_else(usage)?;
    Ok((proto, m))
}

/// What one fuzz-gate invocation runs.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Generated workloads to run.
    pub workloads: usize,
    /// Generator stream seed.
    pub seed: u64,
    /// Sharing patterns the stream cycles through.
    pub patterns: Vec<SharingPattern>,
    /// Protocols under test; the first is the reference.
    pub protocols: Vec<ProtocolId>,
    /// The machine every workload replays on.
    pub machine: MachineConfig,
    /// A deliberate defect injected into one protocol's runs — the gate
    /// must then *catch* it (disagreement expected, not forbidden).
    pub mutate: Option<(ProtocolId, ProtocolMutation)>,
    /// Where shrunk failing seeds are archived (`<token>.seed` files).
    pub artifacts: Option<PathBuf>,
}

impl FuzzOptions {
    /// A small default gate: every pattern, all protocols, the zoo's
    /// dual-socket 6-core machine.
    pub fn new(workloads: usize, seed: u64) -> FuzzOptions {
        FuzzOptions {
            workloads,
            seed,
            patterns: SharingPattern::ALL.to_vec(),
            protocols: ProtocolId::ALL.to_vec(),
            machine: MachineConfig::dual_socket().with_cores(3),
            mutate: None,
            artifacts: None,
        }
    }
}

/// One confirmed protocol disagreement, shrunk and (optionally) archived.
#[derive(Clone, Debug)]
pub struct Disagreement {
    /// Token of the *minimal* still-failing spec.
    pub token: String,
    /// Token of the originally generated spec.
    pub original_token: String,
    /// The diverging protocol.
    pub protocol: String,
    /// What diverged.
    pub detail: String,
    /// The archived `.seed` file, when an artifact dir was given.
    pub archived: Option<PathBuf>,
}

/// The gate's summary.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Workloads generated and checked.
    pub workloads: usize,
    /// Simulations executed (workloads × protocols).
    pub runs: usize,
    /// Confirmed disagreements, shrunk to minimal reproducers.
    pub disagreements: Vec<Disagreement>,
}

/// Run the differential gate: generate `opts.workloads` specs, run each
/// under every protocol through the supervised campaign, check the five
/// agreement obligations, and shrink + archive any failure.
///
/// # Errors
///
/// Campaign-level failures (I/O, runs exhausting retries) are
/// [`HarnessError`]s. Protocol *disagreements* are not errors — they come
/// back in the report so a mutation gate can assert they happened.
pub fn run_fuzz_gate(opts: &FuzzOptions, cfg: &CampaignConfig) -> Result<FuzzReport, HarnessError> {
    assert!(
        !opts.protocols.is_empty(),
        "protocol list must be non-empty"
    );
    let gen = WorkloadGen::with_patterns(opts.seed, &opts.patterns)
        .map_err(|e| HarnessError::Args(e.to_string()))?;
    let specs: Vec<WorkloadSpec> = gen.take(opts.workloads).collect();

    let mut runs = Vec::with_capacity(specs.len() * opts.protocols.len());
    for spec in &specs {
        for &proto in &opts.protocols {
            let s = *spec;
            runs.push(RunSpec {
                id: format!("fuzz/{}/{}", spec.token(), proto.name()),
                workload: Workload::custom(spec.token(), move || s.build()),
                machine: opts.machine.clone(),
                protocol: proto,
                opts: sim_opts(proto, opts.mutate),
            });
        }
    }
    let results = run_campaign(&runs, cfg)?;

    let mut report = FuzzReport {
        workloads: specs.len(),
        runs: runs.len(),
        disagreements: Vec::new(),
    };
    for (w, spec) in specs.iter().enumerate() {
        let outcomes: Vec<&SimOutcome> = results
            [w * opts.protocols.len()..(w + 1) * opts.protocols.len()]
            .iter()
            .map(|r| &r.outcome)
            .collect();
        let program = spec.build();
        if let Some((protocol, detail)) = differential_verdict(
            &program,
            &opts.machine,
            &opts.protocols,
            &outcomes,
            opts.mutate,
        ) {
            let minimal = shrink(*spec, &opts.machine, &opts.protocols, opts.mutate);
            let archived = opts
                .artifacts
                .as_deref()
                .map(|dir| archive_seed(dir, &minimal, spec, &protocol, &detail, opts.mutate))
                .transpose()?;
            report.disagreements.push(Disagreement {
                token: minimal.token(),
                original_token: spec.token(),
                protocol,
                detail,
                archived,
            });
        }
    }
    Ok(report)
}

/// Check one spec directly (no campaign): build, simulate under every
/// protocol, and return the first disagreement — `None` means the
/// protocols agree. This is the replay path for archived seeds.
pub fn check_spec(
    spec: &WorkloadSpec,
    machine: &MachineConfig,
    protocols: &[ProtocolId],
    mutate: Option<(ProtocolId, ProtocolMutation)>,
) -> Option<(String, String)> {
    let program = spec.build();
    let outcomes: Vec<SimOutcome> = protocols
        .iter()
        .map(|&p| simulate_with_options(&program, machine, p, &sim_opts(p, mutate)))
        .collect();
    let refs: Vec<&SimOutcome> = outcomes.iter().collect();
    differential_verdict(&program, machine, protocols, &refs, mutate)
}

fn sim_opts(proto: ProtocolId, mutate: Option<(ProtocolId, ProtocolMutation)>) -> SimOptions {
    let faults = match mutate {
        Some((p, m)) if p == proto => Some(FaultPlan::mutation_only(1, m)),
        _ => None,
    };
    SimOptions {
        check: true,
        faults,
        ..SimOptions::default()
    }
}

/// The five agreement obligations over one workload's outcomes. Returns
/// the first failure as `(protocol, detail)`.
fn differential_verdict(
    program: &TraceProgram,
    machine: &MachineConfig,
    protocols: &[ProtocolId],
    outcomes: &[&SimOutcome],
    mutate: Option<(ProtocolId, ProtocolMutation)>,
) -> Option<(String, String)> {
    let (lo, hi) = program.address_range;
    for (&proto, out) in protocols.iter().zip(outcomes) {
        if let Some(v) = out.violations.first() {
            return Some((
                proto.name().into(),
                format!(
                    "invariant violation ({} total); first: {v}",
                    out.violations.len()
                ),
            ));
        }
        if let Some(addr) = out
            .final_memory
            .first_difference(&program.memory, lo, hi - lo)
        {
            return Some((
                proto.name().into(),
                format!("final image differs from the logical execution at {addr}"),
            ));
        }
        if out.memory_image_digest != outcomes[0].memory_image_digest {
            return Some((
                proto.name().into(),
                format!(
                    "image digest {:#018x} diverged from {}'s {:#018x}",
                    out.memory_image_digest,
                    protocols[0].name(),
                    outcomes[0].memory_image_digest
                ),
            ));
        }
        let c = &out.stats.coherence;
        let served = c.l1_hits + c.l2_hits + c.llc_hits + c.llc_misses;
        if served != c.accesses() + c.ward_stale_retries {
            return Some((
                proto.name().into(),
                format!(
                    "cache levels do not partition the accesses: {served} served vs {} issued",
                    c.accesses() + c.ward_stale_retries
                ),
            ));
        }
    }
    // Serial DRF replay: per-load observed values must agree pairwise.
    let reference = observed_sequence(program, machine, protocols[0], mutate);
    for &proto in &protocols[1..] {
        let got = observed_sequence(program, machine, proto, mutate);
        if got != reference {
            return Some((
                proto.name().into(),
                format!(
                    "observed-value sequence diverged from {} (first difference at load #{})",
                    protocols[0].name(),
                    reference
                        .iter()
                        .zip(&got)
                        .position(|(a, b)| a != b)
                        .unwrap_or(reference.len().min(got.len()))
                ),
            ));
        }
    }
    None
}

/// Replay the trace serially (depth-first over the fork tree, one
/// `task_sync` fence at every task boundary — the discipline a DRF
/// fork-join program gives the hardware) through the raw coherence engine,
/// recording the value every load observes. Ends with the final image
/// digest as one last pseudo-observation.
fn observed_sequence(
    program: &TraceProgram,
    machine: &MachineConfig,
    proto: ProtocolId,
    mutate: Option<(ProtocolId, ProtocolMutation)>,
) -> Vec<u64> {
    let mut sys = CoherenceSystem::new(machine.topo, machine.lat, machine.cache, proto);
    if let Some((p, m)) = mutate {
        if p == proto {
            sys.inject_mutation(m);
        }
    }
    if sys.try_set_memory(program.initial_memory.clone()).is_err() {
        unreachable!("caches are cold before the first access");
    }
    let ncores = machine.num_cores();
    let mut seen = Vec::new();
    let mut regions: HashMap<RegionToken, Option<RegionId>> = HashMap::new();
    replay_task(&mut sys, program, 0, ncores, &mut seen, &mut regions);
    seen.push(sys.final_memory_image().digest());
    seen
}

fn replay_task(
    sys: &mut CoherenceSystem,
    program: &TraceProgram,
    task: TaskId,
    ncores: usize,
    seen: &mut Vec<u64>,
    regions: &mut HashMap<RegionToken, Option<RegionId>>,
) {
    let core = task % ncores;
    sys.task_sync(core);
    for ev in &program.tasks[task].events {
        match ev {
            Event::Load { addr, size } => {
                sys.load(core, *addr, u64::from(*size));
                seen.push(sys.observe(core, *addr, u64::from(*size)));
            }
            Event::Store { addr, size, val } => {
                sys.store(core, *addr, &val.to_le_bytes()[..usize::from(*size)]);
            }
            Event::Rmw {
                addr,
                size,
                val,
                op,
            } => {
                match op {
                    RmwOp::Swap => {
                        sys.rmw(core, *addr, &val.to_le_bytes()[..usize::from(*size)]);
                    }
                    RmwOp::Add => {
                        sys.rmw_add(core, *addr, u64::from(*size), *val);
                    }
                }
                seen.push(sys.observe(core, *addr, u64::from(*size)));
            }
            Event::Compute { .. } => {}
            Event::Fork { children } => {
                sys.task_sync(core); // release before the children start
                for &child in children {
                    replay_task(sys, program, child, ncores, seen, regions);
                }
                sys.task_sync(core); // acquire the children's results
            }
            Event::RegionAdd { start, end, token } => {
                regions.insert(*token, sys.add_region(*start, *end));
            }
            Event::RegionRemove { token } => {
                if let Some(Some(id)) = regions.remove(token) {
                    sys.remove_region(id);
                }
            }
        }
    }
    sys.task_sync(core); // release this task's writes to the joiner
}

/// Greedily halve each knob while the disagreement still reproduces,
/// yielding a (locally) minimal failing spec. Bounded: each pass shrinks
/// at least one knob or stops, and knobs only ever decrease.
fn shrink(
    spec: WorkloadSpec,
    machine: &MachineConfig,
    protocols: &[ProtocolId],
    mutate: Option<(ProtocolId, ProtocolMutation)>,
) -> WorkloadSpec {
    let candidates = |s: WorkloadSpec| {
        [
            WorkloadSpec {
                rounds: (s.rounds / 2).max(1),
                ..s
            },
            WorkloadSpec {
                tasks: (s.tasks / 2).max(2),
                ..s
            },
            WorkloadSpec {
                ops: (s.ops / 2).max(1),
                ..s
            },
            WorkloadSpec {
                footprint: (s.footprint / 2).max(512),
                ..s
            },
        ]
    };
    let mut best = spec;
    for _ in 0..64 {
        let step = candidates(best).into_iter().find(|c| {
            *c != best
                && c.validate().is_ok()
                && check_spec(c, machine, protocols, mutate).is_some()
        });
        match step {
            Some(smaller) => best = smaller,
            None => break,
        }
    }
    best
}

fn archive_seed(
    dir: &Path,
    minimal: &WorkloadSpec,
    original: &WorkloadSpec,
    protocol: &str,
    detail: &str,
    mutate: Option<(ProtocolId, ProtocolMutation)>,
) -> Result<PathBuf, HarnessError> {
    std::fs::create_dir_all(dir).map_err(|e| HarnessError::Io {
        path: dir.to_path_buf(),
        source: e,
    })?;
    let mutate_flag = mutate
        .and_then(|(p, m)| {
            MUTATIONS
                .iter()
                .find(|(_, cand)| format!("{cand:?}") == format!("{m:?}"))
                .map(|(name, _)| format!(" --mutate {}:{name}", p.name()))
        })
        .unwrap_or_default();
    let body = format!(
        "token: {}\noriginal: {}\nprotocol: {}\ndetail: {}\nreplay: cargo run -p warden-bench \
         --release --bin fuzzgen -- --replay {}{}\n",
        minimal.token(),
        original.token(),
        protocol,
        detail,
        minimal.token(),
        mutate_flag,
    );
    let path = dir.join(format!("{}.seed", minimal.token()));
    std::fs::write(&path, body).map_err(|e| HarnessError::Io {
        path: path.clone(),
        source: e,
    })?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_machine() -> MachineConfig {
        MachineConfig::dual_socket().with_cores(2)
    }

    #[test]
    fn mutation_specs_parse_and_reject() {
        let (p, m) = parse_mutation_spec("si:skip-self-invalidate").unwrap();
        assert_eq!(p, ProtocolId::SelfInv);
        assert!(matches!(m, ProtocolMutation::SkipSelfInvalidate));
        let (p, m) = parse_mutation_spec("warden:coarse-sector-merge").unwrap();
        assert_eq!(p, ProtocolId::Warden);
        assert!(matches!(
            m,
            ProtocolMutation::CoarseSectorMerge { sector_bytes: 16 }
        ));
        for bad in [
            "",
            "si",
            "si:",
            ":skip-self-invalidate",
            "zz:skip-self-invalidate",
            "si:nope",
        ] {
            assert!(
                matches!(parse_mutation_spec(bad), Err(HarnessError::Args(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn clean_specs_pass_the_direct_check() {
        let m = small_machine();
        for pattern in SharingPattern::ALL {
            let spec = WorkloadSpec::new(pattern, 99);
            assert_eq!(
                check_spec(&spec, &m, &ProtocolId::ALL, None),
                None,
                "{pattern} disagreed without a mutation"
            );
        }
    }

    #[test]
    fn observed_sequences_are_deterministic_per_protocol() {
        let m = small_machine();
        let program = WorkloadSpec::new(SharingPattern::Migratory, 4).build();
        for proto in ProtocolId::ALL {
            let a = observed_sequence(&program, &m, proto, None);
            let b = observed_sequence(&program, &m, proto, None);
            assert_eq!(a, b, "{proto}");
            assert!(!a.is_empty());
        }
    }
}
