//! The §7.3 "many sockets" projection: WARDen's advantage as the machine
//! grows — 1, 2 and 4 sockets, then the disaggregated two-node system.
//! (The paper argues, without a figure, that rising interconnect latencies
//! make WARDen increasingly valuable; this binary puts numbers on it.)

use warden_bench::fmt::{f2, table};
use warden_bench::{run_bench, SuiteScale};
use warden_pbbs::Bench;
use warden_sim::MachineConfig;

fn main() {
    let scale = SuiteScale::from_args();
    let machines = [
        MachineConfig::single_socket(),
        MachineConfig::dual_socket(),
        MachineConfig::many_socket(4),
        MachineConfig::disaggregated(),
    ];
    let benches = [
        Bench::MakeArray,
        Bench::Msort,
        Bench::Primes,
        Bench::SuffixArray,
        Bench::Tokens,
    ];
    let mut rows = Vec::new();
    for bench in benches {
        let mut row = vec![bench.name().to_string()];
        for machine in &machines {
            eprint!("  {} on {:<14}\r", bench.name(), machine.name);
            let r = run_bench(bench, scale.pbbs(), machine);
            row.push(format!("{}x", f2(r.cmp.speedup)));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("benchmark")
        .chain(machines.iter().map(|m| m.name.as_str()))
        .collect();
    println!(
        "WARDen speedup over MESI as the machine scales (paper §7.3 / Figure 1)\n\n{}",
        table(&headers, &rows)
    );
}
