//! The §7.3 "many sockets" projection: WARDen's advantage as the machine
//! grows — 1, 2 and 4 sockets, then the disaggregated two-node system.
//! (The paper argues, without a figure, that rising interconnect latencies
//! make WARDen increasingly valuable; this binary puts numbers on it.)

use warden_bench::fmt::{f2, table};
use warden_bench::{campaign_suite, harness_main, HarnessArgs, HarnessError};
use warden_pbbs::Bench;
use warden_sim::MachineConfig;

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    let cfg = args.campaign_config();
    let machines = [
        MachineConfig::single_socket(),
        MachineConfig::dual_socket(),
        MachineConfig::many_socket(4),
        MachineConfig::disaggregated(),
    ];
    let benches = [
        Bench::MakeArray,
        Bench::Msort,
        Bench::Primes,
        Bench::SuffixArray,
        Bench::Tokens,
    ];
    // One campaign per machine; run ids embed the machine name, so all four
    // share the campaign directory and a killed grid resumes where it died.
    let mut columns = Vec::new();
    for machine in &machines {
        columns.push(campaign_suite(
            &benches,
            args.scale.pbbs(),
            machine,
            &args.sim_options(),
            &cfg,
        )?);
    }
    let mut rows = Vec::new();
    for (i, bench) in benches.iter().enumerate() {
        let mut row = vec![bench.name().to_string()];
        for col in &columns {
            row.push(format!("{}x", f2(col[i].cmp.speedup)));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("benchmark")
        .chain(machines.iter().map(|m| m.name.as_str()))
        .collect();
    println!(
        "WARDen speedup over MESI as the machine scales (paper §7.3 / Figure 1)\n\n{}",
        table(&headers, &rows)
    );
    Ok(())
}
