//! Records the replay-throughput baseline (`BENCH_hotpath.json`).
//!
//! ```text
//! bench_baseline --scale tiny --runs 5 --out BENCH_hotpath.json
//! bench_baseline --scale tiny --baseline before.json --out BENCH_hotpath.json
//! ```
//!
//! Without `--baseline`, the report carries only this build's samples.
//! With `--baseline <path>` (a report produced by an earlier build), the
//! report also embeds that run as the `"baseline"` section and prints the
//! per-kernel speedup, giving every PR a before/after perf trajectory.
use std::path::PathBuf;
use warden_bench::hotpath;
use warden_bench::{harness_main, HarnessArgs, HarnessError};

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    let runs = args.runs.unwrap_or(5);
    if runs == 0 {
        return Err(HarnessError::Args("--runs must be at least 1".into()));
    }
    let baseline = match &args.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|source| HarnessError::Io {
                path: path.clone(),
                source,
            })?;
            Some(hotpath::parse_report(&text)?)
        }
        None => None,
    };
    let samples = hotpath::measure_suite(args.scale.pbbs(), runs);
    let laned = hotpath::measure_suite_laned(args.scale.pbbs(), runs, hotpath::LANED_LANES);

    println!(
        "{:<8} {:<7} {:>14} {:>16} {:>9} {:>12}",
        "kernel", "proto", "events/s", "sim cycles/s", "speedup", "laned ev/s"
    );
    for s in &samples {
        let speedup = baseline
            .as_deref()
            .and_then(|b| {
                hotpath::speedups(std::slice::from_ref(s), b)
                    .first()
                    .map(|(_, _, r)| format!("{r:.2}x"))
            })
            .unwrap_or_else(|| "-".into());
        let laned_eps = laned
            .iter()
            .find(|l| l.kernel == s.kernel && l.protocol == s.protocol)
            .map(|l| format!("{:.0}", l.events_per_sec))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<8} {:<7} {:>14.0} {:>16.0} {:>9} {:>12}",
            s.kernel, s.protocol, s.events_per_sec, s.cycles_per_sec, speedup, laned_eps
        );
    }

    let report = hotpath::render_report(
        &samples,
        Some(&laned),
        baseline.as_deref(),
        args.scale.pbbs(),
        runs,
    );
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_hotpath.json"));
    std::fs::write(&out, report).map_err(|source| HarnessError::Io {
        path: out.clone(),
        source,
    })?;
    eprintln!("wrote {}", out.display());
    Ok(())
}
