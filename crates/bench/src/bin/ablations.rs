//! Ablations of the design choices called out in DESIGN.md:
//!
//! 1. **Marking policy** — no marking (legacy path) vs. no-unmark-at-fork
//!    (drops the §5.3 flush) vs. the full policy.
//! 2. **Region-store capacity** — sweep the CAM size; overflowed regions
//!    fall back to MESI.
//! 3. **Sectoring granularity** — byte (paper) vs. word vs. block: coarse
//!    sectors corrupt reconciliation when different tasks write adjacent
//!    sub-sector bytes, which the memory-image comparison exposes.
//! 4. **Store MSHRs** — how much store-miss overlap hides invalidation
//!    latency (the Figure 10 loads-vs-stores argument).
//!
//! Every simulation routes through the campaign runner, so a killed sweep
//! resumes from its completed cells when `--campaign-dir` is given. The
//! sectoring ablation deliberately produces corrupted final memory at coarse
//! granularities, so it uses the raw campaign API (no digest enforcement)
//! and compares images itself.

use warden_bench::fmt::{f2, table};
use warden_bench::{
    harness_main, run_campaign, CampaignConfig, HarnessArgs, HarnessError, RunSpec, SuiteScale,
    Workload,
};
use warden_coherence::ProtocolId;
use warden_pbbs::primes;
use warden_rt::{trace_program, MarkPolicy, RtOptions};
use warden_sim::{Comparison, MachineConfig, SimOptions, SimOutcome};

fn scaled(scale: SuiteScale, tiny: u64, paper: u64) -> u64 {
    match scale {
        SuiteScale::Tiny => tiny,
        SuiteScale::Paper => paper,
    }
}

/// Mesi/Warden spec pair for one ablation cell.
fn pair(id: &str, workload: &Workload, machine: &MachineConfig, opts: &SimOptions) -> [RunSpec; 2] {
    [ProtocolId::Mesi, ProtocolId::Warden].map(|protocol| RunSpec {
        id: format!(
            "{id}/{}",
            if protocol == ProtocolId::Mesi {
                "mesi"
            } else {
                "warden"
            }
        ),
        workload: workload.clone(),
        machine: machine.clone(),
        protocol,
        opts: opts.clone(),
    })
}

fn speedup(name: &str, mesi: &SimOutcome, warden: &SimOutcome) -> f64 {
    Comparison::of(name, mesi, warden).speedup
}

struct Ctx<'a> {
    scale: SuiteScale,
    machine: &'a MachineConfig,
    opts: &'a SimOptions,
    cfg: &'a CampaignConfig,
}

fn marking_policy(ctx: &Ctx) -> Result<String, HarnessError> {
    let n = scaled(ctx.scale, 4096, 65_536);
    // One program traced under each policy: tabulate + reduce has both the
    // fork-path flow the §5.3 flush accelerates and ancestor-array traffic.
    let build = |mark: MarkPolicy| {
        move || {
            let opts = RtOptions {
                mark,
                ..RtOptions::default()
            };
            trace_program("tabreduce", opts, move |ctx| {
                let xs = ctx.tabulate::<u64>(n, 64, &|c, i| {
                    c.work(8);
                    i ^ 0x5a5a
                });
                let _ = ctx.reduce(
                    0,
                    n,
                    64,
                    &|c, i| c.read(&xs, i),
                    &|a, b| a.wrapping_add(b),
                    0,
                );
            })
        }
    };
    let variants = [
        (MarkPolicy::None, "none", "no marking (legacy app)"),
        (
            MarkPolicy::NoUnmarkAtFork,
            "no-fork-flush",
            "marking, no §5.3 fork flush",
        ),
        (MarkPolicy::LeafHeaps, "full", "full policy (paper §4.2)"),
    ];
    let mut specs = Vec::new();
    for (mark, token, _) in variants {
        let w = Workload::custom(format!("abl1/{token}"), build(mark));
        specs.extend(pair(&format!("abl1/{token}"), &w, ctx.machine, ctx.opts));
    }
    let results = run_campaign(&specs, ctx.cfg)?;
    let rows: Vec<Vec<String>> = variants
        .iter()
        .enumerate()
        .map(|(i, (_, _, label))| {
            vec![
                label.to_string(),
                f2(speedup(
                    "tabreduce",
                    &results[2 * i].outcome,
                    &results[2 * i + 1].outcome,
                )),
            ]
        })
        .collect();
    Ok(format!(
        "Ablation 1: WARD marking policy (WARDen speedup over MESI, tabulate+reduce)\n\n{}",
        table(&["Policy", "Speedup"], &rows)
    ))
}

fn region_capacity(ctx: &Ctx) -> Result<String, HarnessError> {
    let n = scaled(ctx.scale, 2000, 65_536);
    let w = Workload::custom("abl2/primes", move || primes(n, 2));
    let caps = [8usize, 32, 128, 1024];
    let mut specs = Vec::new();
    for cap in caps {
        let mut machine = ctx.machine.clone();
        machine.cache.region_capacity = cap;
        specs.extend(pair(&format!("abl2/cap{cap}"), &w, &machine, ctx.opts));
    }
    let results = run_campaign(&specs, ctx.cfg)?;
    let rows: Vec<Vec<String>> = caps
        .iter()
        .enumerate()
        .map(|(i, cap)| {
            let (mesi, warden) = (&results[2 * i].outcome, &results[2 * i + 1].outcome);
            vec![
                cap.to_string(),
                warden.stats.coherence.region_overflows.to_string(),
                warden.region_peak.to_string(),
                f2(speedup("primes", mesi, warden)),
            ]
        })
        .collect();
    Ok(format!(
        "Ablation 2: region-store capacity (primes; overflowed regions fall back to MESI)\n\n{}",
        table(&["Capacity", "Overflows", "Peak live", "Speedup"], &rows)
    ))
}

fn sectoring(ctx: &Ctx) -> Result<String, HarnessError> {
    // Concurrent tasks write *different* values at adjacent bytes of a
    // declared WARD region (sound: no cross-task reads inside the scope, as
    // the runtime checker verifies). Reconciliation merges the per-copy
    // write masks — only byte sectors can separate the neighbours.
    // An odd element count keeps the parallel-for split points unaligned to
    // cache blocks, so neighbouring tasks genuinely share boundary blocks.
    let n = scaled(ctx.scale, 16_383, 131_071);
    let w = Workload::custom("abl3/sector-demo", move || {
        trace_program("sector-demo", RtOptions::default(), move |ctx| {
            let xs = ctx.alloc::<u8>(n);
            ctx.ward_scope(&xs, |ctx| {
                ctx.parallel_for(0, n, 509, &|c, i| c.write(&xs, i, (i % 251) as u8));
            });
        })
    });
    let grains = [1u64, 8, 64];
    let mut specs = Vec::new();
    for g in grains {
        let mut machine = ctx.machine.clone();
        machine.cache.sector_bytes = g;
        specs.extend(pair(&format!("abl3/sector{g}"), &w, &machine, ctx.opts));
    }
    let results = run_campaign(&specs, ctx.cfg)?;
    let rows: Vec<Vec<String>> = grains
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let (mesi, warden) = (&results[2 * i].outcome, &results[2 * i + 1].outcome);
            let correct = mesi.memory_image_digest == warden.memory_image_digest;
            vec![
                format!("{g} B"),
                if correct {
                    "identical".into()
                } else {
                    "CORRUPTED".into()
                },
                f2(speedup("sector-demo", mesi, warden)),
            ]
        })
        .collect();
    Ok(format!(
        "Ablation 3: write-mask sector granularity (neighbouring tasks write adjacent\nbytes of a WARD region with different values)\n\n{}\n\
         Byte sectoring (the paper's choice, §6.1: \"to match the smallest granularity\n\
         in software\") is required for correctness: coarser masks turn adjacent\n\
         sub-sector writes into lossy true-sharing merges.\n",
        table(&["Sector", "Final memory vs MESI", "Speedup"], &rows)
    ))
}

fn store_mshrs(ctx: &Ctx) -> Result<String, HarnessError> {
    let n = scaled(ctx.scale, 2000, 65_536);
    let w = Workload::custom("abl4/primes", move || primes(n, 2));
    let mshrs = [1usize, 4, 10, 56];
    let mut specs = Vec::new();
    for m in mshrs {
        let mut machine = ctx.machine.clone();
        machine.store_mshrs = m;
        specs.extend(pair(&format!("abl4/mshr{m}"), &w, &machine, ctx.opts));
    }
    let results = run_campaign(&specs, ctx.cfg)?;
    let rows: Vec<Vec<String>> = mshrs
        .iter()
        .enumerate()
        .map(|(i, m)| {
            vec![
                m.to_string(),
                f2(speedup(
                    "primes",
                    &results[2 * i].outcome,
                    &results[2 * i + 1].outcome,
                )),
            ]
        })
        .collect();
    Ok(format!(
        "Ablation 4: outstanding store misses (primes — benign-WAW stores dominate;\nmore overlap hides the invalidation latency MESI pays)\n\n{}",
        table(&["Store MSHRs", "WARDen speedup"], &rows)
    ))
}

fn baselines(ctx: &Ctx) -> Result<String, HarnessError> {
    // What does the E state buy, and how much more does WARDen add? All
    // cycles normalized to the MSI baseline.
    let benches = [
        warden_pbbs::Bench::MakeArray,
        warden_pbbs::Bench::Msort,
        warden_pbbs::Bench::Tokens,
    ];
    let protocols = [ProtocolId::Msi, ProtocolId::Mesi, ProtocolId::Warden];
    let mut specs = Vec::new();
    for b in benches {
        let w = Workload::bench(b, ctx.scale.pbbs());
        for (p, tag) in protocols.iter().zip(["msi", "mesi", "warden"]) {
            specs.push(RunSpec {
                id: format!("abl5/{}/{tag}", b.name()),
                workload: w.clone(),
                machine: ctx.machine.clone(),
                protocol: *p,
                opts: ctx.opts.clone(),
            });
        }
    }
    let results = run_campaign(&specs, ctx.cfg)?;
    let rows: Vec<Vec<String>> = benches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let cycles = |j: usize| results[protocols.len() * i + j].outcome.stats.cycles as f64;
            let msi = cycles(0);
            vec![
                b.name().to_string(),
                "1.00".into(),
                f2(msi / cycles(1)),
                f2(msi / cycles(2)),
            ]
        })
        .collect();
    Ok(format!(
        "Ablation 5: protocol baselines (speedup over plain MSI)\n\n{}",
        table(&["Benchmark", "MSI", "MESI", "WARDen"], &rows)
    ))
}

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    let cfg = args.campaign_config();
    let machine = MachineConfig::dual_socket();
    let ctx = Ctx {
        scale: args.scale,
        machine: &machine,
        opts: &args.sim_options(),
        cfg: &cfg,
    };
    println!("{}\n", marking_policy(&ctx)?);
    println!("{}\n", region_capacity(&ctx)?);
    println!("{}\n", sectoring(&ctx)?);
    println!("{}\n", store_mshrs(&ctx)?);
    println!("{}", baselines(&ctx)?);
    Ok(())
}
