//! Ablations of the design choices called out in DESIGN.md:
//!
//! 1. **Marking policy** — no marking (legacy path) vs. no-unmark-at-fork
//!    (drops the §5.3 flush) vs. the full policy.
//! 2. **Region-store capacity** — sweep the CAM size; overflowed regions
//!    fall back to MESI.
//! 3. **Sectoring granularity** — byte (paper) vs. word vs. block: coarse
//!    sectors corrupt reconciliation when different tasks write adjacent
//!    sub-sector bytes, which the memory-image comparison exposes.
//! 4. **Store MSHRs** — how much store-miss overlap hides invalidation
//!    latency (the Figure 10 loads-vs-stores argument).

use warden_bench::fmt::{f2, table};
use warden_bench::SuiteScale;
use warden_coherence::Protocol;
use warden_pbbs::primes;
use warden_rt::{trace_program, MarkPolicy, RtOptions, TraceProgram};
use warden_sim::{simulate, Comparison, MachineConfig};

fn scaled(scale: SuiteScale, tiny: u64, paper: u64) -> u64 {
    match scale {
        SuiteScale::Tiny => tiny,
        SuiteScale::Paper => paper,
    }
}

fn speedup(p: &TraceProgram, m: &MachineConfig) -> f64 {
    let mesi = simulate(p, m, Protocol::Mesi);
    let warden = simulate(p, m, Protocol::Warden);
    Comparison::of(&p.name, &mesi, &warden).speedup
}

fn marking_policy(scale: SuiteScale, m: &MachineConfig) -> String {
    let n = scaled(scale, 4096, 65_536);
    // One program traced under each policy: tabulate + reduce has both the
    // fork-path flow the §5.3 flush accelerates and ancestor-array traffic.
    let build = |mark: MarkPolicy| {
        let opts = RtOptions {
            mark,
            ..RtOptions::default()
        };
        trace_program("tabreduce", opts, move |ctx| {
            let xs = ctx.tabulate::<u64>(n, 64, &|c, i| {
                c.work(8);
                i ^ 0x5a5a
            });
            let _ = ctx.reduce(
                0,
                n,
                64,
                &|c, i| c.read(&xs, i),
                &|a, b| a.wrapping_add(b),
                0,
            );
        })
    };
    let rows: Vec<Vec<String>> = [
        (MarkPolicy::None, "no marking (legacy app)"),
        (MarkPolicy::NoUnmarkAtFork, "marking, no §5.3 fork flush"),
        (MarkPolicy::LeafHeaps, "full policy (paper §4.2)"),
    ]
    .into_iter()
    .map(|(mark, label)| {
        let p = build(mark);
        vec![label.to_string(), f2(speedup(&p, m))]
    })
    .collect();
    format!(
        "Ablation 1: WARD marking policy (WARDen speedup over MESI, tabulate+reduce)\n\n{}",
        table(&["Policy", "Speedup"], &rows)
    )
}

fn region_capacity(scale: SuiteScale, m: &MachineConfig) -> String {
    let p = primes(scaled(scale, 2000, 65_536), 2);
    let rows: Vec<Vec<String>> = [8usize, 32, 128, 1024]
        .into_iter()
        .map(|cap| {
            let mut machine = m.clone();
            machine.cache.region_capacity = cap;
            let mesi = simulate(&p, &machine, Protocol::Mesi);
            let warden = simulate(&p, &machine, Protocol::Warden);
            let c = Comparison::of("primes", &mesi, &warden);
            vec![
                cap.to_string(),
                warden.stats.coherence.region_overflows.to_string(),
                warden.region_peak.to_string(),
                f2(c.speedup),
            ]
        })
        .collect();
    format!(
        "Ablation 2: region-store capacity (primes; overflowed regions fall back to MESI)\n\n{}",
        table(&["Capacity", "Overflows", "Peak live", "Speedup"], &rows)
    )
}

fn sectoring(scale: SuiteScale, m: &MachineConfig) -> String {
    // Concurrent tasks write *different* values at adjacent bytes of a
    // declared WARD region (sound: no cross-task reads inside the scope, as
    // the runtime checker verifies). Reconciliation merges the per-copy
    // write masks — only byte sectors can separate the neighbours.
    // An odd element count keeps the parallel-for split points unaligned to
    // cache blocks, so neighbouring tasks genuinely share boundary blocks.
    let n = scaled(scale, 16_383, 131_071);
    let p = trace_program("sector-demo", RtOptions::default(), move |ctx| {
        let xs = ctx.alloc::<u8>(n);
        ctx.ward_scope(&xs, |ctx| {
            ctx.parallel_for(0, n, 509, &|c, i| c.write(&xs, i, (i % 251) as u8));
        });
    });
    let rows: Vec<Vec<String>> = [1u64, 8, 64]
        .into_iter()
        .map(|g| {
            let mut machine = m.clone();
            machine.cache.sector_bytes = g;
            let mesi = simulate(&p, &machine, Protocol::Mesi);
            let warden = simulate(&p, &machine, Protocol::Warden);
            let correct = mesi.memory_image_digest == warden.memory_image_digest;
            vec![
                format!("{g} B"),
                if correct {
                    "identical".into()
                } else {
                    "CORRUPTED".into()
                },
                f2(Comparison::of("sector-demo", &mesi, &warden).speedup),
            ]
        })
        .collect();
    format!(
        "Ablation 3: write-mask sector granularity (neighbouring tasks write adjacent\nbytes of a WARD region with different values)\n\n{}\n\
         Byte sectoring (the paper's choice, §6.1: \"to match the smallest granularity\n\
         in software\") is required for correctness: coarser masks turn adjacent\n\
         sub-sector writes into lossy true-sharing merges.\n",
        table(&["Sector", "Final memory vs MESI", "Speedup"], &rows)
    )
}

fn store_mshrs(scale: SuiteScale, m: &MachineConfig) -> String {
    let p = primes(scaled(scale, 2000, 65_536), 2);
    let rows: Vec<Vec<String>> = [1usize, 4, 10, 56]
        .into_iter()
        .map(|n| {
            let mut machine = m.clone();
            machine.store_mshrs = n;
            vec![n.to_string(), f2(speedup(&p, &machine))]
        })
        .collect();
    format!(
        "Ablation 4: outstanding store misses (primes — benign-WAW stores dominate;\nmore overlap hides the invalidation latency MESI pays)\n\n{}",
        table(&["Store MSHRs", "WARDen speedup"], &rows)
    )
}

fn baselines(scale: SuiteScale, m: &MachineConfig) -> String {
    // What does the E state buy, and how much more does WARDen add? All
    // cycles normalized to the MSI baseline.
    let benches = [
        warden_pbbs::Bench::MakeArray,
        warden_pbbs::Bench::Msort,
        warden_pbbs::Bench::Tokens,
    ];
    let pbbs_scale = match scale {
        SuiteScale::Tiny => warden_pbbs::Scale::Tiny,
        SuiteScale::Paper => warden_pbbs::Scale::Paper,
    };
    let rows: Vec<Vec<String>> = benches
        .into_iter()
        .map(|b| {
            let p = b.build(pbbs_scale);
            let msi = simulate(&p, m, Protocol::Msi).stats.cycles as f64;
            let mesi = simulate(&p, m, Protocol::Mesi).stats.cycles as f64;
            let warden = simulate(&p, m, Protocol::Warden).stats.cycles as f64;
            vec![
                b.name().to_string(),
                "1.00".into(),
                f2(msi / mesi),
                f2(msi / warden),
            ]
        })
        .collect();
    format!(
        "Ablation 5: protocol baselines (speedup over plain MSI)\n\n{}",
        table(&["Benchmark", "MSI", "MESI", "WARDen"], &rows)
    )
}

fn main() {
    let scale = SuiteScale::from_args();
    let m = MachineConfig::dual_socket();
    println!("{}\n", marking_policy(scale, &m));
    println!("{}\n", region_capacity(scale, &m));
    println!("{}\n", sectoring(scale, &m));
    println!("{}\n", store_mshrs(scale, &m));
    println!("{}", baselines(scale, &m));
}
