//! Cycle breakdown per benchmark: where core time goes under MESI vs
//! WARDen. This is the causal view behind the speedups — WARDen removes
//! load-stall cycles (downgrade chains) and store back-pressure while
//! compute stays fixed.

use warden_bench::fmt::table;
use warden_bench::{run_bench, SuiteScale};
use warden_pbbs::Bench;
use warden_sim::{MachineConfig, SimStats};

fn pct_row(stats: &SimStats) -> Vec<String> {
    let total = stats.core_cycles_total.max(1) as f64;
    stats
        .cycle_breakdown()
        .iter()
        .map(|&(_, c)| format!("{:.1}%", 100.0 * c as f64 / total))
        .collect()
}

fn main() {
    let scale = SuiteScale::from_args();
    let machine = MachineConfig::dual_socket();
    let labels: Vec<&str> = SimStats::default()
        .cycle_breakdown()
        .iter()
        .map(|&(l, _)| l)
        .collect();
    let mut headers = vec!["benchmark", "protocol", "cycles"];
    headers.extend(labels.iter());
    let mut rows = Vec::new();
    for bench in Bench::ALL {
        eprint!("  {:<14}\r", bench.name());
        let r = run_bench(bench, scale.pbbs(), &machine);
        for (proto, stats) in [("MESI", &r.mesi.stats), ("WARDen", &r.warden.stats)] {
            let mut row = vec![
                bench.name().to_string(),
                proto.to_string(),
                stats.cycles.to_string(),
            ];
            row.extend(pct_row(stats));
            rows.push(row);
        }
    }
    println!(
        "Cycle breakdown (percent of total core time, dual socket)\n\n{}",
        table(&headers, &rows)
    );
}
