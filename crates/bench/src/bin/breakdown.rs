//! Cycle breakdown per benchmark: where core time goes under MESI vs
//! WARDen. This is the causal view behind the speedups — WARDen removes
//! load-stall cycles (downgrade chains) and store back-pressure while
//! compute stays fixed.

use warden_bench::fmt::table;
use warden_bench::{campaign_suite, harness_main, HarnessArgs, HarnessError};
use warden_pbbs::Bench;
use warden_sim::{MachineConfig, SimStats};

fn pct_row(stats: &SimStats) -> Vec<String> {
    let total = stats.core_cycles_total.max(1) as f64;
    stats
        .cycle_breakdown()
        .iter()
        .map(|&(_, c)| format!("{:.1}%", 100.0 * c as f64 / total))
        .collect()
}

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    let cfg = args.campaign_config();
    let machine = MachineConfig::dual_socket();
    let labels: Vec<&str> = SimStats::default()
        .cycle_breakdown()
        .iter()
        .map(|&(l, _)| l)
        .collect();
    let mut headers = vec!["benchmark", "protocol", "cycles"];
    headers.extend(labels.iter());
    let runs = campaign_suite(
        &Bench::ALL,
        args.scale.pbbs(),
        &machine,
        &args.sim_options(),
        &cfg,
    )?;
    let mut rows = Vec::new();
    for r in &runs {
        for (proto, stats) in [("MESI", &r.mesi.stats), ("WARDen", &r.warden.stats)] {
            let mut row = vec![
                r.bench.name().to_string(),
                proto.to_string(),
                stats.cycles.to_string(),
            ];
            row.extend(pct_row(stats));
            rows.push(row);
        }
    }
    println!(
        "Cycle breakdown (percent of total core time, dual socket)\n\n{}",
        table(&headers, &rows)
    );
    Ok(())
}
