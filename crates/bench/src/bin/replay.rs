//! Replay a recorded trace (see `record`) under both protocols on a chosen
//! machine:
//!
//! ```console
//! $ cargo run -p warden-bench --release --bin replay -- /tmp/primes.trace dual-socket
//! ```

use warden_coherence::Protocol;
use warden_rt::{summarize, trace_io};
use warden_sim::{simulate, Comparison, MachineConfig};

fn machine_by_name(name: &str) -> Option<MachineConfig> {
    Some(match name {
        "single-socket" => MachineConfig::single_socket(),
        "dual-socket" => MachineConfig::dual_socket(),
        "disaggregated" => MachineConfig::disaggregated(),
        "4-socket" => MachineConfig::many_socket(4),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1) else {
        eprintln!("usage: replay <trace-file> [single-socket|dual-socket|4-socket|disaggregated]");
        std::process::exit(2);
    };
    let machine = match args.get(2) {
        Some(name) => machine_by_name(name).unwrap_or_else(|| {
            eprintln!("unknown machine {name:?}");
            std::process::exit(2);
        }),
        None => MachineConfig::dual_socket(),
    };
    let mut file = std::io::BufReader::new(std::fs::File::open(path).expect("open trace"));
    let program = trace_io::read_trace(&mut file).expect("parse trace");
    program.check_invariants().expect("trace invariants");
    println!("{} — {}", program.name, summarize(&program));
    let mesi = simulate(&program, &machine, Protocol::Mesi);
    let warden = simulate(&program, &machine, Protocol::Warden);
    assert_eq!(mesi.memory_image_digest, warden.memory_image_digest);
    let c = Comparison::of(&program.name, &mesi, &warden);
    println!(
        "\n{} on {}: MESI {} cycles, WARDen {} cycles → speedup {:.2}x",
        program.name, machine.name, mesi.stats.cycles, warden.stats.cycles, c.speedup
    );
    println!(
        "inv+downgrades avoided/k-instr {:.2}, total energy saved {:.1}%",
        c.inv_dg_reduced_per_kilo, c.total_energy_savings_pct
    );
}
