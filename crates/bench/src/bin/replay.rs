//! Replay a recorded trace (see `record`) under a set of coherence
//! protocols (default: MESI and WARDen; `--protocols <names|all>` selects
//! others by registry name) on a chosen machine:
//!
//! ```console
//! $ cargo run -p warden-bench --release --bin replay -- /tmp/primes.trace dual-socket
//! ```
//!
//! Robustness switches: `--check` runs the coherence invariant checker on
//! both protocols (any violation is reported and fails the run);
//! `--faults <seed>` injects the benign seeded fault plan — region-CAM
//! exhaustion storms, forced reconciliations, latency spikes, and a flaky
//! remote link — which must leave the final memory image untouched.
//!
//! `--obs <dir>` records protocol observability on both runs (passive:
//! the reported stats are bit-identical either way) and writes a Perfetto
//! trace (`<name>-<protocol>.trace.json`) plus a per-epoch activity table
//! (`.epochs.txt`) per protocol into the directory.
//!
//! `--lanes <n>` shards the scheduler's core selection into `n` per-socket
//! event lanes merged in canonical `(clock, core, seq)` order — an
//! execution-strategy knob: a laned replay is bit-identical to the
//! sequential one (stats, digests, observability), which the
//! lane-determinism CI gate asserts across the whole benchmark suite.

use warden_bench::{export_outcome, harness_main, HarnessArgs, HarnessError, RunOptions};
use warden_coherence::ProtocolId;
use warden_rt::{summarize, trace_io};
use warden_sim::{simulate_with_options, try_simulate, Comparison, MachineConfig, SimOutcome};

fn machine_by_name(name: &str) -> Option<MachineConfig> {
    Some(match name {
        "single-socket" => MachineConfig::single_socket(),
        "dual-socket" => MachineConfig::dual_socket(),
        "disaggregated" => MachineConfig::disaggregated(),
        "4-socket" => MachineConfig::many_socket(4),
        _ => return None,
    })
}

fn report_robustness(outcome: &SimOutcome, opts: &RunOptions) -> bool {
    let mut ok = true;
    for v in &outcome.violations {
        eprintln!("[{:?}] invariant violation: {v}", outcome.protocol);
        ok = false;
    }
    if opts.check && outcome.violations.is_empty() {
        println!("[{:?}] invariant checker: clean", outcome.protocol);
    }
    if opts.faults.is_some() {
        let f = &outcome.stats.faults;
        println!(
            "[{:?}] faults injected: {} CAM storms ({} decoy regions), {} forced \
             reconciles, {} latency spikes, {} link retries ({} stall cycles)",
            outcome.protocol,
            f.cam_storms,
            f.decoy_regions,
            f.forced_reconciles,
            f.latency_spikes,
            f.link_retries,
            f.stall_cycles,
        );
    }
    ok
}

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    let Some(path) = args.positional.first() else {
        return Err(HarnessError::Args(
            "usage: replay <trace-file> [single-socket|dual-socket|4-socket|disaggregated] \
             [--check] [--faults <seed>] [--obs <dir>]"
                .into(),
        ));
    };
    let machine = match args.positional.get(1) {
        Some(name) => machine_by_name(name)
            .ok_or_else(|| HarnessError::Args(format!("unknown machine {name:?}")))?,
        None => MachineConfig::dual_socket(),
    };
    let io_err = |e| HarnessError::Io {
        path: path.into(),
        source: e,
    };
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut reader = std::io::BufReader::new(file);
    let program = trace_io::read_trace(&mut reader)
        .map_err(|e| HarnessError::Failed(format!("cannot parse trace {path:?}: {e}")))?;
    program
        .check_invariants()
        .map_err(|e| HarnessError::Failed(format!("trace {path:?} violates invariants: {e}")))?;
    println!("{} — {}", program.name, summarize(&program));

    let sim_opts = args.sim_options();
    let protocols = args
        .protocols
        .clone()
        .unwrap_or_else(|| vec![ProtocolId::Mesi, ProtocolId::Warden]);
    // Validate machine and plan once through the fallible entry point, then
    // reuse the infallible one for the remaining protocols.
    let first = try_simulate(&program, &machine, protocols[0], &sim_opts)
        .map_err(|e| HarnessError::Failed(format!("cannot simulate: {e}")))?;
    let mut outcomes = vec![first];
    for &p in &protocols[1..] {
        outcomes.push(simulate_with_options(&program, &machine, p, &sim_opts));
    }
    let mut clean = true;
    for o in &outcomes {
        clean &= report_robustness(o, &args.run);
    }

    for (o, &p) in outcomes.iter().zip(&protocols) {
        if o.memory_image_digest != outcomes[0].memory_image_digest {
            return Err(HarnessError::Failed(format!(
                "{}: protocol {} diverged from {} on the final memory image \
                 ({:#018x} vs {:#018x})",
                program.name,
                p.name(),
                protocols[0].name(),
                o.memory_image_digest,
                outcomes[0].memory_image_digest,
            )));
        }
    }
    println!("\n{} on {}:", program.name, machine.name);
    for (o, &p) in outcomes.iter().zip(&protocols) {
        println!("  {:>7}: {} cycles", p.to_string(), o.stats.cycles);
    }
    let mesi_pos = protocols.iter().position(|&p| p == ProtocolId::Mesi);
    let warden_pos = protocols.iter().position(|&p| p == ProtocolId::Warden);
    if let (Some(mi), Some(wi)) = (mesi_pos, warden_pos) {
        let c = Comparison::of(&program.name, &outcomes[mi], &outcomes[wi]);
        println!(
            "speedup {:.2}x, inv+downgrades avoided/k-instr {:.2}, total energy saved {:.1}%",
            c.speedup, c.inv_dg_reduced_per_kilo, c.total_energy_savings_pct
        );
    }
    if let Some(dir) = &args.obs {
        for outcome in &outcomes {
            for p in export_outcome(dir, &program.name, outcome)? {
                println!("wrote {}", p.display());
            }
        }
    }
    if !clean {
        return Err(HarnessError::Failed(
            "invariant violations were reported".into(),
        ));
    }
    Ok(())
}
