//! Regenerates Table 1: ping-pong latency validation of the timing model.
use warden_bench::figures::render_table1;
use warden_bench::{harness_main, HarnessArgs, HarnessError};
use warden_sim::MachineConfig;

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    HarnessArgs::parse()?;
    let machine = MachineConfig::dual_socket();
    println!("{}", render_table1(&machine, 10_000));
    Ok(())
}
