//! Regenerates Table 1: ping-pong latency validation of the timing model.
use warden_bench::figures::render_table1;
use warden_sim::MachineConfig;

fn main() {
    let machine = MachineConfig::dual_socket();
    println!("{}", render_table1(&machine, 10_000));
}
