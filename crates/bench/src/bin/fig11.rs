//! Regenerates Figure 11: percentage IPC improvement.
use warden_bench::figures::render_fig11;
use warden_bench::{suite, SuiteScale};
use warden_pbbs::Bench;
use warden_sim::MachineConfig;

fn main() {
    let scale = SuiteScale::from_args();
    let machine = MachineConfig::dual_socket();
    let runs = suite(&Bench::ALL, scale.pbbs(), &machine);
    println!("{}", render_fig11(&runs));
}
