//! Oracle-backed load generator for `warden-serve`:
//!
//! ```console
//! $ cargo run -p warden-bench --release --bin loadgen -- \
//!       --spawn --clients 8 --iters 6 --scale tiny
//! ```
//!
//! The plan is five benchmarks × {MESI, WARDen} on a dual-socket machine
//! (2 cores/socket at `--scale tiny`, the full 12 at `paper`). Every
//! expected outcome is first computed *directly* through the supervised
//! campaign runner; the clients then drive the server concurrently and
//! every `Outcome` response must match its oracle digest bit for bit.
//! The exit status is the conformance verdict.
//!
//! | flag                 | effect |
//! |----------------------|--------|
//! | `--spawn`            | start an in-process server and drive it |
//! | `--addr <host:port>` | connect to (or, with `--spawn`, bind) this TCP address |
//! | `--uds <path>`       | connect over (or bind) a Unix socket instead |
//! | `--clients <n>`      | concurrent connections (default 8) |
//! | `--iters <n>`        | requests per client (default 6) |
//! | `--queue-cap <n>`    | `--spawn`: bounded queue capacity |
//! | `--jobs <n>`         | `--spawn`: server workers; always: oracle workers |
//! | `--scale tiny|paper` | input scale for the plan |
//! | `--check`            | run the invariant checker inside each simulation |
//! | `--obs <dir>`        | `--spawn`: write the server timeline as `loadgen.trace.json` |
//! | `--out <path>`       | write the metrics + conformance JSON report |
//! | `--chaos`            | interpose the fault-injecting proxy; drive with resilient clients |
//! | `--chaos-seed <n>`   | seed for the deterministic fault stream (default 0xC4A05EED) |
//! | `--request-deadline-ms <ms>` | `--spawn`: per-request deadline on the server |
//! | `--cache-budget <bytes>`     | `--spawn`: result-cache byte budget |
//! | `--disk-cache <dir>` | `--spawn`: crash-safe disk tier directory |
//! | `--disk-budget <bytes>`      | `--spawn`: disk-tier byte budget |
//! | `--checkpoint-every <steps>` | `--spawn`: steps between prefix-checkpoint frames |
//! | `--storage-chaos`    | `--spawn`: inject seeded storage faults into the disk tier |
//! | `--storage-chaos-seed <seed>` | seed for the storage-fault stream |
//!
//! With `--chaos` the same conformance suite runs through a seeded
//! fault-injecting TCP proxy (torn frames, partial writes, byte delays,
//! slow-loris half-open connections, mid-flight resets) and
//! [`warden_serve::ResilientClient`]s that must absorb every fault: the
//! run still demands bit-identical outcomes, and afterwards the server's
//! own metrics must show zero in-flight work, an empty queue, and — when
//! a budget is set — cache residency that never exceeded it.

use std::time::Duration;
use warden_bench::chaos::{ChaosConfig, ChaosProxy, Upstream};
use warden_bench::loadgen::{drive, drive_resilient, metrics_json, oracle, Target};
use warden_bench::runner::SuiteScale;
use warden_bench::{harness_main, HarnessArgs, HarnessError};
use warden_coherence::ProtocolId;
use warden_pbbs::{Bench, Scale};
use warden_serve::{
    MachinePreset, MachineSpec, RetryPolicy, ServeConfig, Server, ServerOptions, SimRequest,
};

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    if !args.positional.is_empty() {
        return Err(HarnessError::Args(format!(
            "loadgen takes no positional arguments, got {:?}",
            args.positional
        )));
    }
    if !args.spawn && args.addr.is_none() && args.uds.is_none() {
        return Err(HarnessError::Args(
            "loadgen needs a target: --spawn, --addr <host:port> or --uds <path>".into(),
        ));
    }

    let scale = match args.scale {
        SuiteScale::Tiny => Scale::Tiny,
        SuiteScale::Paper => Scale::Paper,
    };
    // Small machines keep tiny-scale replays fast without changing what is
    // being proven: the digests cover the full outcome either way.
    let machine = match scale {
        Scale::Tiny => MachineSpec::new(MachinePreset::DualSocket).with_cores(2),
        Scale::Paper => MachineSpec::new(MachinePreset::DualSocket),
    };
    let benches = [
        Bench::Fib,
        Bench::MakeArray,
        Bench::Primes,
        Bench::Msort,
        Bench::Tokens,
    ];
    let protocols = args
        .protocols
        .clone()
        .unwrap_or_else(|| vec![ProtocolId::Mesi, ProtocolId::Warden]);
    let mut requests = Vec::new();
    for bench in benches {
        for &protocol in &protocols {
            requests.push(SimRequest {
                bench,
                scale,
                machine,
                protocol,
                check: args.run.check,
            });
        }
    }

    eprintln!(
        "loadgen: computing {} oracle digest(s) through the campaign runner",
        requests.len()
    );
    let plan = oracle(&requests, &args.campaign_config())?;

    let clients = args.clients.unwrap_or(8);
    let iters = args.iters.unwrap_or(6);
    let (disk, storage_faults) = args.disk_config()?;
    if disk.is_some() && !args.spawn {
        return Err(HarnessError::Args(
            "--disk-cache configures the spawned server; it requires --spawn".into(),
        ));
    }
    let (server, target) = if args.spawn {
        let mut opts = ServerOptions::default();
        if let Some(ms) = args.request_deadline_ms {
            opts.request_deadline = Some(Duration::from_millis(ms));
        }
        if let Some(bytes) = args.cache_budget {
            opts.cache_budget_bytes = bytes;
        }
        if args.chaos {
            // Tighten the stall bound so the proxy's slow-loris hold
            // (750 ms) trips it well inside the run.
            opts.frame_stall = Duration::from_millis(250);
        }
        let cfg = ServeConfig {
            tcp: match (&args.addr, &args.uds) {
                (Some(addr), _) => Some(addr.clone()),
                (None, Some(_)) => None,
                (None, None) => Some("127.0.0.1:0".to_string()),
            },
            uds: args.uds.clone(),
            workers: args.jobs.unwrap_or(2),
            queue_cap: args.queue_cap.unwrap_or(16),
            record_trace: args.obs.is_some(),
            lanes: args.run.lanes.max(1),
            opts,
            disk,
            storage_faults,
            ..ServeConfig::default()
        };
        let server = Server::start(cfg).map_err(|e| HarnessError::Failed(e.to_string()))?;
        let target = match (server.uds_path(), server.tcp_addr()) {
            (Some(path), _) => Target::Uds(path.clone()),
            (None, Some(addr)) => Target::Tcp(addr.to_string()),
            (None, None) => unreachable!("a started server has a listener"),
        };
        (Some(server), target)
    } else if let Some(path) = &args.uds {
        (None, Target::Uds(path.clone()))
    } else {
        (None, Target::Tcp(args.addr.clone().expect("checked above")))
    };

    let (outcome, chaos_report) = if args.chaos {
        let upstream = match &target {
            Target::Tcp(addr) => Upstream::Tcp(addr.clone()),
            Target::Uds(path) => Upstream::Uds(path.clone()),
        };
        let chaos_cfg = ChaosConfig {
            seed: args
                .chaos_seed
                .unwrap_or_else(|| ChaosConfig::default().seed),
            loris_hold: Duration::from_millis(750),
            ..ChaosConfig::default()
        };
        let seed = chaos_cfg.seed;
        let proxy = ChaosProxy::start(upstream, chaos_cfg)
            .map_err(|e| HarnessError::Failed(format!("chaos proxy failed to start: {e}")))?;
        eprintln!(
            "loadgen: chaos proxy on {} (seed {seed:#x}) fronting {target:?}; \
             driving {clients} resilient client(s) x {iters} request(s)",
            proxy.addr()
        );
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            call_deadline: Some(Duration::from_secs(120)),
            frame_stall: Duration::from_millis(500),
            seed,
        };
        let outcome = drive_resilient(
            &Target::Tcp(proxy.addr().to_string()),
            &plan,
            clients,
            iters,
            &policy,
        );
        (outcome, Some(proxy.stop()))
    } else {
        eprintln!("loadgen: driving {target:?} with {clients} client(s) x {iters} request(s)");
        (drive(&target, &plan, clients, iters), None)
    };

    // Drain the spawned server even when the drive failed, so its report
    // (and trace) survive for diagnosis.
    let shutdown = server.map(Server::shutdown);
    let report = outcome?;

    let metrics = match &shutdown {
        Some(s) => s.metrics.clone(),
        None => {
            // Remote server: pull its snapshot over the wire.
            let fetched = match &target {
                Target::Tcp(addr) => {
                    warden_serve::Client::connect(addr).and_then(|mut c| c.metrics())
                }
                #[cfg(unix)]
                Target::Uds(path) => {
                    warden_serve::Client::connect_uds(path).and_then(|mut c| c.metrics())
                }
                #[cfg(not(unix))]
                Target::Uds(_) => Err(warden_serve::ServeError::Config(
                    "Unix sockets are unavailable on this platform".into(),
                )),
            };
            fetched.map_err(|e| HarnessError::Failed(format!("metrics fetch failed: {e}")))?
        }
    };

    println!(
        "loadgen: {} response(s), {} cache-served, {} busy retr(ies), {} mismatch(es)",
        report.responses, report.cache_hits, report.busy_retries, report.mismatches
    );
    let s = &report.served;
    println!(
        "loadgen: warm/cold split — memory {} ({} us), coalesced {} ({} us), \
         disk {} ({} us), resume {} ({} us), full {} ({} us); hit ratio {:.1}%",
        s.memory_hit.count,
        s.memory_hit.mean_us(),
        s.coalesced.count,
        s.coalesced.mean_us(),
        s.disk_hit.count,
        s.disk_hit.mean_us(),
        s.prefix_resume.count,
        s.prefix_resume.mean_us(),
        s.full_sim.count,
        s.full_sim.mean_us(),
        s.hit_ratio().unwrap_or(0.0) * 100.0
    );
    let expected = clients as u64 * iters as u64;
    if report.responses != expected {
        return Err(HarnessError::Failed(format!(
            "expected {expected} responses, got {}",
            report.responses
        )));
    }
    if report.cache_hits == 0 && expected > plan.len() as u64 {
        return Err(HarnessError::Failed(
            "a plan smaller than the request count must produce cache hits".into(),
        ));
    }

    if let Some(chaos) = &chaos_report {
        println!(
            "loadgen: chaos injected {} fault(s) over {} connection(s) \
             (torn {}, partial {}, delay {}, loris {}, reset {}); \
             clients retried {} time(s), reconnected {} time(s)",
            chaos.faulted(),
            chaos.connections,
            chaos.torn_frames,
            chaos.partial_writes,
            chaos.byte_delays,
            chaos.slow_loris,
            chaos.resets,
            report.retries,
            report.reconnects
        );
        if chaos.connections < clients as u64 {
            return Err(HarnessError::Failed(format!(
                "chaos proxy saw {} connection(s) for {clients} client(s) — \
                 the drive did not go through the proxy",
                chaos.connections
            )));
        }
        let counter = |name: &str| -> u64 {
            metrics
                .counters()
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        // A clean post-drain server: nothing in flight, nothing queued —
        // no fault may leak a single-flight slot or wedge a worker.
        let inflight = counter("serve_inflight_current");
        let queued = counter("serve_queue_depth_current");
        if inflight != 0 || queued != 0 {
            return Err(HarnessError::Failed(format!(
                "chaos run leaked work: {inflight} in flight, {queued} queued after drain"
            )));
        }
        if let Some(budget) = args.cache_budget {
            let peak = counter("cache_resident_peak");
            if peak > budget {
                return Err(HarnessError::Failed(format!(
                    "cache residency peaked at {peak} bytes, over the {budget}-byte budget"
                )));
            }
            println!("loadgen: cache peak {peak} B stayed within the {budget} B budget");
        }
    }

    if let (Some(dir), Some(s)) = (&args.obs, &shutdown) {
        std::fs::create_dir_all(dir).map_err(|e| HarnessError::Io {
            path: dir.clone(),
            source: e,
        })?;
        let path = dir.join("loadgen.trace.json");
        let json = s.trace_json.as_deref().unwrap_or("{}");
        std::fs::write(&path, json).map_err(|e| HarnessError::Io {
            path: path.clone(),
            source: e,
        })?;
        println!("loadgen: wrote {}", path.display());
    }
    if let Some(out) = &args.out {
        std::fs::write(out, metrics_json(&metrics, &report)).map_err(|e| HarnessError::Io {
            path: out.clone(),
            source: e,
        })?;
        println!("loadgen: wrote {}", out.display());
    }
    println!("loadgen: conformance OK — every response matched its oracle digest");
    Ok(())
}
