//! Oracle-backed load generator for `warden-serve`:
//!
//! ```console
//! $ cargo run -p warden-bench --release --bin loadgen -- \
//!       --spawn --clients 8 --iters 6 --scale tiny
//! ```
//!
//! The plan is five benchmarks × {MESI, WARDen} on a dual-socket machine
//! (2 cores/socket at `--scale tiny`, the full 12 at `paper`). Every
//! expected outcome is first computed *directly* through the supervised
//! campaign runner; the clients then drive the server concurrently and
//! every `Outcome` response must match its oracle digest bit for bit.
//! The exit status is the conformance verdict.
//!
//! | flag                 | effect |
//! |----------------------|--------|
//! | `--spawn`            | start an in-process server and drive it |
//! | `--addr <host:port>` | connect to (or, with `--spawn`, bind) this TCP address |
//! | `--uds <path>`       | connect over (or bind) a Unix socket instead |
//! | `--clients <n>`      | concurrent connections (default 8) |
//! | `--iters <n>`        | requests per client (default 6) |
//! | `--queue-cap <n>`    | `--spawn`: bounded queue capacity |
//! | `--jobs <n>`         | `--spawn`: server workers; always: oracle workers |
//! | `--scale tiny|paper` | input scale for the plan |
//! | `--check`            | run the invariant checker inside each simulation |
//! | `--obs <dir>`        | `--spawn`: write the server timeline as `loadgen.trace.json` |
//! | `--out <path>`       | write the metrics + conformance JSON report |

use warden_bench::loadgen::{drive, metrics_json, oracle, Target};
use warden_bench::runner::SuiteScale;
use warden_bench::{harness_main, HarnessArgs, HarnessError};
use warden_coherence::Protocol;
use warden_pbbs::{Bench, Scale};
use warden_serve::{MachinePreset, MachineSpec, ServeConfig, Server, SimRequest};

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    if !args.positional.is_empty() {
        return Err(HarnessError::Args(format!(
            "loadgen takes no positional arguments, got {:?}",
            args.positional
        )));
    }
    if !args.spawn && args.addr.is_none() && args.uds.is_none() {
        return Err(HarnessError::Args(
            "loadgen needs a target: --spawn, --addr <host:port> or --uds <path>".into(),
        ));
    }

    let scale = match args.scale {
        SuiteScale::Tiny => Scale::Tiny,
        SuiteScale::Paper => Scale::Paper,
    };
    // Small machines keep tiny-scale replays fast without changing what is
    // being proven: the digests cover the full outcome either way.
    let machine = match scale {
        Scale::Tiny => MachineSpec::new(MachinePreset::DualSocket).with_cores(2),
        Scale::Paper => MachineSpec::new(MachinePreset::DualSocket),
    };
    let benches = [
        Bench::Fib,
        Bench::MakeArray,
        Bench::Primes,
        Bench::Msort,
        Bench::Tokens,
    ];
    let mut requests = Vec::new();
    for bench in benches {
        for protocol in [Protocol::Mesi, Protocol::Warden] {
            requests.push(SimRequest {
                bench,
                scale,
                machine,
                protocol,
                check: args.run.check,
            });
        }
    }

    eprintln!(
        "loadgen: computing {} oracle digest(s) through the campaign runner",
        requests.len()
    );
    let plan = oracle(&requests, &args.campaign_config())?;

    let clients = args.clients.unwrap_or(8);
    let iters = args.iters.unwrap_or(6);
    let (server, target) = if args.spawn {
        let cfg = ServeConfig {
            tcp: match (&args.addr, &args.uds) {
                (Some(addr), _) => Some(addr.clone()),
                (None, Some(_)) => None,
                (None, None) => Some("127.0.0.1:0".to_string()),
            },
            uds: args.uds.clone(),
            workers: args.jobs.unwrap_or(2),
            queue_cap: args.queue_cap.unwrap_or(16),
            record_trace: args.obs.is_some(),
            ..ServeConfig::default()
        };
        let server = Server::start(cfg).map_err(|e| HarnessError::Failed(e.to_string()))?;
        let target = match (server.uds_path(), server.tcp_addr()) {
            (Some(path), _) => Target::Uds(path.clone()),
            (None, Some(addr)) => Target::Tcp(addr.to_string()),
            (None, None) => unreachable!("a started server has a listener"),
        };
        (Some(server), target)
    } else if let Some(path) = &args.uds {
        (None, Target::Uds(path.clone()))
    } else {
        (None, Target::Tcp(args.addr.clone().expect("checked above")))
    };

    eprintln!("loadgen: driving {target:?} with {clients} client(s) x {iters} request(s)");
    let outcome = drive(&target, &plan, clients, iters);

    // Drain the spawned server even when the drive failed, so its report
    // (and trace) survive for diagnosis.
    let shutdown = server.map(Server::shutdown);
    let report = outcome?;

    let metrics = match &shutdown {
        Some(s) => s.metrics.clone(),
        None => {
            // Remote server: pull its snapshot over the wire.
            let fetched = match &target {
                Target::Tcp(addr) => {
                    warden_serve::Client::connect(addr).and_then(|mut c| c.metrics())
                }
                #[cfg(unix)]
                Target::Uds(path) => {
                    warden_serve::Client::connect_uds(path).and_then(|mut c| c.metrics())
                }
                #[cfg(not(unix))]
                Target::Uds(_) => Err(warden_serve::ServeError::Config(
                    "Unix sockets are unavailable on this platform".into(),
                )),
            };
            fetched.map_err(|e| HarnessError::Failed(format!("metrics fetch failed: {e}")))?
        }
    };

    println!(
        "loadgen: {} response(s), {} cache-served, {} busy retr(ies), {} mismatch(es)",
        report.responses, report.cache_hits, report.busy_retries, report.mismatches
    );
    let expected = clients as u64 * iters as u64;
    if report.responses != expected {
        return Err(HarnessError::Failed(format!(
            "expected {expected} responses, got {}",
            report.responses
        )));
    }
    if report.cache_hits == 0 && expected > plan.len() as u64 {
        return Err(HarnessError::Failed(
            "a plan smaller than the request count must produce cache hits".into(),
        ));
    }

    if let (Some(dir), Some(s)) = (&args.obs, &shutdown) {
        std::fs::create_dir_all(dir).map_err(|e| HarnessError::Io {
            path: dir.clone(),
            source: e,
        })?;
        let path = dir.join("loadgen.trace.json");
        let json = s.trace_json.as_deref().unwrap_or("{}");
        std::fs::write(&path, json).map_err(|e| HarnessError::Io {
            path: path.clone(),
            source: e,
        })?;
        println!("loadgen: wrote {}", path.display());
    }
    if let Some(out) = &args.out {
        std::fs::write(out, metrics_json(&metrics, &report)).map_err(|e| HarnessError::Io {
            path: out.clone(),
            source: e,
        })?;
        println!("loadgen: wrote {}", out.display());
    }
    println!("loadgen: conformance OK — every response matched its oracle digest");
    Ok(())
}
