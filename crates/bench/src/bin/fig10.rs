//! Regenerates Figure 10: downgrade vs invalidation breakdown.
use warden_bench::figures::render_fig10;
use warden_bench::{campaign_suite, harness_main, HarnessArgs, HarnessError};
use warden_pbbs::Bench;
use warden_sim::MachineConfig;

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    let cfg = args.campaign_config();
    let machine = MachineConfig::dual_socket();
    let runs = campaign_suite(
        &Bench::ALL,
        args.scale.pbbs(),
        &machine,
        &args.sim_options(),
        &cfg,
    )?;
    println!("{}", render_fig10(&runs));
    Ok(())
}
