//! Regenerates the §6.1 hardware-cost estimates.
use warden_bench::figures::render_area;
use warden_bench::{harness_main, HarnessArgs, HarnessError};

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    HarnessArgs::parse()?;
    println!("{}", render_area());
    Ok(())
}
