//! Regenerates the §6.1 hardware-cost estimates.
use warden_bench::figures::render_area;

fn main() {
    println!("{}", render_area());
}
