//! The differential coherence fuzz gate and the coherence-atlas sweep.
//!
//! Three modes, chosen by flags:
//!
//! * default — generate `--fuzz-workloads` seeded workloads and run the
//!   N-way differential gate (every protocol, checker on). Exits nonzero
//!   on any disagreement; shrunk reproducers land in `--artifacts`.
//! * `--mutate <protocol:mutation>` — the same gate with a deliberate
//!   defect injected into one protocol. The gate must now *catch* it:
//!   exit 0 iff at least one disagreement was found.
//! * `--replay <token>` — re-check one archived workload token directly
//!   (composable with `--mutate` to reproduce a catch).
//! * `--atlas <dir>` — run the machine-space sweep instead and write
//!   `coherence_atlas.txt` / `coherence_atlas.records` into `<dir>`.

use std::path::Path;
use warden_bench::figures::render_coherence_atlas;
use warden_bench::{
    check_spec, harness_main, run_atlas, run_fuzz_gate, FuzzOptions, HarnessArgs, HarnessError,
};
use warden_coherence::ProtocolId;
use warden_rt::workload::WorkloadSpec;

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    let cfg = args.campaign_config();
    let protocols = args
        .protocols
        .clone()
        .unwrap_or_else(|| ProtocolId::ALL.to_vec());

    if let Some(dir) = &args.atlas {
        return write_atlas(dir, args.fuzz_seed.unwrap_or(2023), &args);
    }

    if let Some(token) = &args.replay {
        return replay(token, &protocols, &args);
    }

    let mut opts = FuzzOptions::new(
        args.fuzz_workloads.unwrap_or(10),
        args.fuzz_seed.unwrap_or(2023),
    );
    opts.protocols = protocols;
    if let Some(patterns) = &args.patterns {
        opts.patterns = patterns.clone();
    }
    opts.mutate = args.mutate;
    opts.artifacts = args.artifacts.clone();

    let report = run_fuzz_gate(&opts, &cfg)?;
    println!(
        "fuzz gate: {} workloads, {} runs, disagreements: {}",
        report.workloads,
        report.runs,
        report.disagreements.len()
    );
    for d in &report.disagreements {
        println!(
            "  {}: {} (shrunk from {})",
            d.protocol, d.detail, d.original_token
        );
        println!(
            "    reproduce: fuzzgen --replay {}{}",
            d.token,
            match &opts.mutate {
                Some(_) => " --mutate <protocol:mutation>",
                None => "",
            }
        );
        if let Some(p) = &d.archived {
            println!("    archived: {}", p.display());
        }
    }

    match (&opts.mutate, report.disagreements.is_empty()) {
        // Clean gate: agreement is the pass condition.
        (None, true) => Ok(()),
        (None, false) => Err(HarnessError::Failed(format!(
            "{} protocol disagreement(s) on clean workloads",
            report.disagreements.len()
        ))),
        // Mutation gate: the defect must be caught.
        (Some((p, m)), false) => {
            println!(
                "caught: {}:{m:?} detected by the differential gate",
                p.name()
            );
            Ok(())
        }
        (Some((p, m)), true) => Err(HarnessError::Failed(format!(
            "mutation {}:{m:?} escaped the gate across {} workloads",
            p.name(),
            report.workloads
        ))),
    }
}

fn replay(token: &str, protocols: &[ProtocolId], args: &HarnessArgs) -> Result<(), HarnessError> {
    let spec = WorkloadSpec::from_token(token)
        .map_err(|e| HarnessError::Args(format!("--replay: {e}")))?;
    let machine = FuzzOptions::new(1, 0).machine;
    match check_spec(&spec, &machine, protocols, args.mutate) {
        None => {
            println!("replay {token}: all protocols agree");
            match args.mutate {
                None => Ok(()),
                Some((p, m)) => Err(HarnessError::Failed(format!(
                    "replay {token}: mutation {}:{m:?} was not caught",
                    p.name()
                ))),
            }
        }
        Some((protocol, detail)) => {
            println!("replay {token}: {protocol} disagreed: {detail}");
            match args.mutate {
                None => Err(HarnessError::Failed(format!(
                    "replay {token}: {protocol} disagreed: {detail}"
                ))),
                Some(_) => {
                    println!("caught: the injected mutation reproduces");
                    Ok(())
                }
            }
        }
    }
}

fn write_atlas(dir: &Path, seed: u64, args: &HarnessArgs) -> Result<(), HarnessError> {
    std::fs::create_dir_all(dir).map_err(|e| HarnessError::Io {
        path: dir.to_path_buf(),
        source: e,
    })?;
    let cfg = args.campaign_config();
    let atlas = run_atlas(seed, &cfg)?;
    let records = atlas.records();
    let figure = render_coherence_atlas(&atlas);
    for (name, body) in [
        ("coherence_atlas.records", &records),
        ("coherence_atlas.txt", &figure),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, body).map_err(|e| HarnessError::Io {
            path: path.clone(),
            source: e,
        })?;
        println!("wrote {}", path.display());
    }
    let wins = atlas.winners();
    println!(
        "atlas: {} cells, {} cell groups, seed {seed}",
        atlas.cells.len(),
        wins.len()
    );
    Ok(())
}
