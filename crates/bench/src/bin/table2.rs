//! Regenerates Table 2: the simulated system specification.
use warden_bench::figures::render_table2;
use warden_sim::MachineConfig;

fn main() {
    println!("{}", render_table2(&MachineConfig::dual_socket()));
}
