//! Regenerates Table 2: the simulated system specification.
use warden_bench::figures::render_table2;
use warden_bench::{harness_main, HarnessArgs, HarnessError};
use warden_sim::MachineConfig;

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    HarnessArgs::parse()?;
    println!("{}", render_table2(&MachineConfig::dual_socket()));
    Ok(())
}
