//! Validate exported Chrome trace-event files:
//!
//! ```console
//! $ cargo run -p warden-bench --bin obs_lint -- obs.out/*.trace.json
//! ```
//!
//! Each file is parsed with the dependency-free JSON parser and checked
//! against the trace-event schema ([`warden_obs::validate_trace`]) — the
//! same validation Perfetto's importer performs, so a file that lints here
//! loads there. CI lints every trace the `obs` stage exports.

use warden_bench::{harness_main, HarnessArgs, HarnessError};

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    if args.positional.is_empty() {
        return Err(HarnessError::Args(
            "usage: obs_lint <trace.json> [<trace.json>…]".into(),
        ));
    }
    for path in &args.positional {
        let text = std::fs::read_to_string(path).map_err(|e| HarnessError::Io {
            path: path.into(),
            source: e,
        })?;
        let stats = warden_obs::validate_trace(&text)
            .map_err(|e| HarnessError::Failed(format!("{path}: {e}")))?;
        println!(
            "{path}: ok — {} events ({} slices, {} instants, {} counter samples, {} metadata)",
            stats.events, stats.complete, stats.instants, stats.counters, stats.metadata
        );
    }
    Ok(())
}
