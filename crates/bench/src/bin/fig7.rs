//! Regenerates Figure 7: single-socket speedup and energy savings.
use warden_bench::figures::render_fig7;
use warden_bench::{suite, SuiteScale};
use warden_pbbs::Bench;
use warden_sim::MachineConfig;

fn main() {
    let scale = SuiteScale::from_args();
    let machine = MachineConfig::single_socket();
    let runs = suite(&Bench::ALL, scale.pbbs(), &machine);
    println!("{}", render_fig7(&runs));
}
