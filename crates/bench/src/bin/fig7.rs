//! Regenerates Figure 7: single-socket speedup and energy savings.
use warden_bench::figures::render_fig7;
use warden_bench::{campaign_suite, harness_main, HarnessArgs, HarnessError};
use warden_pbbs::Bench;
use warden_sim::MachineConfig;

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    let cfg = args.campaign_config();
    let machine = MachineConfig::single_socket();
    let runs = campaign_suite(
        &Bench::ALL,
        args.scale.pbbs(),
        &machine,
        &args.sim_options(),
        &cfg,
    )?;
    println!("{}", render_fig7(&runs));
    Ok(())
}
