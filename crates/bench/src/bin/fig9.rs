//! Regenerates Figure 9: dual-socket speedup vs coherence-event reduction.
use warden_bench::figures::render_fig9;
use warden_bench::{suite, SuiteScale};
use warden_pbbs::Bench;
use warden_sim::MachineConfig;

fn main() {
    let scale = SuiteScale::from_args();
    let machine = MachineConfig::dual_socket();
    let runs = suite(&Bench::ALL, scale.pbbs(), &machine);
    println!("{}", render_fig9(&runs));
}
