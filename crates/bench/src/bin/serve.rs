//! Run a `warden-serve` simulation server:
//!
//! ```console
//! $ cargo run -p warden-bench --release --bin serve -- --addr 127.0.0.1:7878
//! serve: listening on 127.0.0.1:7878 (2 workers, queue 16)
//! ```
//!
//! The server runs until stdin reaches EOF, a line reading `quit`
//! arrives, or the process receives SIGTERM — all three trigger the same
//! graceful drain: queued simulations finish, every blocked client
//! receives its reply, and only then do the threads join. SIGTERM-as-drain
//! makes the daemon a well-behaved citizen under process supervisors
//! (systemd, Kubernetes, CI runners) that signal before killing.
//!
//! | flag                 | effect |
//! |----------------------|--------|
//! | `--addr <host:port>` | TCP bind address (default `127.0.0.1:7878`) |
//! | `--uds <path>`       | also (or only) bind a Unix socket |
//! | `--jobs <n>`         | worker threads (default 2) |
//! | `--lanes <n>`        | event lanes per worker simulation (bit-identical) |
//! | `--queue-cap <n>`    | bounded queue capacity (default 16) |
//! | `--request-deadline-ms <ms>` | per-request deadline (queue wait + simulation) |
//! | `--cache-budget <bytes>`     | result-cache byte budget |
//! | `--disk-cache <dir>` | crash-safe disk tier: results + prefix checkpoints |
//! | `--disk-budget <bytes>`      | disk-tier byte budget |
//! | `--checkpoint-every <steps>` | steps between prefix-checkpoint frames |
//! | `--storage-chaos`    | inject seeded storage faults (drills only) |
//! | `--storage-chaos-seed <seed>` | seed for the storage-fault stream |
//! | `--obs <dir>`        | record a request timeline; write `serve.trace.json` there |
//! | `--out <path>`       | write a final metrics JSON report |

use std::io::BufRead;
use std::time::Duration;
use warden_bench::loadgen::{metrics_json, LoadReport};
use warden_bench::{harness_main, HarnessArgs, HarnessError};
use warden_serve::{drain_requested, install_sigterm_drain, ServeConfig, Server, ServerOptions};

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    if !args.positional.is_empty() {
        return Err(HarnessError::Args(format!(
            "serve takes no positional arguments, got {:?}",
            args.positional
        )));
    }
    let mut opts = ServerOptions::default();
    if let Some(ms) = args.request_deadline_ms {
        opts.request_deadline = Some(Duration::from_millis(ms));
    }
    if let Some(bytes) = args.cache_budget {
        opts.cache_budget_bytes = bytes;
    }
    let (disk, storage_faults) = args.disk_config()?;
    let cfg = ServeConfig {
        tcp: match (&args.addr, &args.uds) {
            (Some(addr), _) => Some(addr.clone()),
            (None, Some(_)) => None,
            (None, None) => Some("127.0.0.1:7878".to_string()),
        },
        uds: args.uds.clone(),
        workers: args.jobs.unwrap_or(2),
        queue_cap: args.queue_cap.unwrap_or(16),
        record_trace: args.obs.is_some(),
        lanes: args.run.lanes.max(1),
        opts,
        disk,
        storage_faults,
        ..ServeConfig::default()
    };
    let workers = cfg.workers;
    let queue_cap = cfg.queue_cap;
    let chaos = cfg.storage_faults.is_some();
    let disk_dir = cfg.disk.as_ref().map(|d| d.dir.clone());
    let server = Server::start(cfg).map_err(|e| HarnessError::Failed(e.to_string()))?;
    if let Some(addr) = server.tcp_addr() {
        println!("serve: listening on {addr} ({workers} workers, queue {queue_cap})");
    }
    if let Some(dir) = disk_dir {
        println!(
            "serve: disk tier at {}{}",
            dir.display(),
            if chaos { " (storage chaos ON)" } else { "" }
        );
    }
    if let Some(path) = server.uds_path() {
        println!("serve: listening on {}", path.display());
    }
    let sigterm = install_sigterm_drain();
    println!(
        "serve: EOF or `quit` on stdin{} drains and exits",
        if sigterm { " (or SIGTERM)" } else { "" }
    );

    // stdin is read on its own thread so the control loop can also poll
    // the SIGTERM flag; either source requests the same graceful drain.
    let (quit_tx, quit_rx) = std::sync::mpsc::channel::<()>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(l) if l.trim() == "quit" => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
        // EOF, `quit`, or a read error — all mean drain. A closed channel
        // (the server already shut down) is fine to ignore.
        let _ = quit_tx.send(());
    });
    loop {
        if drain_requested() {
            eprintln!("serve: SIGTERM — draining");
            break;
        }
        match quit_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
        }
    }

    let report = server.shutdown();
    eprintln!(
        "serve: drained — {} request(s), cache {}/{} hit+coalesced/miss",
        report.metrics.counter("serve_requests").unwrap_or(0),
        report.cache.hits + report.cache.coalesced,
        report.cache.misses,
    );
    if let Some(dir) = &args.obs {
        std::fs::create_dir_all(dir).map_err(|e| HarnessError::Io {
            path: dir.clone(),
            source: e,
        })?;
        let path = dir.join("serve.trace.json");
        let json = report.trace_json.as_deref().unwrap_or("{}");
        std::fs::write(&path, json).map_err(|e| HarnessError::Io {
            path: path.clone(),
            source: e,
        })?;
        println!("serve: wrote {}", path.display());
    }
    if let Some(out) = &args.out {
        let json = metrics_json(&report.metrics, &LoadReport::default());
        std::fs::write(out, json).map_err(|e| HarnessError::Io {
            path: out.clone(),
            source: e,
        })?;
        println!("serve: wrote {}", out.display());
    }
    Ok(())
}
