//! Regenerates Figure 12: the disaggregated two-node machine.
use warden_bench::figures::render_fig12_titled;
use warden_bench::{suite, SuiteScale};
use warden_pbbs::Bench;
use warden_sim::MachineConfig;

fn main() {
    let scale = SuiteScale::from_args();
    let machine = MachineConfig::disaggregated();
    let runs = suite(&Bench::DISAGGREGATED, scale.pbbs(), &machine);
    println!(
        "{}",
        render_fig12_titled(
            &runs,
            "Figure 12 (paper's subset): disaggregated machine (1 µs remote)"
        )
    );
    let ours = suite(&Bench::DISAGGREGATED_OURS, scale.pbbs(), &machine);
    println!(
        "{}",
        render_fig12_titled(
            &ours,
            "Figure 12 (this reproduction's most-promising subset, same selection rule)"
        )
    );
}
