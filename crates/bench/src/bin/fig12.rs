//! Regenerates Figure 12: the disaggregated two-node machine.
use warden_bench::figures::render_fig12_titled;
use warden_bench::{campaign_suite, harness_main, HarnessArgs, HarnessError};
use warden_pbbs::Bench;
use warden_sim::MachineConfig;

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    let cfg = args.campaign_config();
    let machine = MachineConfig::disaggregated();
    let scale = args.scale.pbbs();
    let opts = args.sim_options();
    let runs = campaign_suite(&Bench::DISAGGREGATED, scale, &machine, &opts, &cfg)?;
    println!(
        "{}",
        render_fig12_titled(
            &runs,
            "Figure 12 (paper's subset): disaggregated machine (1 µs remote)"
        )
    );
    // Cells shared between the two subsets were just recorded by the first
    // suite, so the campaign reuses them instead of simulating twice.
    let ours = campaign_suite(&Bench::DISAGGREGATED_OURS, scale, &machine, &opts, &cfg)?;
    println!(
        "{}",
        render_fig12_titled(
            &ours,
            "Figure 12 (this reproduction's most-promising subset, same selection rule)"
        )
    );
    Ok(())
}
