//! Prints the workload shape of every benchmark trace: event mix, footprint,
//! sharing fraction, and Brent parallelism — the §7.1 "evaluation
//! methodology" view of the suite.

use warden_bench::fmt::table;
use warden_bench::{harness_main, HarnessArgs, HarnessError};
use warden_pbbs::Bench;
use warden_rt::summarize;

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    let mut rows = Vec::new();
    for bench in Bench::ALL {
        eprint!("  {:<14}\r", bench.name());
        let p = bench.build(args.scale.pbbs());
        let s = summarize(&p);
        rows.push(vec![
            bench.name().to_string(),
            s.tasks.to_string(),
            format!("{}", s.max_depth),
            s.instructions.to_string(),
            format!("{:.1}", s.parallelism()),
            (s.loads + s.stores + s.rmws).to_string(),
            format!("{:.1}%", 100.0 * s.sharing_fraction()),
            s.distinct_blocks.to_string(),
            format!(
                "{:.0}%",
                100.0 * p.stats.accesses_in_ward as f64 / p.stats.memory_accesses.max(1) as f64
            ),
        ]);
    }
    println!(
        "Benchmark workload shapes (phase-1 traces)\n\n{}",
        table(
            &[
                "benchmark",
                "tasks",
                "depth",
                "instructions",
                "parallelism",
                "mem accesses",
                "shared",
                "blocks",
                "in-WARD",
            ],
            &rows
        )
    );
    Ok(())
}
