//! Record a benchmark's trace to a file for later replay:
//!
//! ```console
//! $ cargo run -p warden-bench --release --bin record -- primes /tmp/primes.trace
//! $ cargo run -p warden-bench --release --bin replay -- /tmp/primes.trace
//! ```

use warden_bench::SuiteScale;
use warden_pbbs::Bench;
use warden_rt::trace_io;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (name, path) = match (args.get(1), args.get(2)) {
        (Some(n), Some(p)) => (n.clone(), p.clone()),
        _ => {
            eprintln!("usage: record <benchmark> <output-file> [--scale tiny]");
            eprintln!("benchmarks: {}", Bench::ALL.map(|b| b.name()).join(", "));
            std::process::exit(2);
        }
    };
    let Some(bench) = Bench::by_name(&name) else {
        eprintln!("unknown benchmark {name:?}");
        std::process::exit(2);
    };
    let scale = SuiteScale::from_args();
    let program = bench.build(scale.pbbs());
    let file = std::fs::File::create(&path).unwrap_or_else(|e| {
        eprintln!("cannot create {path:?}: {e}");
        std::process::exit(1);
    });
    let mut file = std::io::BufWriter::new(file);
    trace_io::write_trace(&mut file, &program).unwrap_or_else(|e| {
        eprintln!("cannot write trace to {path:?}: {e}");
        std::process::exit(1);
    });
    println!(
        "recorded {} ({} tasks, {} events) to {path}",
        program.name,
        program.tasks.len(),
        program.stats.events
    );
}
