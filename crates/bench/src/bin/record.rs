//! Record a benchmark's trace to a file for later replay:
//!
//! ```console
//! $ cargo run -p warden-bench --release --bin record -- primes /tmp/primes.trace
//! $ cargo run -p warden-bench --release --bin replay -- /tmp/primes.trace
//! ```

use warden_bench::{harness_main, HarnessArgs, HarnessError};
use warden_pbbs::Bench;
use warden_rt::trace_io;

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    let [name, path] = args.positional.as_slice() else {
        return Err(HarnessError::Args(format!(
            "usage: record <benchmark> <output-file> [--scale tiny]\nbenchmarks: {}",
            Bench::ALL.map(|b| b.name()).join(", ")
        )));
    };
    let Some(bench) = Bench::by_name(name) else {
        return Err(HarnessError::Args(format!("unknown benchmark {name:?}")));
    };
    let program = bench.build(args.scale.pbbs());
    let io_err = |e| HarnessError::Io {
        path: path.into(),
        source: e,
    };
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut file = std::io::BufWriter::new(file);
    trace_io::write_trace(&mut file, &program).map_err(io_err)?;
    println!(
        "recorded {} ({} tasks, {} events) to {path}",
        program.name,
        program.tasks.len(),
        program.stats.events
    );
    Ok(())
}
