//! Regenerates every table and figure in one run, printing paper-vs-measured
//! summaries. With `--markdown <path>` it also writes the report in the
//! EXPERIMENTS.md format. With `--campaign-dir <dir>` every simulation is
//! persisted as it finishes, so a killed run resumes from completed work.

//! With `--obs <dir>` one dual-socket benchmark is re-run with the
//! observability recorder on and its Perfetto trace + per-epoch activity
//! table are exported into the directory (see EXPERIMENTS.md for the
//! walkthrough).

use warden_bench::figures::*;
use warden_bench::fmt::f2;
use warden_bench::{
    campaign_suite, export_outcome, harness_main, paper, protocol_campaign, BenchRun, HarnessArgs,
    HarnessError,
};
use warden_coherence::ProtocolId;
use warden_pbbs::Bench;
use warden_sim::{mean, simulate_with_options, MachineConfig, SimOptions};

fn mean_of(runs: &[BenchRun], f: impl Fn(&warden_sim::Comparison) -> f64) -> f64 {
    let cmps: Vec<_> = runs.iter().map(|r| r.cmp.clone()).collect();
    mean(&cmps, f)
}

fn main() {
    harness_main(run);
}

fn run() -> Result<(), HarnessError> {
    let args = HarnessArgs::parse()?;
    let cfg = args.campaign_config();
    let scale = args.scale.pbbs();
    // Observability is exported from one dedicated instrumented run (below)
    // rather than recorded on all ~60 campaign runs, which would bloat the
    // durable records with per-event timelines.
    let opts = SimOptions {
        obs: false,
        ..args.sim_options()
    };
    let t0 = std::time::Instant::now();

    eprintln!("Table 1 (ping-pong validation)…");
    let dual = MachineConfig::dual_socket();
    let table1_txt = render_table1(&dual, 10_000);
    let table2_txt = render_table2(&dual);

    eprintln!("Figure 7 (single socket)…");
    let single_runs = campaign_suite(
        &Bench::ALL,
        scale,
        &MachineConfig::single_socket(),
        &opts,
        &cfg,
    )?;
    let fig7_txt = render_fig7(&single_runs);

    eprintln!("Figures 8–11 (dual socket)…");
    let dual_runs = campaign_suite(&Bench::ALL, scale, &dual, &opts, &cfg)?;
    let fig8_txt = render_fig8(&dual_runs);
    let fig9_txt = render_fig9(&dual_runs);
    let fig10_txt = render_fig10(&dual_runs);
    let fig11_txt = render_fig11(&dual_runs);

    eprintln!("Figure 12 (disaggregated)…");
    let disagg = MachineConfig::disaggregated();
    let disagg_runs = campaign_suite(&Bench::DISAGGREGATED, scale, &disagg, &opts, &cfg)?;
    let fig12_txt = render_fig12_titled(
        &disagg_runs,
        "Figure 12 (paper's subset): disaggregated machine (1 µs remote)",
    );
    let disagg_ours = campaign_suite(&Bench::DISAGGREGATED_OURS, scale, &disagg, &opts, &cfg)?;
    let fig12b_txt = render_fig12_titled(
        &disagg_ours,
        "Figure 12 (this reproduction's most-promising subset, same selection rule)",
    );

    eprintln!("Protocol zoo (dual socket, every registered protocol)…");
    let zoo_protocols = args
        .protocols
        .clone()
        .unwrap_or_else(|| ProtocolId::ALL.to_vec());
    let zoo_runs = protocol_campaign(&Bench::ALL, scale, &dual, &zoo_protocols, &opts, &cfg)?;
    let zoo_txt = render_protocol_zoo(&zoo_runs, &zoo_protocols);

    let area_txt = render_area();

    let all = [
        &table1_txt,
        &table2_txt,
        &fig7_txt,
        &fig8_txt,
        &fig9_txt,
        &fig10_txt,
        &fig11_txt,
        &fig12_txt,
        &fig12b_txt,
        &zoo_txt,
        &area_txt,
    ];
    for section in all {
        println!("{section}\n");
    }

    // Headline paper-vs-measured summary.
    let summary = format!(
        "Headline paper-vs-measured summary\n\
         -----------------------------------\n\
         single-socket mean speedup:   paper {}x, measured {}x\n\
         dual-socket mean speedup:     paper {}x, measured {}x\n\
         dual interconnect savings:    paper {}%, measured {}%\n\
         dual total energy savings:    paper {}%, measured {}%\n\
         disaggregated mean speedup:   paper {}x, measured {}x\n",
        paper::FIG7_MEAN_SPEEDUP,
        f2(mean_of(&single_runs, |c| c.speedup)),
        paper::FIG8_MEAN_SPEEDUP,
        f2(mean_of(&dual_runs, |c| c.speedup)),
        paper::FIG8_MEAN_INTERCONNECT_ENERGY,
        f2(mean_of(&dual_runs, |c| c.interconnect_energy_savings_pct)),
        paper::FIG8_MEAN_TOTAL_ENERGY,
        f2(mean_of(&dual_runs, |c| c.total_energy_savings_pct)),
        paper::FIG12_MEAN_SPEEDUP,
        f2(mean_of(&disagg_ours, |c| c.speedup)),
    );
    println!("{summary}");

    if let Some(dir) = &args.obs {
        eprintln!("Observability export (suffix-array, dual socket)…");
        let obs_opts = SimOptions {
            obs: true,
            ..args.sim_options()
        };
        let program = Bench::SuffixArray.build(scale);
        for proto in [ProtocolId::Mesi, ProtocolId::Warden] {
            let out = simulate_with_options(&program, &dual, proto, &obs_opts);
            for p in export_outcome(dir, &program.name, &out)? {
                eprintln!("wrote {}", p.display());
            }
        }
    }
    eprintln!("total wall time {:?}", t0.elapsed());

    if let Some(path) = &args.markdown {
        let mut md = String::new();
        md.push_str("<!-- Generated by `cargo run -p warden-bench --release --bin all_figures -- --markdown EXPERIMENTS.md` -->\n\n");
        md.push_str("# EXPERIMENTS — paper vs. measured\n\n");
        md.push_str("All results measured on this repository's simulator (deterministic;\n");
        md.push_str("re-running the command reproduces them exactly). See DESIGN.md for the\n");
        md.push_str("substitutions relative to the paper's Sniper/MPL setup.\n\n");
        md.push_str("```text\n");
        md.push_str(&summary);
        md.push_str("```\n");
        for (title, body) in [
            ("Table 1", &table1_txt),
            ("Table 2", &table2_txt),
            ("Figure 7", &fig7_txt),
            ("Figure 8", &fig8_txt),
            ("Figure 9", &fig9_txt),
            ("Figure 10", &fig10_txt),
            ("Figure 11", &fig11_txt),
            ("Figure 12 — paper's subset", &fig12_txt),
            ("Figure 12 — this reproduction's subset", &fig12b_txt),
            ("Hardware cost (§6.1)", &area_txt),
        ] {
            md.push_str(&format!("\n## {title}\n\n```text\n{body}\n```\n"));
        }
        md.push_str(FIDELITY_ANALYSIS);
        md.push_str(CAMPAIGN_WALKTHROUGH);
        md.push_str(HOTPATH_NOTES);
        md.push_str(LANED_WALKTHROUGH);
        md.push_str(OBS_WALKTHROUGH);
        std::fs::write(path, md).map_err(|e| HarnessError::Io {
            path: path.clone(),
            source: e,
        })?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// The standing interpretation of the measured-vs-paper gaps, kept in the
/// generator so a regenerated EXPERIMENTS.md retains it.
const FIDELITY_ANALYSIS: &str = r#"
## Fidelity analysis — what matches, what does not, and why

### Reproduced faithfully

* **Table 1 ordering and magnitude.** Same-core ≪ same-socket ≪ cross-socket,
  with the two coherence-bound scenarios within ~10% of the paper's Sniper
  numbers (262 vs 286, 1252 vs 1214 cycles/iteration).
* **Transparency.** On every benchmark and on randomized property-test
  workloads, the WARDen machine produces byte-identical final memory to the
  MESI baseline — the paper's central safety claim, checked with real data
  in the caches.
* **The causal chain of Figure 9.** Speedup tracks the invalidation+downgrade
  reduction: the four benchmarks with the largest reductions (primes,
  make_array, suffix-array, msort, 13–128 events per kilo-instruction) are
  exactly the four with the largest speedups (1.37–1.84x), while benchmarks
  with reductions below ~2/k-instr sit at 0.99–1.05x.
* **Figure 10's downgrade dominance.** Most benchmarks' avoided events are
  downgrades (69–100%); `nqueens` measures 72.9% against the paper's 77.7%,
  and `ray` 71.4% against 86.4%. `primes` is invalidation-dominated (98.8%)
  — the benign-WAW storm — matching the paper's observation that store-side
  events are largely hidden by the store buffer, which is why primes'
  enormous reduction yields a (comparatively) modest speedup in both works.
* **Scaling with hardware (Figure 1's thesis).** Mean speedup grows
  single-socket (1.03x) → dual-socket (1.18x) → disaggregated (1.98x on the
  most-promising subset), and §6.1's area estimates reproduce analytically
  (7.9%, <0.05%).

### Known gaps, with causes

* **Magnitudes are smaller than the paper's** (dual 1.18x vs 1.46x mean).
  Two structural reasons. First, MPL heap-allocates *everything* — stack
  frames, closures, boxed intermediates — so nearly all traffic flows
  through WARD-markable leaf heaps ("90%+ of accesses" in §7.2); our
  benchmarks allocate arrays and task metadata but model scalar compute as
  register work, so the coherence-bound fraction of execution is lower.
  Second, our kernels read *preloaded* inputs (cold, as if from disk),
  whereas ML programs build input structures in the heap, giving the paper
  more cross-core heap flow to accelerate.
* **Interconnect-energy savings are near zero** (1.7% vs the paper's 52.9%).
  With seconds-scale inputs, the paper's W blocks are mostly evicted (and
  written back) naturally before their region ends — reconciliation touched
  ~1 block per 50k cycles — so region removal adds almost no traffic. Our
  scaled-down footprints fit in the caches, so reconciliation performs the
  write-backs that eviction would otherwise have done; the messages moved,
  the savings did not. (End-of-run cache drains are charged to both
  protocols to keep the comparison symmetric.)
* **Benchmark-by-benchmark ranking differs.** The paper's best performers
  (palindrome 2.1x, ray 1.75x) are compute/read-heavy in our ports and gain
  ~1.0x, while our best (make_array 1.57x, primes 1.84x) shine through
  result-flow flushing and benign-WAW elimination. Without the original ML
  sources, per-benchmark allocation behaviour cannot be matched exactly;
  Figure 12 therefore also reports the paper's own "most promising" selection
  rule applied to this reproduction.
* **Figure 11's `ray` anomaly (IPC drop despite speedup) does not reproduce**:
  it stems from busy-wait spin loops executing fewer cheap instructions when
  synchronization gets faster, and this simulator's join model is greedy
  (no spinning), so instruction counts barely change between protocols.
"#;

/// The interrupt/resume walkthrough appended to the generated report (kept
/// here for the same reason as the fidelity analysis).
const CAMPAIGN_WALKTHROUGH: &str = r#"
## Interrupting and resuming a campaign

Every figure binary routes its simulations through the campaign runner.
Without flags the campaign state lives in a per-process temp directory
(supervision without durability); pass `--campaign-dir <dir>` to make the
run crash-safe:

```console
$ cargo run -p warden-bench --release --bin fig8 -- --scale tiny --campaign-dir /tmp/fig8.campaign
campaign: 28 run(s), 0 reused from records, 28 to execute (4 worker(s))
  [done] dual-socket/tiny/bfs/mesi (attempt 1)
  ...
^C                                   # or kill -9, an OOM kill, a power cut
```

Re-running the *same command* resumes instead of restarting:

```console
$ cargo run -p warden-bench --release --bin fig8 -- --scale tiny --campaign-dir /tmp/fig8.campaign
campaign: 28 run(s), 17 reused from records, 11 to execute (4 worker(s))
  [resume] dual-socket/tiny/primes/warden from step 1500000
  ...
```

Completed runs load from their checksummed result records; the runs that
were mid-flight when the process died continue from their latest engine
checkpoint rather than from step zero. The final report is bit-identical to
an uninterrupted run — `ci.sh smoke` enforces exactly this, with `kill -9`.

Inside the campaign directory:

* `records/<run>.rec` — one checksummed, atomically-written result record
  per completed run, embedding the run's identity fingerprint (workload,
  machine, protocol, simulator options). Records are the source of truth
  for resume; a record that fails verification or no longer matches its
  spec is silently re-simulated.
* `ckpt/<run>/current.ckpt`, `prev.ckpt` — double-buffered mid-run engine
  snapshots for in-flight runs (cleared when the run completes).
* `manifest.json` — the human-readable progress ledger, rewritten
  atomically after every completion. It is *derived* state: resume never
  parses it, so a torn manifest cannot corrupt anything.

Supervision knobs (all binaries): `--jobs <n>` worker threads,
`--deadline-ms <ms>` per-run watchdog deadline (an expired run is
checkpointed, cancelled, and retried — long runs can finish across
deadline slices), `--retries <n>` attempts beyond the first (panics are
caught and retried with exponential backoff), `--quiet` to silence
progress lines.
"#;

/// The hot-path throughput notes appended to the generated report (kept
/// here for the same reason as the fidelity analysis).
const HOTPATH_NOTES: &str = r#"
## Hot-path replay throughput (`BENCH_hotpath.json`)

Not a paper figure: this tracks the *simulator's own* speed, so layout
regressions in the replay loop are caught rather than silently eaten by
longer campaign wall times. The committed `BENCH_hotpath.json` records
replay throughput on five paper kernels (`fib`, `msort`, `dedup`,
`suffix-array`, `nqueens` — this pbbs port has no `bfs`) under MESI and
WARDen on the dual-socket 8-core machine.

Regenerate it in two steps. First capture a baseline from the build you
want to compare against (e.g. the previous commit):

```console
$ cargo run -q --release -p warden-bench --bin bench_baseline -- \
      --scale paper --runs 15 --out /tmp/hotpath_before.json
```

then measure the current build against it:

```console
$ cargo run -q --release -p warden-bench --bin bench_baseline -- \
      --scale paper --runs 15 --baseline /tmp/hotpath_before.json \
      --out BENCH_hotpath.json
fib      mesi           4124081       41540340     2.87x
...
```

Each sample is the **median** wall time of `--runs` replays of a trace
built once outside the timed region; `events_per_sec` is the replay
throughput and `"speedup"` holds the per-(kernel, protocol) ratio of
current over baseline throughput. Medians plus back-to-back measurement
of both builds keep the numbers honest on a noisy box.

The committed report was captured with the lane engine merged (DESIGN.md
§7j); its `"baseline"` section holds the pre-lanes build's numbers. The
recorded ratios (0.71–1.08x) overstate the delta: an interleaved A/B of
the two builds on the same box measured parity within the noise floor
(best-of-3 ratios 0.87–1.03x, mixed directions — the sequential path
with `--lanes 1` compiles to the same loop as before), but the box's
run-to-run spread of *identical* builds had grown to as much as 1.37x
by capture time (it was ~±5% when the PR 4 baseline was recorded), so
same-session medians drift. Two consequences, both visible in the
committed artifacts: each committed cell is the per-cell **minimum** of
three back-to-back captures (a peak-window baseline fails honest later
runs), and the release-mode guard in
`crates/bench/tests/bench_guard.rs` holds both the sequential and the
4-lane throughput on the guarded kernels to a floor of 80% of the
committed numbers (best-of-5 attempts with backoff) — calibrated to
catch the structural regressions it exists for (obs costing when
disabled, lane bookkeeping leaking into the sequential path, a §7e-size
layout regression — all ≥1.5x effects) rather than to flag weather.

`ci.sh bench` smoke-runs the criterion suite (`--bench hotpath -- --test`)
and emits a tiny-scale `BENCH_hotpath_ci.json` artifact on every CI run;
`cargo bench -p warden-bench --bench hotpath` gives the full criterion
timings (region CAM, directory masks, page table, end-to-end replay, and
a per-kernel lane sweep under `hotpath/replay_lanes/`).
"#;

/// The laned-replay walkthrough appended to the generated report (kept
/// here for the same reason as the fidelity analysis).
const LANED_WALKTHROUGH: &str = r#"
## Laned replay (`--lanes <n>`)

Every replay-shaped harness (`replay`, `all_figures`, the figure
binaries, `serve`/`loadgen` on the server side) accepts `--lanes <n>`:
the engine shards core selection into `n` per-socket event lanes merged
in canonical `(clock, core, seq)` order — an execution-strategy knob,
never a result knob (DESIGN.md §7j). To see it end to end:

```console
$ cargo run -q --release -p warden-bench --bin record -- msort /tmp/msort.trace --scale tiny
$ cargo run -q --release -p warden-bench --bin replay -- /tmp/msort.trace dual-socket --check
$ cargo run -q --release -p warden-bench --bin replay -- /tmp/msort.trace dual-socket --check --lanes 4
```

The two replays print identical cycle counts, speedups and checker
verdicts — only wall time may differ. Lane identity is CI-gated:
`./ci.sh lanes` runs the full campaign (every kernel, both protocols,
invariant checker on) at `--lanes 1` and `--lanes 4` and requires the
reports and all ~72 result records to be byte-identical. The lane count
is deliberately excluded from the campaign/checkpoint options
fingerprint, so records and checkpoints written at one lane count
resume and verify at any other (`tests/lane_determinism.rs` pins this,
plus lane-count invariance over random proptest traces). The committed
`BENCH_hotpath.json` tracks 4-lane throughput in its `"laned"` section:
fib gains (~1.3x in interleaved runs; selection-bound — the laned pick
replaces the per-event O(ncores) clock scan with an incremental
O(cores/lane + lanes) merge) while coherence-bound kernels pay the lane
bookkeeping (a `classify_private` peek per access), measuring 6–26%
below sequential — the honest cost, tracked per kernel. Threaded lane
execution — actual parallel wall-clock speedup — is a roadmap item
gated on the zero-lookahead analysis in DESIGN.md §7j.
"#;

/// The Perfetto walkthrough appended to the generated report (kept here
/// for the same reason as the fidelity analysis).
const OBS_WALKTHROUGH: &str = r#"
## Reading a reconciliation timeline in Perfetto

Every simulation can record a protocol-event timeline (`--obs <dir>` on
`replay` and `all_figures`; recording is passive, so the reported stats
are bit-identical either way). The export is Chrome trace-event JSON:

```console
$ cargo run -p warden-bench --release --bin all_figures -- --scale tiny --obs obs.out
$ cargo run -p warden-bench --release --bin obs_lint -- obs.out/suffix_array-warden.trace.json
obs.out/suffix_array-warden.trace.json: ok — 3463 events (314 slices, 3115 instants, 8 counter samples, 26 metadata)
```

Open <https://ui.perfetto.dev> → *Open trace file* →
`suffix_array-warden.trace.json` (timestamps are simulated cycles,
displayed as µs). Three kinds of tracks appear:

* **One track per core** (`core 0` … `core 23`): an instant per protocol
  event — GetS/GetM misses, WardEntrySync snapshots, RmwEscape atomics,
  per-block Reconcile merges, evictions. Click any event for its
  arguments (block address, directory state found, holder/writeback/drop
  counts).
* **`ward regions`**: one slice per WARD region from Add-Region to
  Remove-Region, with its id and how many dirty blocks its closing walk
  visited. On the dual-socket `suffix_array` run this track shows the
  suite's characteristic rhythm: 314 short-lived leaf-heap regions (mean
  lifetime ~500 cycles) opening and closing in waves that follow the
  merge tree.
* **`protocol activity`**: a per-epoch (2^14 cycles) counter track of
  events / misses / reconciles, the zoomed-out view of the same story.

The reconciliation picture to look for: `Reconcile` instants cluster at
the *end* of each `ward regions` slice (the Remove-Region walk), and the
companion `suffix_array-warden.epochs.txt` shows the walks are almost all
tiny — `recon_walk_blocks n=314 mean=2.0 max=17`, i.e. most blocks a
region wrote were already evicted (and written back) before the region
ended, so reconciliation merges the few survivors. The MESI trace of the
same program (`suffix_array-mesi.trace.json`) has no region track and no
Reconcile events, and its `miss_latency_cycles` histogram sits ~21%
higher (mean 489 vs 402 cycles) — the invalidation/downgrade round
trips WARDen's W state suppresses.

A dropped-event count (`timeline.dropped` in the epochs file, also a
counter in the trace) is always present: the timeline is capped at 1M
events per run, so a truncated export says so instead of lying by
omission.
"#;
