//! Renderers for each table/figure, shared by the per-figure binaries and
//! `all_figures`.

use crate::campaign::ProtocolRun;
use crate::fmt::{bar, f2, pct, table};
use crate::paper;
use crate::runner::BenchRun;
use warden_cacti::{CacheBitBudget, RegionCam};
use warden_coherence::ProtocolId;
use warden_sim::{mean, table1, MachineConfig};

/// Table 1: simulator latency validation.
pub fn render_table1(machine: &MachineConfig, iterations: u64) -> String {
    let rows: Vec<Vec<String>> = table1(machine, iterations)
        .into_iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                f2(r.paper_real_hw),
                f2(r.paper_sniper),
                f2(r.measured),
            ]
        })
        .collect();
    format!(
        "Table 1: true-sharing ping-pong latency (cycles/iteration)\n\n{}",
        table(
            &[
                "Scenario",
                "Paper real HW",
                "Paper Sniper",
                "This simulator"
            ],
            &rows
        )
    )
}

/// Table 2: simulated system specification.
pub fn render_table2(machine: &MachineConfig) -> String {
    let rows = vec![
        vec!["L1 size".into(), "32 KB".into()],
        vec!["L2 size".into(), "256 KB".into()],
        vec!["L3 size (per core)".into(), "2.5 MB".into()],
        vec!["Cache block size".into(), "64 B".into()],
        vec!["L1/L2 associativity".into(), "8".into()],
        vec!["L3 associativity".into(), "20".into()],
        vec![
            "L1/L2/L3 latencies".into(),
            format!(
                "{}-{}-{} cycles",
                machine.lat.l1, machine.lat.l2, machine.lat.l3
            ),
        ],
        vec!["Frequency".into(), "3.3 GHz".into()],
        vec![
            "Cores per socket".into(),
            machine.topo.cores_per_socket().to_string(),
        ],
        vec!["Sockets".into(), machine.topo.num_sockets().to_string()],
        vec![
            "Intersocket latency".into(),
            format!("{} cycles", machine.lat.intersocket),
        ],
    ];
    format!(
        "Table 2: simulated system specification ({})\n\n{}",
        machine.name,
        table(&["Parameter", "Value"], &rows)
    )
}

fn speedup_energy_figure(title: &str, runs: &[BenchRun], paper_means: (f64, f64, f64)) -> String {
    let mut rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.bench.name().to_string(),
                f2(r.cmp.speedup),
                bar(r.cmp.speedup, 2.2, 24),
                pct(r.cmp.interconnect_energy_savings_pct),
                pct(r.cmp.total_energy_savings_pct),
            ]
        })
        .collect();
    let mean_speedup = mean(
        &runs.iter().map(|r| r.cmp.clone()).collect::<Vec<_>>(),
        |c| c.speedup,
    );
    let mean_int = mean(
        &runs.iter().map(|r| r.cmp.clone()).collect::<Vec<_>>(),
        |c| c.interconnect_energy_savings_pct,
    );
    let mean_tot = mean(
        &runs.iter().map(|r| r.cmp.clone()).collect::<Vec<_>>(),
        |c| c.total_energy_savings_pct,
    );
    rows.push(vec![
        "MEAN".into(),
        f2(mean_speedup),
        bar(mean_speedup, 2.2, 24),
        pct(mean_int),
        pct(mean_tot),
    ]);
    let (p_speed, p_int, p_tot) = paper_means;
    format!(
        "{title}\n\n{}\nPaper means: speedup {p_speed}x, interconnect energy {p_int}%, total processor energy {p_tot}%\n",
        table(
            &["Benchmark", "Speedup", "", "Interconnect savings", "Total savings"],
            &rows
        )
    )
}

/// Figure 7: single-socket performance and energy.
pub fn render_fig7(runs: &[BenchRun]) -> String {
    speedup_energy_figure(
        "Figure 7: performance and energy gains on single socket",
        runs,
        (
            paper::FIG7_MEAN_SPEEDUP,
            paper::FIG7_MEAN_INTERCONNECT_ENERGY,
            paper::FIG7_MEAN_TOTAL_ENERGY,
        ),
    )
}

/// Figure 8: dual-socket performance and energy.
pub fn render_fig8(runs: &[BenchRun]) -> String {
    speedup_energy_figure(
        "Figure 8: performance and energy gains on dual socket",
        runs,
        (
            paper::FIG8_MEAN_SPEEDUP,
            paper::FIG8_MEAN_INTERCONNECT_ENERGY,
            paper::FIG8_MEAN_TOTAL_ENERGY,
        ),
    )
}

/// Figure 9: speedup vs invalidation+downgrade reduction (dual socket).
pub fn render_fig9(runs: &[BenchRun]) -> String {
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.bench.name().to_string(),
                f2(r.cmp.inv_dg_reduced_per_kilo),
                bar(r.cmp.inv_dg_reduced_per_kilo, 60.0, 20),
                f2(r.cmp.speedup),
                format!("{:.0}%", 100.0 * r.cmp.ward_serve_fraction),
                f2(r.cmp.recon_blocks_per_mcycle / 1000.0 * 50.0), // blocks per 50k cycles
            ]
        })
        .collect();
    format!(
        "Figure 9: dual-socket speedup with the reduction in invalidations and downgrades\n\n{}\n\
         (paper: positive correlation between reductions and speedup; §6.2 observes\n \
         ~1 reconciled block per 50k cycles at much larger input scales)\n",
        table(
            &[
                "Benchmark",
                "Inv+Down reduced /k-instr",
                "",
                "Speedup",
                "W-state serves",
                "Recon blocks /50k cyc",
            ],
            &rows
        )
    )
}

/// Figure 10: share of the reduction from downgrades vs invalidations.
pub fn render_fig10(runs: &[BenchRun]) -> String {
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let paper_dg = paper::fig10_downgrade_share(r.bench.name())
                .map(pct)
                .unwrap_or_else(|| "-".into());
            vec![
                r.bench.name().to_string(),
                pct(r.cmp.downgrade_share_pct),
                pct(r.cmp.invalidation_share_pct),
                paper_dg,
            ]
        })
        .collect();
    format!(
        "Figure 10: percent of the avoided events that were downgrades vs invalidations\n\n{}",
        table(
            &[
                "Benchmark",
                "Downgrade %",
                "Invalidation %",
                "Paper downgrade %"
            ],
            &rows
        )
    )
}

/// Figure 11: percentage IPC improvement.
pub fn render_fig11(runs: &[BenchRun]) -> String {
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.bench.name().to_string(),
                pct(r.cmp.ipc_improvement_pct),
                bar(r.cmp.ipc_improvement_pct.max(0.0), 80.0, 20),
            ]
        })
        .collect();
    format!(
        "Figure 11: percentage IPC improvement (dual socket)\n\n{}",
        table(&["Benchmark", "IPC improvement", ""], &rows)
    )
}

/// Figure 12: disaggregated machine (speedup + energy split).
pub fn render_fig12(runs: &[BenchRun]) -> String {
    render_fig12_titled(
        runs,
        "Figure 12: performance and energy gains on the disaggregated machine (1 µs remote)",
    )
}

/// [`render_fig12`] with an explicit title (used for the paper's subset and
/// for this reproduction's own most-promising subset).
pub fn render_fig12_titled(runs: &[BenchRun], title: &str) -> String {
    let mut rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.bench.name().to_string(),
                f2(r.cmp.speedup),
                bar(r.cmp.speedup, 8.0, 24),
                pct(r.cmp.in_processor_energy_savings_pct),
                pct(r.cmp.interconnect_energy_savings_pct),
                pct(r.cmp.total_energy_savings_pct),
            ]
        })
        .collect();
    let cmps: Vec<_> = runs.iter().map(|r| r.cmp.clone()).collect();
    rows.push(vec![
        "MEAN".into(),
        f2(mean(&cmps, |c| c.speedup)),
        bar(mean(&cmps, |c| c.speedup), 8.0, 24),
        pct(mean(&cmps, |c| c.in_processor_energy_savings_pct)),
        pct(mean(&cmps, |c| c.interconnect_energy_savings_pct)),
        pct(mean(&cmps, |c| c.total_energy_savings_pct)),
    ]);
    format!(
        "{title}\n\n{}\n\
         Paper means: speedup {}x, network energy {}%, processor energy {}%\n",
        table(
            &[
                "Benchmark",
                "Speedup",
                "",
                "In-processor savings",
                "Network savings",
                "Total savings"
            ],
            &rows
        ),
        paper::FIG12_MEAN_SPEEDUP,
        paper::FIG12_MEAN_NETWORK_ENERGY,
        paper::FIG12_MEAN_PROCESSOR_ENERGY,
    )
}

/// Protocol zoo: per-benchmark cycles for every requested protocol,
/// normalized to the first one (the reference, conventionally MESI). All
/// rows come from runs that already agreed on the final memory image.
pub fn render_protocol_zoo(runs: &[ProtocolRun], protocols: &[ProtocolId]) -> String {
    let mut headers: Vec<String> = vec!["Benchmark".into()];
    for &p in protocols {
        headers.push(format!("{p} cycles"));
    }
    for &p in &protocols[1..] {
        headers.push(format!("{p} vs {}", protocols[0]));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let mut row = vec![r.bench.name().to_string()];
            for o in &r.outcomes {
                row.push(o.stats.cycles.to_string());
            }
            let base = r.outcomes[0].stats.cycles.max(1) as f64;
            for o in &r.outcomes[1..] {
                row.push(format!("{}x", f2(base / o.stats.cycles.max(1) as f64)));
            }
            row
        })
        .collect();
    format!(
        "Protocol zoo: replay cycles across every registered protocol\n\n{}",
        table(&header_refs, &rows)
    )
}

/// The coherence atlas: per-machine cycle tables plus the cross-machine
/// win-region grid (which protocol is fastest for each sharing pattern at
/// each machine point).
pub fn render_coherence_atlas(atlas: &crate::atlas::Atlas) -> String {
    use std::collections::BTreeMap;
    let per_group = ProtocolId::ALL.len();
    let mut s = format!(
        "Coherence atlas: protocol win regions across the machine space (seed {})\n",
        atlas.seed
    );

    // One table per machine: patterns × protocol cycles, winner last.
    let mut machine_order: Vec<&str> = Vec::new();
    for group in atlas.cells.chunks(per_group) {
        let m = group[0].machine.as_str();
        if machine_order.last() != Some(&m) {
            machine_order.push(m);
        }
    }
    let mut headers: Vec<String> = vec!["Pattern".into()];
    for p in ProtocolId::ALL {
        headers.push(format!("{p} cycles"));
    }
    headers.push("winner".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    for machine in &machine_order {
        let rows: Vec<Vec<String>> = atlas
            .cells
            .chunks(per_group)
            .filter(|g| g[0].machine == *machine)
            .map(|g| {
                let mut row = vec![g[0].pattern.to_string()];
                for c in g {
                    row.push(c.cycles.to_string());
                }
                let best = g.iter().min_by_key(|c| c.cycles).expect("non-empty group");
                row.push(best.protocol.name().to_string());
                row
            })
            .collect();
        s.push_str(&format!("\n{machine}\n\n{}", table(&header_refs, &rows)));
    }

    // The win-region grid: rows = patterns, columns = machines.
    let mut wins: BTreeMap<(String, String), &'static str> = BTreeMap::new();
    for (machine, pattern, proto) in atlas.winners() {
        wins.insert((pattern.to_string(), machine.to_string()), proto.name());
    }
    let mut grid_headers: Vec<&str> = vec!["Pattern \\ Machine"];
    grid_headers.extend(machine_order.iter().copied());
    let patterns: Vec<String> = {
        let mut seen = Vec::new();
        for g in atlas.cells.chunks(per_group) {
            let p = g[0].pattern.to_string();
            if !seen.contains(&p) {
                seen.push(p);
            }
        }
        seen
    };
    let grid_rows: Vec<Vec<String>> = patterns
        .iter()
        .map(|p| {
            let mut row = vec![p.clone()];
            for m in &machine_order {
                row.push(
                    wins.get(&(p.clone(), (*m).to_string()))
                        .copied()
                        .unwrap_or("-")
                        .to_string(),
                );
            }
            row
        })
        .collect();
    s.push_str(&format!(
        "\nWin regions (fastest protocol per cell)\n\n{}",
        table(&grid_headers, &grid_rows)
    ));
    s
}

/// §6.1 hardware-cost estimates.
pub fn render_area() -> String {
    let sector = CacheBitBudget::llc_line().sectoring_overhead();
    let cam = RegionCam::paper().area_fraction_of(CacheBitBudget::total_chip_bits(12));
    let rows = vec![
        vec![
            "Byte sectoring (per cache)".into(),
            format!("{:.1}%", sector * 100.0),
            format!("{:.1}%", paper::AREA_SECTORING * 100.0),
        ],
        vec![
            "1024-entry region store (of chip caches)".into(),
            format!("{:.3}%", cam * 100.0),
            format!("< {:.2}%", paper::AREA_REGION_CAM_BOUND * 100.0),
        ],
    ];
    format!(
        "Hardware cost estimates (paper §6.1, CACTI-style)\n\n{}",
        table(&["Structure", "This model", "Paper"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_bench;
    use warden_pbbs::{Bench, Scale};

    #[test]
    fn renders_are_nonempty() {
        let m = MachineConfig::dual_socket().with_cores(2);
        assert!(render_table1(&m, 50).contains("Same core"));
        assert!(render_table2(&m).contains("L1 size"));
        assert!(render_area().contains("sectoring"));
        let runs = vec![run_bench(Bench::MakeArray, Scale::Tiny, &m)];
        for s in [
            render_fig7(&runs),
            render_fig8(&runs),
            render_fig9(&runs),
            render_fig10(&runs),
            render_fig11(&runs),
            render_fig12(&runs),
        ] {
            assert!(s.contains("make_array"), "{s}");
        }
    }
}
