//! Writing observability artifacts to disk.
//!
//! A run simulated with [`SimOptions::obs`](warden_sim::SimOptions) carries
//! an [`ObsReport`](warden_sim::ObsReport) in its outcome; this module turns
//! that report into files under the `--obs <dir>` directory:
//!
//! * `<label>-<protocol>.trace.json` — a Chrome trace-event timeline.
//!   Open it at <https://ui.perfetto.dev> (or `chrome://tracing`) to see
//!   per-core protocol events, WARD-region lifetime slices, and the
//!   per-epoch activity counter track, all on the simulated-cycle axis.
//! * `<label>-<protocol>.epochs.txt` — the event-count/histogram summary
//!   followed by the per-epoch activity table, for grepping without a UI.
//!
//! Every written trace round-trips through
//! [`warden_obs::validate_trace`] in this module's tests, and the
//! `obs_lint` binary re-validates exported files in CI.

use crate::error::HarnessError;
use std::path::{Path, PathBuf};
use warden_sim::SimOutcome;

fn write(path: &Path, text: &str) -> Result<(), HarnessError> {
    std::fs::write(path, text).map_err(|e| HarnessError::Io {
        path: path.into(),
        source: e,
    })
}

/// Export one observed outcome's trace + epoch summary into `dir`
/// (created if missing). Returns the paths written, trace first.
///
/// Fails with a typed error if the outcome carries no report — the caller
/// forgot to simulate with [`SimOptions::obs`](warden_sim::SimOptions).
pub fn export_outcome(
    dir: &Path,
    label: &str,
    outcome: &SimOutcome,
) -> Result<Vec<PathBuf>, HarnessError> {
    let Some(rep) = &outcome.obs else {
        return Err(HarnessError::Failed(format!(
            "{label}: outcome carries no observability report \
             (simulate with SimOptions::obs or pass --obs)"
        )));
    };
    std::fs::create_dir_all(dir).map_err(|e| HarnessError::Io {
        path: dir.into(),
        source: e,
    })?;
    let proto = format!("{:?}", outcome.protocol).to_lowercase();
    let stem = format!("{label}-{proto}");

    let trace_path = dir.join(format!("{stem}.trace.json"));
    write(
        &trace_path,
        &rep.trace_event_json(&format!("{label} ({proto})")),
    )?;

    let epochs_path = dir.join(format!("{stem}.epochs.txt"));
    let mut txt = rep.render_summary();
    txt.push('\n');
    txt.push_str(&rep.render_epochs());
    write(&epochs_path, &txt)?;

    Ok(vec![trace_path, epochs_path])
}

#[cfg(test)]
mod tests {
    use super::*;
    use warden_coherence::ProtocolId;
    use warden_pbbs::{Bench, Scale};
    use warden_sim::{simulate_with_options, MachineConfig, SimOptions};

    #[test]
    fn exports_are_wellformed_and_refuse_unobserved_runs() {
        let program = Bench::MakeArray.build(Scale::Tiny);
        let m = MachineConfig::dual_socket().with_cores(4);
        let opts = SimOptions {
            obs: true,
            ..SimOptions::default()
        };
        let out = simulate_with_options(&program, &m, ProtocolId::Warden, &opts);

        let dir = std::env::temp_dir().join(format!("warden-obs-export-{}", std::process::id()));
        let paths = export_outcome(&dir, "make_array", &out).expect("export succeeds");
        assert_eq!(paths.len(), 2);
        assert!(paths[0].ends_with("make_array-warden.trace.json"));
        assert!(paths[1].ends_with("make_array-warden.epochs.txt"));

        let trace = std::fs::read_to_string(&paths[0]).unwrap();
        let stats = warden_obs::validate_trace(&trace).expect("well-formed trace");
        assert!(stats.events > 0);
        let epochs = std::fs::read_to_string(&paths[1]).unwrap();
        assert!(epochs.contains("== event counts =="));

        let plain = simulate_with_options(&program, &m, ProtocolId::Warden, &SimOptions::default());
        assert!(export_outcome(&dir, "make_array", &plain).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
