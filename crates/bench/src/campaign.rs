//! The supervised benchmark campaign runner.
//!
//! The paper's evaluation sweeps benchmarks × protocols × machines; at
//! paper scale a single crash, panic or OOM used to lose the whole sweep
//! because nothing was persisted until a figure binary finished. This
//! module runs that matrix as a **campaign**: a queue of [`RunSpec`]s
//! executed by worker threads under a supervisor that
//!
//! * isolates panics with `catch_unwind` (one exploding run cannot take
//!   down the sweep),
//! * enforces a per-run wall-clock deadline via a watchdog thread that
//!   flags a cancellation token the run polls between step batches,
//! * retries failed runs with bounded exponential backoff — a run
//!   cancelled on deadline snapshots its engine first, so the retry
//!   *continues* from the checkpoint instead of starting over,
//! * persists every finished run as a checksummed record file and keeps a
//!   durable `manifest.json` of per-run status, both written atomically.
//!
//! # Crash safety and resume
//!
//! A campaign directory holds three kinds of state:
//!
//! ```text
//! <dir>/manifest.json      per-run status (derived, for humans and CI)
//! <dir>/records/<run>.rec  finished outcomes (framed + checksummed)
//! <dir>/ckpt/<run>/        mid-run engine checkpoints (two rotating slots)
//! ```
//!
//! The checksummed record files are the source of truth: on startup the
//! campaign re-validates each one (frame checksum **and** an embedded
//! fingerprint of the run's program/machine/protocol/options identity) and
//! only skips runs whose records verify. `manifest.json` is derived state,
//! rewritten atomically after every completion — a torn manifest can never
//! corrupt a resume, and a `kill -9` at any instant loses at most the runs
//! in flight, which themselves resume from their newest engine checkpoint.

use crate::error::{HarnessError, RunFailure};
use crate::runner::BenchRun;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use warden_coherence::ProtocolId;
use warden_pbbs::{Bench, Scale};
use warden_rt::TraceProgram;
use warden_sim::checkpoint::{self, options_fingerprint, CheckpointError, CheckpointStore};
use warden_sim::{Comparison, MachineConfig, SimEngine, SimOptions, SimOutcome};

use warden_mem::codec::{fnv1a64, Decoder, Encoder};

/// What one campaign run simulates: a PBBS benchmark at a scale, or an
/// arbitrary trace builder (the ablations' custom programs).
#[derive(Clone)]
pub struct Workload {
    token: String,
    builder: Builder,
}

#[derive(Clone)]
enum Builder {
    Bench(Bench, Scale),
    Custom(Arc<dyn Fn() -> TraceProgram + Send + Sync>),
}

impl Workload {
    /// A PBBS suite benchmark at the given scale.
    pub fn bench(bench: Bench, scale: Scale) -> Workload {
        Workload {
            token: format!("bench:{}:{scale:?}", bench.name()),
            builder: Builder::Bench(bench, scale),
        }
    }

    /// An arbitrary trace builder. The `token` names the workload in run
    /// identities — two customs with the same token are assumed to build
    /// the same program.
    pub fn custom(
        token: impl Into<String>,
        build: impl Fn() -> TraceProgram + Send + Sync + 'static,
    ) -> Workload {
        Workload {
            token: format!("custom:{}", token.into()),
            builder: Builder::Custom(Arc::new(build)),
        }
    }

    /// The workload's identity token as embedded in run fingerprints
    /// (`bench:<name>:<scale>` or `custom:<token>`).
    pub fn token(&self) -> &str {
        &self.token
    }

    /// Build the trace program (potentially expensive).
    pub fn build(&self) -> TraceProgram {
        match &self.builder {
            Builder::Bench(b, scale) => b.build(*scale),
            Builder::Custom(f) => f(),
        }
    }
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Workload").field(&self.token).finish()
    }
}

/// One cell of the campaign matrix: a workload on a machine under a
/// protocol with simulator options.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Unique id within the campaign (also names the record file).
    pub id: String,
    /// What to simulate.
    pub workload: Workload,
    /// The machine description.
    pub machine: MachineConfig,
    /// The coherence protocol.
    pub protocol: ProtocolId,
    /// Simulator options (energy model, checker, fault plan).
    pub opts: SimOptions,
}

fn protocol_name(p: ProtocolId) -> &'static str {
    p.name()
}

impl RunSpec {
    /// Fingerprint binding a result record to this spec's identity: the id,
    /// workload token, machine fingerprint, protocol and options
    /// fingerprint. A record whose fingerprint differs is ignored on
    /// resume, so changing any input re-runs the cell.
    pub fn fingerprint(&self) -> u64 {
        let mut enc = Encoder::new();
        enc.put_str(&self.id);
        enc.put_str(&self.workload.token);
        enc.put_u64(self.machine.fingerprint());
        enc.put_str(protocol_name(self.protocol));
        enc.put_u64(options_fingerprint(&self.opts));
        fnv1a64(enc.bytes())
    }

    /// Filesystem-safe name derived from the id.
    fn slug(&self) -> String {
        self.id
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '-'
                }
            })
            .collect()
    }
}

/// Supervisor policy for one campaign invocation.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Campaign state directory (manifest, records, checkpoints).
    pub dir: PathBuf,
    /// Worker threads executing runs.
    pub workers: usize,
    /// Per-run wall-clock deadline enforced by the watchdog.
    pub deadline: Duration,
    /// Retries per run beyond the first attempt.
    pub retries: u32,
    /// Base backoff between attempts (doubled each retry, capped).
    pub backoff: Duration,
    /// Engine steps between mid-run checkpoints (the cancellation token is
    /// polled on the same cadence).
    pub checkpoint_every_steps: u64,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
    /// Test hook: panic the first N attempts of every run (chaos monkey).
    #[doc(hidden)]
    pub chaos_panic_attempts: u32,
    /// Test hook: stop the supervisor after this many completions in this
    /// invocation, leaving the rest queued (simulates a mid-campaign kill).
    #[doc(hidden)]
    pub abort_after_runs: Option<usize>,
}

impl CampaignConfig {
    /// A durable campaign rooted at `dir`, with default supervision policy:
    /// up to 4 workers, a 24 h per-run deadline, 2 retries with 50 ms base
    /// backoff, and a checkpoint every 2 M engine steps.
    pub fn new(dir: impl Into<PathBuf>) -> CampaignConfig {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(1);
        CampaignConfig {
            dir: dir.into(),
            workers,
            deadline: Duration::from_secs(24 * 3600),
            retries: 2,
            backoff: Duration::from_millis(50),
            checkpoint_every_steps: 2_000_000,
            quiet: false,
            chaos_panic_attempts: 0,
            abort_after_runs: None,
        }
    }

    /// A campaign in a per-process directory under the system temp dir,
    /// wiped at creation so stale state never carries over. Used when no
    /// `--campaign-dir` is given: the binaries still get supervision
    /// (isolation, deadlines, retries) without durable resume.
    pub fn ephemeral() -> CampaignConfig {
        let dir = std::env::temp_dir().join(format!("warden-campaign-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CampaignConfig::new(dir)
    }
}

/// One finished run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The spec's id.
    pub id: String,
    /// The simulation outcome.
    pub outcome: SimOutcome,
    /// Attempts made in this invocation (0 when `reused`).
    pub attempts: u32,
    /// True when the outcome was loaded from a prior invocation's record
    /// instead of being simulated again.
    pub reused: bool,
}

// ---------------------------------------------------------------------------
// Durable result records.

fn encode_record(fingerprint: u64, id: &str, out: &SimOutcome) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u64(fingerprint);
    enc.put_str(id);
    enc.put_bytes(&checkpoint::encode_outcome(out));
    checkpoint::frame(enc.bytes())
}

fn decode_record(bytes: &[u8], fingerprint: u64, id: &str) -> Option<SimOutcome> {
    let payload = checkpoint::unframe(bytes).ok()?;
    let mut dec = Decoder::new(payload);
    if dec.take_u64().ok()? != fingerprint || dec.take_str().ok()? != id {
        return None;
    }
    let inner = dec.take_bytes().ok()?.to_vec();
    dec.finish().ok()?;
    checkpoint::decode_outcome(&inner).ok()
}

// ---------------------------------------------------------------------------
// The manifest.

#[derive(Clone)]
struct ManifestEntry {
    status: &'static str,
    attempts: u32,
    record: String,
    note: String,
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_manifest(entries: &BTreeMap<String, ManifestEntry>) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n  \"runs\": [\n");
    let last = entries.len().saturating_sub(1);
    for (i, (id, e)) in entries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"id\": {}, \"status\": \"{}\", \"attempts\": {}, \"record\": {}, \
             \"note\": {}}}{}\n",
            json_str(id),
            e.status,
            e.attempts,
            json_str(&e.record),
            json_str(&e.note),
            if i == last { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

// ---------------------------------------------------------------------------
// The supervisor.

struct WatchEntry {
    deadline: Instant,
    cancel: Arc<AtomicBool>,
}

struct Shared<'a> {
    specs: &'a [RunSpec],
    cfg: &'a CampaignConfig,
    records_dir: PathBuf,
    queue: Mutex<VecDeque<usize>>,
    slots: Mutex<Vec<Option<RunResult>>>,
    manifest: Mutex<BTreeMap<String, ManifestEntry>>,
    watch: Mutex<Vec<WatchEntry>>,
    failures: Mutex<Vec<RunFailure>>,
    completed: AtomicUsize,
    aborted: AtomicBool,
    stop_watchdog: AtomicBool,
}

impl Shared<'_> {
    fn write_manifest(&self) {
        let rendered = {
            let entries = self.manifest.lock().expect("manifest lock");
            render_manifest(&entries)
        };
        // Manifest persistence is best-effort derived state; the record
        // files are authoritative, so a failed write must not fail the run
        // that just completed.
        if let Err(e) =
            checkpoint::write_atomic(&self.cfg.dir.join("manifest.json"), rendered.as_bytes())
        {
            if !self.cfg.quiet {
                eprintln!("  [warn] cannot write manifest: {e}");
            }
        }
    }

    fn set_status(&self, id: &str, status: &'static str, attempts: u32, note: String) {
        if let Some(e) = self.manifest.lock().expect("manifest lock").get_mut(id) {
            e.status = status;
            e.attempts = attempts;
            e.note = note;
        }
        self.write_manifest();
    }
}

enum ExecError {
    Deadline,
    Checkpoint(CheckpointError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Deadline => write!(f, "deadline exceeded (progress checkpointed)"),
            ExecError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

/// Simulate one spec to completion, checkpointing every
/// `checkpoint_every_steps` and polling the cancellation token on the same
/// cadence. Resumes from the newest verifiable checkpoint in `store`; an
/// unreadable or identity-mismatched checkpoint falls back to a fresh start
/// (the safe choice — the engine replays deterministically).
fn execute(
    spec: &RunSpec,
    store: &CheckpointStore,
    every: u64,
    cancel: &AtomicBool,
    chaos_panic: bool,
    quiet: bool,
) -> Result<SimOutcome, ExecError> {
    if chaos_panic {
        panic!("chaos monkey: injected panic (test hook)");
    }
    let program = spec.workload.build();
    let mut eng =
        match SimEngine::try_resume(&program, &spec.machine, spec.protocol, &spec.opts, store) {
            Ok(Some(eng)) => {
                if !quiet {
                    eprintln!("  [resume] {} from step {}", spec.id, eng.steps());
                }
                eng
            }
            Ok(None) => SimEngine::new(&program, &spec.machine, spec.protocol, &spec.opts),
            Err(e) => {
                if !quiet {
                    eprintln!("  [warn] {}: discarding unusable checkpoint ({e})", spec.id);
                }
                SimEngine::new(&program, &spec.machine, spec.protocol, &spec.opts)
            }
        };
    let every = every.max(1);
    loop {
        let mut running = true;
        for _ in 0..every {
            if !eng.step() {
                running = false;
                break;
            }
        }
        if !running {
            break;
        }
        if cancel.load(Ordering::Relaxed) {
            // Persist progress so the retry continues instead of restarting.
            let _ = eng.try_snapshot(store);
            return Err(ExecError::Deadline);
        }
        eng.try_snapshot(store).map_err(ExecError::Checkpoint)?;
    }
    let out = eng.finish();
    let _ = store.clear();
    Ok(out)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn run_one(sh: &Shared<'_>, spec: &RunSpec) -> Result<(SimOutcome, u32), RunFailure> {
    let ckpt_dir = sh.cfg.dir.join("ckpt").join(spec.slug());
    let store = CheckpointStore::new(&ckpt_dir).map_err(|e| RunFailure {
        id: spec.id.clone(),
        attempts: 0,
        reason: format!("cannot open checkpoint store: {e}"),
    })?;
    let attempts = sh.cfg.retries + 1;
    for attempt in 1..=attempts {
        let chaos = attempt <= sh.cfg.chaos_panic_attempts;
        let cancel = Arc::new(AtomicBool::new(false));
        sh.watch.lock().expect("watch lock").push(WatchEntry {
            deadline: Instant::now() + sh.cfg.deadline,
            cancel: Arc::clone(&cancel),
        });
        let result = catch_unwind(AssertUnwindSafe(|| {
            execute(
                spec,
                &store,
                sh.cfg.checkpoint_every_steps,
                &cancel,
                chaos,
                sh.cfg.quiet,
            )
        }));
        sh.watch
            .lock()
            .expect("watch lock")
            .retain(|e| !Arc::ptr_eq(&e.cancel, &cancel));
        let reason = match result {
            Ok(Ok(out)) => return Ok((out, attempt)),
            Ok(Err(e)) => e.to_string(),
            Err(payload) => format!("panicked: {}", panic_message(payload.as_ref())),
        };
        if attempt < attempts {
            if !sh.cfg.quiet {
                eprintln!(
                    "  [retry] {} attempt {attempt}/{attempts} failed: {reason}",
                    spec.id
                );
            }
            let shift = (attempt - 1).min(6);
            std::thread::sleep(sh.cfg.backoff * (1u32 << shift));
        } else {
            return Err(RunFailure {
                id: spec.id.clone(),
                attempts,
                reason,
            });
        }
    }
    unreachable!("the retry loop always returns")
}

fn worker(sh: &Shared<'_>) {
    loop {
        if sh.aborted.load(Ordering::Relaxed) {
            break;
        }
        if let Some(limit) = sh.cfg.abort_after_runs {
            if sh.completed.load(Ordering::Relaxed) >= limit {
                sh.aborted.store(true, Ordering::Relaxed);
                break;
            }
        }
        let next = sh.queue.lock().expect("queue lock").pop_front();
        let Some(i) = next else { break };
        let spec = &sh.specs[i];
        match run_one(sh, spec) {
            Ok((outcome, attempts)) => {
                let rec_path = sh.records_dir.join(format!("{}.rec", spec.slug()));
                let bytes = encode_record(spec.fingerprint(), &spec.id, &outcome);
                if let Err(e) = checkpoint::write_atomic(&rec_path, &bytes) {
                    // Without a durable record the result would silently
                    // vanish on resume; treat persist failure as run failure.
                    let fail = RunFailure {
                        id: spec.id.clone(),
                        attempts,
                        reason: format!("cannot persist result record: {e}"),
                    };
                    sh.set_status(&spec.id, "failed", attempts, fail.reason.clone());
                    sh.failures.lock().expect("failures lock").push(fail);
                    continue;
                }
                sh.slots.lock().expect("slots lock")[i] = Some(RunResult {
                    id: spec.id.clone(),
                    outcome,
                    attempts,
                    reused: false,
                });
                sh.set_status(&spec.id, "done", attempts, String::new());
                sh.completed.fetch_add(1, Ordering::Relaxed);
                if !sh.cfg.quiet {
                    eprintln!("  [done] {} (attempt {attempts})", spec.id);
                }
            }
            Err(fail) => {
                if !sh.cfg.quiet {
                    eprintln!("  [fail] {fail}");
                }
                sh.set_status(&spec.id, "failed", fail.attempts, fail.reason.clone());
                sh.failures.lock().expect("failures lock").push(fail);
            }
        }
    }
}

/// Run a campaign over `specs`, resuming from any completed work already
/// recorded under the campaign directory. Results come back in spec order.
///
/// # Errors
///
/// [`HarnessError::RunsFailed`] when any run exhausted its retries,
/// [`HarnessError::Aborted`] when the `abort_after_runs` test hook stopped
/// the supervisor early, and I/O / checkpoint errors for an unusable
/// campaign directory. Completed runs stay durable across all of these —
/// re-invoking resumes from them.
pub fn run_campaign(
    specs: &[RunSpec],
    cfg: &CampaignConfig,
) -> Result<Vec<RunResult>, HarnessError> {
    {
        let mut seen = std::collections::HashSet::new();
        for s in specs {
            if !seen.insert(&s.id) {
                return Err(HarnessError::Failed(format!(
                    "duplicate campaign run id {:?}",
                    s.id
                )));
            }
        }
    }
    let records_dir = cfg.dir.join("records");
    fs::create_dir_all(&records_dir).map_err(|e| HarnessError::Io {
        path: records_dir.clone(),
        source: e,
    })?;

    let mut slots: Vec<Option<RunResult>> = Vec::with_capacity(specs.len());
    let mut manifest = BTreeMap::new();
    let mut todo = VecDeque::new();
    for (i, spec) in specs.iter().enumerate() {
        let rec_name = format!("{}.rec", spec.slug());
        let reused = fs::read(records_dir.join(&rec_name))
            .ok()
            .and_then(|bytes| decode_record(&bytes, spec.fingerprint(), &spec.id));
        let status = if reused.is_some() { "done" } else { "pending" };
        manifest.insert(
            spec.id.clone(),
            ManifestEntry {
                status,
                attempts: 0,
                record: format!("records/{rec_name}"),
                note: String::new(),
            },
        );
        match reused {
            Some(outcome) => slots.push(Some(RunResult {
                id: spec.id.clone(),
                outcome,
                attempts: 0,
                reused: true,
            })),
            None => {
                slots.push(None);
                todo.push_back(i);
            }
        }
    }
    let reused_count = specs.len() - todo.len();
    if !cfg.quiet {
        eprintln!(
            "campaign: {} run(s), {} reused from records, {} to execute ({} worker(s))",
            specs.len(),
            reused_count,
            todo.len(),
            cfg.workers.max(1)
        );
    }

    let sh = Shared {
        specs,
        cfg,
        records_dir,
        queue: Mutex::new(todo),
        slots: Mutex::new(slots),
        manifest: Mutex::new(manifest),
        watch: Mutex::new(Vec::new()),
        failures: Mutex::new(Vec::new()),
        completed: AtomicUsize::new(0),
        aborted: AtomicBool::new(false),
        stop_watchdog: AtomicBool::new(false),
    };
    sh.write_manifest();

    if !sh.queue.lock().expect("queue lock").is_empty() {
        std::thread::scope(|scope| {
            let watchdog = scope.spawn(|| {
                while !sh.stop_watchdog.load(Ordering::Relaxed) {
                    let now = Instant::now();
                    for entry in sh.watch.lock().expect("watch lock").iter() {
                        if now >= entry.deadline {
                            entry.cancel.store(true, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
            let workers: Vec<_> = (0..cfg.workers.max(1))
                .map(|_| scope.spawn(|| worker(&sh)))
                .collect();
            for handle in workers {
                if handle.join().is_err() {
                    // Workers isolate run panics internally; a panic here is
                    // a supervisor bug — surface it as a campaign failure.
                    sh.failures.lock().expect("failures lock").push(RunFailure {
                        id: "(supervisor)".into(),
                        attempts: 1,
                        reason: "worker thread panicked outside run isolation".into(),
                    });
                }
            }
            sh.stop_watchdog.store(true, Ordering::Relaxed);
            let _ = watchdog.join();
        });
    }

    let failures = sh.failures.into_inner().expect("failures lock");
    if !failures.is_empty() {
        return Err(HarnessError::RunsFailed(failures));
    }
    if sh.aborted.load(Ordering::Relaxed) {
        return Err(HarnessError::Aborted {
            completed: sh.completed.load(Ordering::Relaxed),
        });
    }
    let slots = sh.slots.into_inner().expect("slots lock");
    let mut out = Vec::with_capacity(specs.len());
    for (spec, slot) in specs.iter().zip(slots) {
        match slot {
            Some(r) => out.push(r),
            None => {
                return Err(HarnessError::Failed(format!(
                    "campaign ended without a result for {:?}",
                    spec.id
                )))
            }
        }
    }
    Ok(out)
}

/// Run `benches` × {MESI, WARDen} on `machine` through the campaign and
/// pair the outcomes into [`BenchRun`]s, verifying that both protocols
/// produced the same final memory image (a disagreement is a typed
/// [`HarnessError::ImageMismatch`], not a panic).
pub fn campaign_suite(
    benches: &[Bench],
    scale: Scale,
    machine: &MachineConfig,
    opts: &SimOptions,
    cfg: &CampaignConfig,
) -> Result<Vec<BenchRun>, HarnessError> {
    let runs = protocol_campaign(
        benches,
        scale,
        machine,
        &[ProtocolId::Mesi, ProtocolId::Warden],
        opts,
        cfg,
    )?;
    Ok(runs
        .into_iter()
        .map(|r| {
            let [mesi, warden]: [SimOutcome; 2] =
                r.outcomes.try_into().expect("two protocols requested");
            let cmp = Comparison::of(r.bench.name(), &mesi, &warden);
            BenchRun {
                bench: r.bench,
                mesi,
                warden,
                cmp,
            }
        })
        .collect())
}

/// One benchmark's outcomes across a protocol list (parallel to the
/// `protocols` argument of [`protocol_campaign`]). All outcomes agree on
/// the final memory image — the campaign verified it.
#[derive(Clone, Debug)]
pub struct ProtocolRun {
    /// The benchmark.
    pub bench: Bench,
    /// One outcome per requested protocol, in request order.
    pub outcomes: Vec<SimOutcome>,
}

/// Run `benches` × `protocols` on `machine` through the campaign. Every
/// protocol must produce the same final memory image as the first one
/// requested (the reference); a disagreement is a typed error naming the
/// benchmark and the diverging protocol, not a panic. When the invariant
/// checker is on ([`SimOptions::check`]), any reported violation also
/// fails the campaign.
pub fn protocol_campaign(
    benches: &[Bench],
    scale: Scale,
    machine: &MachineConfig,
    protocols: &[ProtocolId],
    opts: &SimOptions,
    cfg: &CampaignConfig,
) -> Result<Vec<ProtocolRun>, HarnessError> {
    assert!(!protocols.is_empty(), "protocol list must be non-empty");
    let scale_token = format!("{scale:?}").to_lowercase();
    let mut specs = Vec::with_capacity(benches.len() * protocols.len());
    for &bench in benches {
        for &protocol in protocols {
            specs.push(RunSpec {
                id: format!(
                    "{}/{scale_token}/{}/{}",
                    machine.name,
                    bench.name(),
                    protocol_name(protocol)
                ),
                workload: Workload::bench(bench, scale),
                machine: machine.clone(),
                protocol,
                opts: opts.clone(),
            });
        }
    }
    let results = run_campaign(&specs, cfg)?;
    let mut runs = Vec::with_capacity(benches.len());
    for (i, &bench) in benches.iter().enumerate() {
        let outcomes: Vec<SimOutcome> = results[i * protocols.len()..(i + 1) * protocols.len()]
            .iter()
            .map(|r| r.outcome.clone())
            .collect();
        let reference = outcomes[0].memory_image_digest;
        for (o, &p) in outcomes.iter().zip(protocols) {
            if o.memory_image_digest != reference {
                return Err(HarnessError::Failed(format!(
                    "{}: protocol {} diverged from {} on the final memory image                      ({:#018x} vs {:#018x})",
                    bench.name(),
                    protocol_name(p),
                    protocol_name(protocols[0]),
                    o.memory_image_digest,
                    reference,
                )));
            }
            if !o.violations.is_empty() {
                return Err(HarnessError::Failed(format!(
                    "{}: protocol {} reported {} invariant violation(s); first: {}",
                    bench.name(),
                    protocol_name(p),
                    o.violations.len(),
                    o.violations[0],
                )));
            }
        }
        runs.push(ProtocolRun { bench, outcomes });
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_binds_identity() {
        let spec = RunSpec {
            id: "t/x".into(),
            workload: Workload::bench(Bench::MakeArray, Scale::Tiny),
            machine: MachineConfig::dual_socket().with_cores(2),
            protocol: ProtocolId::Warden,
            opts: SimOptions::default(),
        };
        let program = spec.workload.build();
        let out = warden_sim::simulate(&program, &spec.machine, spec.protocol);
        let bytes = encode_record(spec.fingerprint(), &spec.id, &out);
        let back = decode_record(&bytes, spec.fingerprint(), &spec.id).expect("verifies");
        assert_eq!(back.stats, out.stats);
        assert_eq!(back.memory_image_digest, out.memory_image_digest);
        // Wrong identity or id: the record is ignored, never misattributed.
        assert!(decode_record(&bytes, spec.fingerprint() ^ 1, &spec.id).is_none());
        assert!(decode_record(&bytes, spec.fingerprint(), "t/y").is_none());
        // Every strict prefix is rejected by the frame.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_record(&bytes[..cut], spec.fingerprint(), &spec.id).is_none());
        }
    }

    #[test]
    fn fingerprints_separate_matrix_cells() {
        let base = RunSpec {
            id: "cell".into(),
            workload: Workload::bench(Bench::MakeArray, Scale::Tiny),
            machine: MachineConfig::dual_socket().with_cores(2),
            protocol: ProtocolId::Mesi,
            opts: SimOptions::default(),
        };
        let mut other = base.clone();
        other.protocol = ProtocolId::Warden;
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut other = base.clone();
        other.workload = Workload::bench(Bench::MakeArray, Scale::Paper);
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut other = base.clone();
        other.machine = MachineConfig::single_socket();
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut other = base.clone();
        other.opts.check = true;
        assert_ne!(base.fingerprint(), other.fingerprint());
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
    }

    #[test]
    fn manifest_renders_escaped_json() {
        let mut entries = BTreeMap::new();
        entries.insert(
            "a\"b".to_string(),
            ManifestEntry {
                status: "done",
                attempts: 2,
                record: "records/a-b.rec".into(),
                note: "line\nbreak".into(),
            },
        );
        let s = render_manifest(&entries);
        assert!(s.contains(r#""id": "a\"b""#), "{s}");
        assert!(s.contains(r#""status": "done""#));
        assert!(s.contains(r#""note": "line\nbreak""#));
        assert!(s.ends_with("  ]\n}\n"));
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let spec = RunSpec {
            id: "dup".into(),
            workload: Workload::bench(Bench::MakeArray, Scale::Tiny),
            machine: MachineConfig::dual_socket().with_cores(2),
            protocol: ProtocolId::Mesi,
            opts: SimOptions::default(),
        };
        let cfg = CampaignConfig::ephemeral();
        let err = run_campaign(&[spec.clone(), spec], &cfg).unwrap_err();
        assert!(matches!(err, HarnessError::Failed(_)));
    }
}
