//! Plain-text tables and bar charts for the figure binaries.

/// Render an aligned text table: `headers` then `rows` (each row one cell
/// per header). Column widths adapt to content.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            for _ in cell.chars().count()..widths[i] {
                line.push(' ');
            }
        }
        line.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A unicode bar of `width` cells proportional to `value / max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let cells = ((value / max) * width as f64).round() as usize;
    "█".repeat(cells.min(width))
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0, 2.0, 10).chars().count(), 5);
        assert_eq!(bar(2.0, 2.0, 10).chars().count(), 10);
        assert_eq!(bar(0.0, 2.0, 10), "");
        assert_eq!(bar(5.0, 2.0, 10).chars().count(), 10, "clamped");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(17.36), "17.4%");
    }
}
