//! Typed failures for the harness binaries.
//!
//! Every binary under `src/bin/` funnels its fallible work through
//! [`harness_main`], which prints a typed [`HarnessError`] to stderr and
//! exits nonzero — usage problems exit 2, everything else (I/O failures,
//! failed campaign runs, protocol disagreements) exits 1. Nothing in the
//! harness panics on a bad input or a failed write.

use std::fmt;
use std::path::PathBuf;
use warden_sim::CheckpointError;

/// One campaign run that kept failing after every allowed retry.
#[derive(Clone, Debug)]
pub struct RunFailure {
    /// The run's campaign id.
    pub id: String,
    /// How many attempts were made.
    pub attempts: u32,
    /// The last attempt's failure reason (panic message, deadline, I/O).
    pub reason: String,
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} failed after {} attempt{}: {}",
            self.id,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.reason
        )
    }
}

/// Everything that can make a harness binary exit nonzero.
#[derive(Debug)]
#[non_exhaustive]
pub enum HarnessError {
    /// Bad command line (unknown flag, missing value, unusable positional
    /// argument). Exits with status 2.
    Args(String),
    /// An I/O operation on `path` failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A checkpoint/record operation failed (see [`CheckpointError`]).
    Checkpoint(CheckpointError),
    /// The two protocols disagree on the final memory image — WARDen's
    /// reconciliation must be semantically transparent.
    ImageMismatch {
        /// Which benchmark/run pair disagreed.
        id: String,
        /// The MESI memory-image digest.
        mesi: u64,
        /// The WARDen memory-image digest.
        warden: u64,
    },
    /// One or more campaign runs kept failing after every retry.
    RunsFailed(Vec<RunFailure>),
    /// The campaign stopped early (test hook) with work still queued.
    Aborted {
        /// How many runs completed before the stop.
        completed: usize,
    },
    /// Any other typed failure (invalid trace, invariant violations, …).
    Failed(String),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Args(msg) => write!(f, "{msg}"),
            HarnessError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            HarnessError::Checkpoint(e) => write!(f, "{e}"),
            HarnessError::ImageMismatch { id, mesi, warden } => write!(
                f,
                "{id}: protocols disagree on the final memory image \
                 (MESI digest {mesi:#018x}, WARDen digest {warden:#018x})"
            ),
            HarnessError::RunsFailed(fails) => {
                write!(f, "{} campaign run(s) failed:", fails.len())?;
                for r in fails {
                    write!(f, "\n  {r}")?;
                }
                Ok(())
            }
            HarnessError::Aborted { completed } => {
                write!(f, "campaign aborted after {completed} run(s) (test hook)")
            }
            HarnessError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Io { source, .. } => Some(source),
            HarnessError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for HarnessError {
    fn from(e: CheckpointError) -> HarnessError {
        HarnessError::Checkpoint(e)
    }
}

impl HarnessError {
    /// The process exit status this error maps to: 2 for usage errors,
    /// 1 for everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            HarnessError::Args(_) => 2,
            _ => 1,
        }
    }
}

/// Run a harness binary's fallible body: on error, print it to stderr and
/// exit with the error's status code ([`HarnessError::exit_code`]).
pub fn harness_main(run: impl FnOnce() -> Result<(), HarnessError>) {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_split_usage_from_runtime_failures() {
        assert_eq!(HarnessError::Args("bad flag".into()).exit_code(), 2);
        assert_eq!(
            HarnessError::Io {
                path: PathBuf::from("/nope"),
                source: std::io::Error::other("x"),
            }
            .exit_code(),
            1
        );
        assert_eq!(HarnessError::RunsFailed(Vec::new()).exit_code(), 1);
    }

    #[test]
    fn display_lists_every_failed_run() {
        let e = HarnessError::RunsFailed(vec![
            RunFailure {
                id: "a".into(),
                attempts: 1,
                reason: "panicked".into(),
            },
            RunFailure {
                id: "b".into(),
                attempts: 3,
                reason: "deadline exceeded".into(),
            },
        ]);
        let s = e.to_string();
        assert!(s.contains("a failed after 1 attempt: panicked"));
        assert!(s.contains("b failed after 3 attempts: deadline exceeded"));
    }
}
