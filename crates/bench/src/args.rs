//! Strict command-line parsing shared by every harness binary.
//!
//! All binaries accept the same flag vocabulary (each uses the subset it
//! needs); anything starting with `--` that is not in the list below is
//! rejected with an error naming the valid flags — a typo like `--chek`
//! fails the run instead of silently proceeding unchecked.
//!
//! | flag                   | meaning |
//! |------------------------|---------|
//! | `--scale tiny\|paper`  | input scale (default `paper`) |
//! | `--check`              | run the coherence invariant checker |
//! | `--faults <seed>`      | inject the benign seeded fault plan |
//! | `--lanes <n>`          | sharded event lanes (bit-identical to sequential) |
//! | `--markdown <path>`    | `all_figures`: also write the report as markdown |
//! | `--obs <dir>`          | record observability; export traces + epoch tables here |
//! | `--campaign-dir <dir>` | durable campaign state (resume after a crash) |
//! | `--jobs <n>`           | campaign worker threads |
//! | `--deadline-ms <ms>`   | per-run watchdog deadline |
//! | `--retries <n>`        | retry budget per campaign run |
//! | `--quiet`              | suppress campaign progress lines |
//! | `--out <path>`         | `bench_baseline`/`loadgen`: report destination |
//! | `--baseline <path>`    | `bench_baseline`: earlier report to compare against |
//! | `--runs <n>`           | `bench_baseline`: repetitions per sample |
//! | `--addr <host:port>`   | `serve`/`loadgen`: TCP address to bind/connect |
//! | `--uds <path>`         | `serve`/`loadgen`: Unix-socket path to bind/connect |
//! | `--clients <n>`        | `loadgen`: concurrent client connections |
//! | `--iters <n>`          | `loadgen`: requests per client |
//! | `--queue-cap <n>`      | `serve`/`loadgen --spawn`: bounded queue capacity |
//! | `--spawn`              | `loadgen`: start an in-process server to drive |
//! | `--chaos`              | `loadgen`: drive through the fault-injecting proxy |
//! | `--chaos-seed <seed>`  | `loadgen`: seed for the chaos fault stream |
//! | `--request-deadline-ms <ms>` | `serve`/`loadgen --spawn`: per-request deadline |
//! | `--cache-budget <bytes>` | `serve`/`loadgen --spawn`: result-cache byte budget |
//! | `--disk-cache <dir>`   | `serve`/`loadgen --spawn`: crash-safe disk tier directory |
//! | `--disk-budget <bytes>` | byte budget for the disk tier |
//! | `--checkpoint-every <steps>` | steps between prefix-checkpoint frames (0 = off) |
//! | `--storage-chaos`      | inject seeded storage faults into the disk tier |
//! | `--storage-chaos-seed <seed>` | seed for the storage-fault stream |
//! | `--fuzz-workloads <n>` | `fuzzgen`: generated workloads per gate run |
//! | `--fuzz-seed <seed>`   | `fuzzgen`: workload-generator stream seed |
//! | `--patterns <names|all>` | `fuzzgen`: sharing patterns to generate |
//! | `--mutate <protocol:mutation>` | `fuzzgen`: inject a protocol defect the gate must catch |
//! | `--artifacts <dir>`    | `fuzzgen`: archive shrunk failing seeds here |
//! | `--atlas <dir>`        | `fuzzgen`: run the coherence-atlas sweep into this directory |
//! | `--replay <token>`     | `fuzzgen`: re-check one archived workload token |
//!
//! Non-flag arguments are collected in [`HarnessArgs::positional`] for the
//! binaries that take them (`record`, `replay`).

use crate::campaign::CampaignConfig;
use crate::error::HarnessError;
use crate::runner::{RunOptions, SuiteScale};
use std::path::PathBuf;
use std::time::Duration;
use warden_coherence::{ProtocolId, ProtocolMutation};
use warden_rt::workload::SharingPattern;
use warden_serve::{DiskTierConfig, StorageFaultPlan};

/// Every flag the harness binaries understand, with value placeholders —
/// printed by the unknown-flag error.
pub const VALID_FLAGS: &[&str] = &[
    "--addr <host:port>",
    "--artifacts <dir>",
    "--atlas <dir>",
    "--baseline <path>",
    "--cache-budget <bytes>",
    "--campaign-dir <dir>",
    "--chaos",
    "--chaos-seed <seed>",
    "--check",
    "--checkpoint-every <steps>",
    "--clients <n>",
    "--deadline-ms <ms>",
    "--disk-budget <bytes>",
    "--disk-cache <dir>",
    "--faults <seed>",
    "--fuzz-seed <seed>",
    "--fuzz-workloads <n>",
    "--iters <n>",
    "--jobs <n>",
    "--lanes <n>",
    "--markdown <path>",
    "--mutate <protocol:mutation>",
    "--obs <dir>",
    "--out <path>",
    "--patterns <names|all>",
    "--protocols <names|all>",
    "--queue-cap <n>",
    "--quiet",
    "--replay <token>",
    "--request-deadline-ms <ms>",
    "--retries <n>",
    "--runs <n>",
    "--scale <tiny|paper>",
    "--spawn",
    "--storage-chaos",
    "--storage-chaos-seed <seed>",
    "--uds <path>",
];

/// Parsed command line shared by the harness binaries.
#[derive(Clone, Debug, Default)]
pub struct HarnessArgs {
    /// Input scale (`--scale`, default paper).
    pub scale: SuiteScale,
    /// Robustness switches (`--check`, `--faults`).
    pub run: RunOptions,
    /// `--markdown <path>`, if given.
    pub markdown: Option<PathBuf>,
    /// `--obs <dir>`: record protocol observability and write Perfetto
    /// trace + epoch-summary exports into this directory.
    pub obs: Option<PathBuf>,
    /// `--campaign-dir <dir>`, if given (otherwise campaigns use an
    /// ephemeral directory under the system temp dir).
    pub campaign_dir: Option<PathBuf>,
    /// `--jobs <n>` override for the campaign worker count.
    pub jobs: Option<usize>,
    /// `--deadline-ms <ms>` override for the per-run watchdog deadline.
    pub deadline_ms: Option<u64>,
    /// `--retries <n>` override for the per-run retry budget.
    pub retries: Option<u32>,
    /// `--quiet`: suppress campaign progress lines on stderr.
    pub quiet: bool,
    /// `--out <path>`: where `bench_baseline` writes its JSON report.
    pub out: Option<PathBuf>,
    /// `--baseline <path>`: an earlier `bench_baseline` report to embed as
    /// the before side of the comparison.
    pub baseline: Option<PathBuf>,
    /// `--runs <n>`: repetitions per throughput sample.
    pub runs: Option<u32>,
    /// `--addr <host:port>`: TCP address for `serve` (bind) and `loadgen`
    /// (connect).
    pub addr: Option<String>,
    /// `--uds <path>`: Unix-socket path for `serve` (bind) and `loadgen`
    /// (connect).
    pub uds: Option<PathBuf>,
    /// `--clients <n>`: concurrent load-generator connections.
    pub clients: Option<usize>,
    /// `--iters <n>`: requests each load-generator client sends.
    pub iters: Option<usize>,
    /// `--queue-cap <n>`: bounded request-queue capacity for the server.
    pub queue_cap: Option<usize>,
    /// `--spawn`: `loadgen` starts an in-process server to drive.
    pub spawn: bool,
    /// `--chaos`: `loadgen` interposes the fault-injecting proxy and
    /// drives it with resilient clients.
    pub chaos: bool,
    /// `--chaos-seed <seed>`: seed for the deterministic fault stream
    /// (also salts the clients' retry jitter).
    pub chaos_seed: Option<u64>,
    /// `--request-deadline-ms <ms>`: per-request server deadline covering
    /// queue wait plus simulation.
    pub request_deadline_ms: Option<u64>,
    /// `--cache-budget <bytes>`: byte budget for the server's result
    /// cache.
    pub cache_budget: Option<u64>,
    /// `--disk-cache <dir>`: enable the crash-safe disk tier rooted here.
    pub disk_cache: Option<PathBuf>,
    /// `--disk-budget <bytes>`: byte budget for the disk tier.
    pub disk_budget: Option<u64>,
    /// `--checkpoint-every <steps>`: scheduler steps between periodic
    /// prefix-checkpoint frames (0 disables periodic frames).
    pub checkpoint_every: Option<u64>,
    /// `--storage-chaos`: inject the seeded storage-fault plan into the
    /// disk tier (requires `--disk-cache`).
    pub storage_chaos: bool,
    /// `--storage-chaos-seed <seed>`: seed for the storage-fault stream.
    pub storage_chaos_seed: Option<u64>,
    /// `--protocols <names|all>`: which registered coherence protocols a
    /// binary runs, as comma-separated registry names (`mesi,warden,si`) or
    /// `all`. `None` keeps each binary's default (usually MESI + WARDen).
    pub protocols: Option<Vec<ProtocolId>>,
    /// `--fuzz-workloads <n>`: generated workloads per `fuzzgen` gate run.
    pub fuzz_workloads: Option<usize>,
    /// `--fuzz-seed <seed>`: the workload-generator stream seed.
    pub fuzz_seed: Option<u64>,
    /// `--patterns <names|all>`: the sharing patterns `fuzzgen` generates,
    /// as comma-separated registry names (`ping-pong,migratory`) or `all`.
    pub patterns: Option<Vec<SharingPattern>>,
    /// `--mutate <protocol:mutation>`: a deliberate protocol defect the
    /// fuzz gate must catch (e.g. `si:skip-self-invalidate`).
    pub mutate: Option<(ProtocolId, ProtocolMutation)>,
    /// `--artifacts <dir>`: where `fuzzgen` archives shrunk failing seeds.
    pub artifacts: Option<PathBuf>,
    /// `--atlas <dir>`: run the coherence-atlas sweep and write its figure
    /// + records files into this directory.
    pub atlas: Option<PathBuf>,
    /// `--replay <token>`: re-check one archived workload token instead of
    /// generating a stream.
    pub replay: Option<String>,
    /// Non-flag arguments, in order (used by `record` and `replay`).
    pub positional: Vec<String>,
}

/// Parse a `--patterns` value: `all` or comma-separated pattern names,
/// resolved through [`SharingPattern::from_name`] so an unknown name is a
/// typed usage error listing the registry.
pub fn parse_patterns(v: &str) -> Result<Vec<SharingPattern>, HarnessError> {
    if v == "all" {
        return Ok(SharingPattern::ALL.to_vec());
    }
    let mut out = Vec::new();
    for name in v.split(',').map(str::trim).filter(|n| !n.is_empty()) {
        let p = SharingPattern::from_name(name).map_err(|e| HarnessError::Args(e.to_string()))?;
        if !out.contains(&p) {
            out.push(p);
        }
    }
    if out.is_empty() {
        return Err(HarnessError::Args(
            "--patterns needs at least one pattern name (or `all`)".into(),
        ));
    }
    Ok(out)
}

/// Parse a `--protocols` value: `all` or comma-separated registry names,
/// resolved through [`ProtocolId::from_name`] so an unknown name is a typed
/// usage error listing the registry.
pub fn parse_protocols(v: &str) -> Result<Vec<ProtocolId>, HarnessError> {
    if v == "all" {
        return Ok(ProtocolId::ALL.to_vec());
    }
    let mut out = Vec::new();
    for name in v.split(',').map(str::trim).filter(|n| !n.is_empty()) {
        let p = ProtocolId::from_name(name).map_err(|e| HarnessError::Args(e.to_string()))?;
        if !out.contains(&p) {
            out.push(p);
        }
    }
    if out.is_empty() {
        return Err(HarnessError::Args(
            "--protocols needs at least one protocol name (or `all`)".into(),
        ));
    }
    Ok(out)
}

fn unknown(flag: &str) -> HarnessError {
    HarnessError::Args(format!(
        "unrecognized flag {flag:?}; valid flags: {}",
        VALID_FLAGS.join(", ")
    ))
}

fn value(
    it: &mut impl Iterator<Item = String>,
    flag: &str,
    placeholder: &str,
) -> Result<String, HarnessError> {
    it.next()
        .ok_or_else(|| HarnessError::Args(format!("{flag} needs a value: {flag} {placeholder}")))
}

fn number<T: std::str::FromStr>(
    it: &mut impl Iterator<Item = String>,
    flag: &str,
    placeholder: &str,
) -> Result<T, HarnessError> {
    let v = value(it, flag, placeholder)?;
    v.parse().map_err(|_| {
        HarnessError::Args(format!("{flag} needs a number ({placeholder}), got {v:?}"))
    })
}

impl HarnessArgs {
    /// Parse the process arguments. Unknown `--` flags are rejected with an
    /// error listing [`VALID_FLAGS`].
    pub fn parse() -> Result<HarnessArgs, HarnessError> {
        HarnessArgs::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit argument list (tests).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Result<HarnessArgs, HarnessError> {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--check" => out.run.check = true,
                "--quiet" => out.quiet = true,
                "--scale" => {
                    let v = value(&mut it, "--scale", "<tiny|paper>")?;
                    out.scale = match v.as_str() {
                        "tiny" => SuiteScale::Tiny,
                        "paper" => SuiteScale::Paper,
                        _ => {
                            return Err(HarnessError::Args(format!(
                                "--scale must be `tiny` or `paper`, got {v:?}"
                            )))
                        }
                    };
                }
                "--faults" => out.run.faults = Some(number(&mut it, "--faults", "<seed>")?),
                "--lanes" => {
                    let n: usize = number(&mut it, "--lanes", "<n>")?;
                    if n == 0 {
                        return Err(HarnessError::Args("--lanes must be at least 1".into()));
                    }
                    out.run.lanes = n;
                }
                "--markdown" => {
                    out.markdown = Some(PathBuf::from(value(&mut it, "--markdown", "<path>")?))
                }
                "--obs" => {
                    out.obs = Some(PathBuf::from(value(&mut it, "--obs", "<dir>")?));
                    out.run.obs = true;
                }
                "--campaign-dir" => {
                    out.campaign_dir =
                        Some(PathBuf::from(value(&mut it, "--campaign-dir", "<dir>")?))
                }
                "--jobs" => {
                    let n: usize = number(&mut it, "--jobs", "<n>")?;
                    if n == 0 {
                        return Err(HarnessError::Args("--jobs must be at least 1".into()));
                    }
                    out.jobs = Some(n);
                }
                "--deadline-ms" => {
                    out.deadline_ms = Some(number(&mut it, "--deadline-ms", "<ms>")?)
                }
                "--retries" => out.retries = Some(number(&mut it, "--retries", "<n>")?),
                "--out" => out.out = Some(PathBuf::from(value(&mut it, "--out", "<path>")?)),
                "--baseline" => {
                    out.baseline = Some(PathBuf::from(value(&mut it, "--baseline", "<path>")?))
                }
                "--runs" => out.runs = Some(number(&mut it, "--runs", "<n>")?),
                "--addr" => out.addr = Some(value(&mut it, "--addr", "<host:port>")?),
                "--uds" => out.uds = Some(PathBuf::from(value(&mut it, "--uds", "<path>")?)),
                "--clients" => {
                    let n: usize = number(&mut it, "--clients", "<n>")?;
                    if n == 0 {
                        return Err(HarnessError::Args("--clients must be at least 1".into()));
                    }
                    out.clients = Some(n);
                }
                "--iters" => {
                    let n: usize = number(&mut it, "--iters", "<n>")?;
                    if n == 0 {
                        return Err(HarnessError::Args("--iters must be at least 1".into()));
                    }
                    out.iters = Some(n);
                }
                "--queue-cap" => {
                    let n: usize = number(&mut it, "--queue-cap", "<n>")?;
                    if n == 0 {
                        return Err(HarnessError::Args("--queue-cap must be at least 1".into()));
                    }
                    out.queue_cap = Some(n);
                }
                "--spawn" => out.spawn = true,
                "--chaos" => out.chaos = true,
                "--chaos-seed" => out.chaos_seed = Some(number(&mut it, "--chaos-seed", "<seed>")?),
                "--request-deadline-ms" => {
                    let ms: u64 = number(&mut it, "--request-deadline-ms", "<ms>")?;
                    if ms == 0 {
                        return Err(HarnessError::Args(
                            "--request-deadline-ms must be at least 1".into(),
                        ));
                    }
                    out.request_deadline_ms = Some(ms);
                }
                "--cache-budget" => {
                    let bytes: u64 = number(&mut it, "--cache-budget", "<bytes>")?;
                    if bytes == 0 {
                        return Err(HarnessError::Args(
                            "--cache-budget must be at least 1 byte".into(),
                        ));
                    }
                    out.cache_budget = Some(bytes);
                }
                "--disk-cache" => {
                    out.disk_cache = Some(PathBuf::from(value(&mut it, "--disk-cache", "<dir>")?))
                }
                "--disk-budget" => {
                    let bytes: u64 = number(&mut it, "--disk-budget", "<bytes>")?;
                    if bytes == 0 {
                        return Err(HarnessError::Args(
                            "--disk-budget must be at least 1 byte".into(),
                        ));
                    }
                    out.disk_budget = Some(bytes);
                }
                "--checkpoint-every" => {
                    out.checkpoint_every = Some(number(&mut it, "--checkpoint-every", "<steps>")?)
                }
                "--storage-chaos" => out.storage_chaos = true,
                "--storage-chaos-seed" => {
                    out.storage_chaos_seed =
                        Some(number(&mut it, "--storage-chaos-seed", "<seed>")?)
                }
                "--protocols" => {
                    let v = value(&mut it, "--protocols", "<names|all>")?;
                    out.protocols = Some(parse_protocols(&v)?);
                }
                "--fuzz-workloads" => {
                    let n: usize = number(&mut it, "--fuzz-workloads", "<n>")?;
                    if n == 0 {
                        return Err(HarnessError::Args(
                            "--fuzz-workloads must be at least 1".into(),
                        ));
                    }
                    out.fuzz_workloads = Some(n);
                }
                "--fuzz-seed" => out.fuzz_seed = Some(number(&mut it, "--fuzz-seed", "<seed>")?),
                "--patterns" => {
                    let v = value(&mut it, "--patterns", "<names|all>")?;
                    out.patterns = Some(parse_patterns(&v)?);
                }
                "--mutate" => {
                    let v = value(&mut it, "--mutate", "<protocol:mutation>")?;
                    out.mutate = Some(crate::fuzz::parse_mutation_spec(&v)?);
                }
                "--artifacts" => {
                    out.artifacts = Some(PathBuf::from(value(&mut it, "--artifacts", "<dir>")?))
                }
                "--atlas" => out.atlas = Some(PathBuf::from(value(&mut it, "--atlas", "<dir>")?)),
                "--replay" => out.replay = Some(value(&mut it, "--replay", "<token>")?),
                _ if a.starts_with("--") => return Err(unknown(&a)),
                _ => out.positional.push(a),
            }
        }
        Ok(out)
    }

    /// The simulator options the robustness switches select.
    pub fn sim_options(&self) -> warden_sim::SimOptions {
        self.run.sim_options()
    }

    /// The disk-tier configuration (and, under `--storage-chaos`, the
    /// seeded storage-fault plan) these flags select. The disk-dependent
    /// flags are rejected without `--disk-cache` — a silently ignored
    /// durability flag would be worse than an error.
    pub fn disk_config(
        &self,
    ) -> Result<(Option<DiskTierConfig>, Option<StorageFaultPlan>), HarnessError> {
        let Some(dir) = &self.disk_cache else {
            for (set, flag) in [
                (self.disk_budget.is_some(), "--disk-budget"),
                (self.checkpoint_every.is_some(), "--checkpoint-every"),
                (self.storage_chaos, "--storage-chaos"),
                (self.storage_chaos_seed.is_some(), "--storage-chaos-seed"),
            ] {
                if set {
                    return Err(HarnessError::Args(format!(
                        "{flag} requires --disk-cache <dir>"
                    )));
                }
            }
            return Ok((None, None));
        };
        let mut cfg = DiskTierConfig::at(dir.clone());
        if let Some(bytes) = self.disk_budget {
            cfg.budget_bytes = bytes;
        }
        if let Some(steps) = self.checkpoint_every {
            cfg.checkpoint_every = steps;
        }
        let faults = if self.storage_chaos {
            Some(match self.storage_chaos_seed {
                Some(seed) => StorageFaultPlan::seeded(seed),
                None => StorageFaultPlan::default(),
            })
        } else {
            if self.storage_chaos_seed.is_some() {
                return Err(HarnessError::Args(
                    "--storage-chaos-seed requires --storage-chaos".into(),
                ));
            }
            None
        };
        Ok((Some(cfg), faults))
    }

    /// The campaign configuration these flags select: durable under
    /// `--campaign-dir`, otherwise an ephemeral directory wiped at creation,
    /// with `--jobs` / `--deadline-ms` / `--retries` / `--quiet` applied.
    pub fn campaign_config(&self) -> CampaignConfig {
        let mut cfg = match &self.campaign_dir {
            Some(dir) => CampaignConfig::new(dir.clone()),
            None => CampaignConfig::ephemeral(),
        };
        if let Some(jobs) = self.jobs {
            cfg.workers = jobs;
        }
        if let Some(ms) = self.deadline_ms {
            cfg.deadline = Duration::from_millis(ms);
        }
        if let Some(retries) = self.retries {
            cfg.retries = retries;
        }
        cfg.quiet = self.quiet;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, HarnessError> {
        HarnessArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_full_vocabulary() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, SuiteScale::Paper);
        assert!(!a.run.check && a.run.faults.is_none() && a.positional.is_empty());
        assert!(!a.run.obs && a.obs.is_none());

        let a = parse(&[
            "--scale",
            "tiny",
            "--check",
            "--faults",
            "7",
            "--lanes",
            "4",
            "--markdown",
            "out.md",
            "--obs",
            "obs.out",
            "--campaign-dir",
            "camp",
            "--jobs",
            "3",
            "--deadline-ms",
            "250",
            "--retries",
            "1",
            "--quiet",
            "--addr",
            "127.0.0.1:0",
            "--uds",
            "sock",
            "--clients",
            "8",
            "--iters",
            "4",
            "--queue-cap",
            "2",
            "--spawn",
            "--chaos",
            "--chaos-seed",
            "42",
            "--request-deadline-ms",
            "1500",
            "--cache-budget",
            "65536",
            "--disk-cache",
            "tier",
            "--disk-budget",
            "1048576",
            "--checkpoint-every",
            "50000",
            "--storage-chaos",
            "--storage-chaos-seed",
            "13",
            "--fuzz-workloads",
            "5",
            "--fuzz-seed",
            "2023",
            "--patterns",
            "ping-pong,migratory",
            "--mutate",
            "si:skip-self-invalidate",
            "--artifacts",
            "seeds",
            "--atlas",
            "atlas.out",
            "--replay",
            "migratory-s0000000000000007-t4-r3-o24-f4096",
            "primes",
        ])
        .unwrap();
        assert_eq!(a.scale, SuiteScale::Tiny);
        assert!(a.run.check);
        assert_eq!(a.run.faults, Some(7));
        assert_eq!(a.run.lanes, 4);
        assert_eq!(a.markdown.as_deref(), Some(std::path::Path::new("out.md")));
        assert_eq!(a.obs.as_deref(), Some(std::path::Path::new("obs.out")));
        assert!(a.run.obs, "--obs also turns on recording");
        assert_eq!(
            a.campaign_dir.as_deref(),
            Some(std::path::Path::new("camp"))
        );
        assert_eq!(
            (a.jobs, a.deadline_ms, a.retries),
            (Some(3), Some(250), Some(1))
        );
        assert!(a.quiet);
        assert_eq!(a.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(a.uds.as_deref(), Some(std::path::Path::new("sock")));
        assert_eq!(
            (a.clients, a.iters, a.queue_cap),
            (Some(8), Some(4), Some(2))
        );
        assert!(a.spawn);
        assert!(a.chaos);
        assert_eq!(a.chaos_seed, Some(42));
        assert_eq!(a.request_deadline_ms, Some(1500));
        assert_eq!(a.cache_budget, Some(65536));
        assert_eq!(a.disk_cache.as_deref(), Some(std::path::Path::new("tier")));
        assert_eq!(a.disk_budget, Some(1_048_576));
        assert_eq!(a.checkpoint_every, Some(50_000));
        assert!(a.storage_chaos);
        assert_eq!(a.storage_chaos_seed, Some(13));
        assert_eq!((a.fuzz_workloads, a.fuzz_seed), (Some(5), Some(2023)));
        assert_eq!(
            a.patterns.as_deref(),
            Some(&[SharingPattern::PingPong, SharingPattern::Migratory][..])
        );
        let (mp, mm) = a.mutate.expect("--mutate parsed");
        assert_eq!(mp, ProtocolId::SelfInv);
        assert!(matches!(mm, ProtocolMutation::SkipSelfInvalidate));
        assert_eq!(a.artifacts.as_deref(), Some(std::path::Path::new("seeds")));
        assert_eq!(a.atlas.as_deref(), Some(std::path::Path::new("atlas.out")));
        assert_eq!(
            a.replay.as_deref(),
            Some("migratory-s0000000000000007-t4-r3-o24-f4096")
        );
        assert_eq!(a.positional, vec!["primes".to_string()]);

        let cfg = a.campaign_config();
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.deadline, Duration::from_millis(250));
        assert_eq!(cfg.retries, 1);
        assert!(cfg.quiet);
    }

    #[test]
    fn unknown_flags_are_rejected_with_the_valid_list() {
        let err = parse(&["--chek"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let msg = err.to_string();
        assert!(msg.contains("--chek"), "{msg}");
        for flag in VALID_FLAGS {
            assert!(msg.contains(flag), "{msg} should list {flag}");
        }
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(parse(&["--scale", "medium"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--faults", "xyz"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--lanes", "0"]).is_err());
        assert!(parse(&["--deadline-ms"]).is_err());
        assert!(parse(&["--retries", "-1"]).is_err());
        assert!(parse(&["--clients", "0"]).is_err());
        assert!(parse(&["--iters", "0"]).is_err());
        assert!(parse(&["--queue-cap", "0"]).is_err());
        assert!(parse(&["--addr"]).is_err());
        assert!(parse(&["--chaos-seed", "many"]).is_err());
        assert!(parse(&["--request-deadline-ms", "0"]).is_err());
        assert!(parse(&["--cache-budget", "0"]).is_err());
        assert!(parse(&["--disk-cache"]).is_err());
        assert!(parse(&["--disk-budget", "0"]).is_err());
        assert!(parse(&["--checkpoint-every", "soon"]).is_err());
        assert!(parse(&["--storage-chaos-seed", "many"]).is_err());
        assert!(parse(&["--fuzz-workloads", "0"]).is_err());
        assert!(parse(&["--fuzz-seed", "lots"]).is_err());
        assert!(parse(&["--patterns", "zigzag"]).is_err());
        assert!(parse(&["--patterns", ""]).is_err());
        assert!(parse(&["--mutate", "si"]).is_err());
        assert!(parse(&["--mutate", "si:nope"]).is_err());
        assert!(parse(&["--replay"]).is_err());
    }

    #[test]
    fn patterns_parse_all_and_dedupe() {
        assert_eq!(parse_patterns("all").unwrap(), SharingPattern::ALL.to_vec());
        assert_eq!(
            parse_patterns("migratory, migratory,ping-pong").unwrap(),
            vec![SharingPattern::Migratory, SharingPattern::PingPong]
        );
    }

    #[test]
    fn disk_flags_compose_and_orphans_are_rejected() {
        let (cfg, faults) = parse(&[]).unwrap().disk_config().unwrap();
        assert!(cfg.is_none() && faults.is_none());

        let (cfg, faults) = parse(&[
            "--disk-cache",
            "tier",
            "--disk-budget",
            "4096",
            "--checkpoint-every",
            "100",
            "--storage-chaos",
            "--storage-chaos-seed",
            "7",
        ])
        .unwrap()
        .disk_config()
        .unwrap();
        let cfg = cfg.unwrap();
        assert_eq!(cfg.dir, std::path::Path::new("tier"));
        assert_eq!(cfg.budget_bytes, 4096);
        assert_eq!(cfg.checkpoint_every, 100);
        assert_eq!(faults.unwrap(), StorageFaultPlan::seeded(7));

        // Disk-dependent flags without the tier are errors, not no-ops.
        for orphan in [
            vec!["--disk-budget", "4096"],
            vec!["--checkpoint-every", "100"],
            vec!["--storage-chaos"],
            vec!["--storage-chaos-seed", "7"],
            vec!["--disk-cache", "tier", "--storage-chaos-seed", "7"],
        ] {
            assert!(parse(&orphan).unwrap().disk_config().is_err(), "{orphan:?}");
        }
    }
}
