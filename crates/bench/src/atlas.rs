//! The coherence atlas: a machine-space × sharing-pattern × protocol sweep.
//!
//! The paper evaluates WARDen at three machine points (single socket, dual
//! socket, the §7.3 1 µs disaggregated machine). The atlas sweeps a small
//! grid of machines — including a CXL-class remote-latency point and a
//! many-thin-sockets point — against every synthetic sharing pattern under
//! every registered protocol, and reports the **win region**: which
//! protocol is fastest where. Every run goes through the supervised
//! campaign with the invariant checker on, and every cell is checked for
//! digest agreement first — a protocol may only "win" a cell it simulated
//! correctly.
//!
//! The atlas is deterministic: equal seeds produce byte-identical
//! [`Atlas::records`] output, which is what CI diffs against the committed
//! figure data.

use crate::campaign::{run_campaign, CampaignConfig, RunSpec, Workload};
use crate::error::HarnessError;
use warden_coherence::{LatencyModel, ProtocolId};
use warden_rt::workload::{SharingPattern, WorkloadSpec};
use warden_sim::{MachineConfig, SimOptions};

/// The atlas's machine grid: the paper's native NUMA point scaled down,
/// a single socket, the §7.3 1 µs disaggregated point, a CXL-class
/// intermediate, and a many-thin-sockets geometry (1 core per socket —
/// every access to another core's data crosses the interconnect).
///
/// Small core counts keep the full grid (5 machines × 7 patterns × 5
/// protocols = 175 runs) fast enough for CI.
pub fn atlas_machines() -> Vec<MachineConfig> {
    [
        ("1s4c-xeon", 1, 4, LatencyModel::xeon_gold_6126()),
        ("2s2c-xeon", 2, 2, LatencyModel::xeon_gold_6126()),
        ("2s2c-cxl", 2, 2, LatencyModel::cxl()),
        ("2s2c-disagg", 2, 2, LatencyModel::disaggregated()),
        ("4s1c-xeon", 4, 1, LatencyModel::xeon_gold_6126()),
    ]
    .into_iter()
    .map(|(name, sockets, cores, lat)| {
        MachineConfig::sweep_point(name, sockets, cores, lat)
            .expect("static atlas grid points are valid")
    })
    .collect()
}

/// One simulated cell of the atlas.
#[derive(Clone, Debug)]
pub struct AtlasCell {
    /// Machine name (see [`atlas_machines`]).
    pub machine: String,
    /// The sharing pattern.
    pub pattern: SharingPattern,
    /// The protocol.
    pub protocol: ProtocolId,
    /// Replay makespan in cycles.
    pub cycles: u64,
    /// Invalidations sent.
    pub invalidations: u64,
    /// Downgrades sent.
    pub downgrades: u64,
    /// LLC misses (DRAM / remote fills).
    pub llc_misses: u64,
    /// Final memory image digest (equal across protocols per cell group —
    /// verified before the atlas is assembled).
    pub digest: u64,
}

/// The finished sweep, cells in deterministic machine-major order.
#[derive(Clone, Debug)]
pub struct Atlas {
    /// Generator seed the sweep ran under.
    pub seed: u64,
    /// All cells: machines × patterns × protocols, in grid order.
    pub cells: Vec<AtlasCell>,
}

impl Atlas {
    /// The protocols that won each (machine, pattern) cell group — lowest
    /// cycle count, ties broken toward the earlier protocol in
    /// [`ProtocolId::ALL`] order.
    pub fn winners(&self) -> Vec<(&str, SharingPattern, ProtocolId)> {
        let mut out = Vec::new();
        for group in self.cells.chunks(ProtocolId::ALL.len()) {
            let best = group
                .iter()
                .min_by_key(|c| c.cycles)
                .expect("cell groups are non-empty");
            out.push((best.machine.as_str(), best.pattern, best.protocol));
        }
        out
    }

    /// The committed figure data: one header line plus one CSV row per
    /// cell, every field an exact integer (no floats), in grid order —
    /// byte-identical across reruns with the same seed.
    pub fn records(&self) -> String {
        let mut s = format!(
            "# coherence atlas, seed {}\nmachine,pattern,protocol,cycles,invalidations,\
             downgrades,llc_misses,digest\n",
            self.seed
        );
        for c in &self.cells {
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{:#018x}\n",
                c.machine,
                c.pattern,
                c.protocol.name(),
                c.cycles,
                c.invalidations,
                c.downgrades,
                c.llc_misses,
                c.digest
            ));
        }
        s
    }
}

/// The per-pattern workload the atlas holds fixed across machines: small
/// enough for a 175-run CI sweep, seeded per pattern so the patterns do
/// not share random streams.
fn atlas_spec(pattern: SharingPattern, index: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        tasks: 4,
        rounds: 3,
        ops: 24,
        footprint: 2048,
        ..WorkloadSpec::new(
            pattern,
            seed ^ (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        )
    }
}

/// Run the full atlas sweep through the supervised campaign (checker on),
/// verify per-cell-group digest agreement, and assemble the atlas.
///
/// # Errors
///
/// Campaign failures propagate; a protocol disagreement or invariant
/// violation inside the sweep is a [`HarnessError::Failed`].
pub fn run_atlas(seed: u64, cfg: &CampaignConfig) -> Result<Atlas, HarnessError> {
    let machines = atlas_machines();
    let opts = SimOptions {
        check: true,
        ..SimOptions::default()
    };
    let mut specs = Vec::new();
    for machine in &machines {
        for (i, &pattern) in SharingPattern::ALL.iter().enumerate() {
            let w = atlas_spec(pattern, i, seed);
            for &protocol in &ProtocolId::ALL {
                specs.push(RunSpec {
                    id: format!("atlas/{}/{}/{}", machine.name, pattern, protocol.name()),
                    workload: Workload::custom(w.token(), move || w.build()),
                    machine: machine.clone(),
                    protocol,
                    opts: opts.clone(),
                });
            }
        }
    }
    let results = run_campaign(&specs, cfg)?;

    let mut cells = Vec::with_capacity(results.len());
    for (group, spec_group) in results
        .chunks(ProtocolId::ALL.len())
        .zip(specs.chunks(ProtocolId::ALL.len()))
    {
        let reference = group[0].outcome.memory_image_digest;
        for (r, s) in group.iter().zip(spec_group) {
            if r.outcome.memory_image_digest != reference {
                return Err(HarnessError::Failed(format!(
                    "{}: digest diverged from {} ({:#018x} vs {:#018x})",
                    s.id, spec_group[0].id, r.outcome.memory_image_digest, reference
                )));
            }
            if let Some(v) = r.outcome.violations.first() {
                return Err(HarnessError::Failed(format!(
                    "{}: invariant violation: {v}",
                    s.id
                )));
            }
            let c = &r.outcome.stats.coherence;
            cells.push(AtlasCell {
                machine: s.machine.name.clone(),
                pattern: pattern_of(&s.id),
                protocol: s.protocol,
                cycles: r.outcome.stats.cycles,
                invalidations: c.invalidations,
                downgrades: c.downgrades,
                llc_misses: c.llc_misses,
                digest: r.outcome.memory_image_digest,
            });
        }
    }
    Ok(Atlas { seed, cells })
}

fn pattern_of(run_id: &str) -> SharingPattern {
    let name = run_id.split('/').nth(2).unwrap_or_default();
    SharingPattern::from_name(name).unwrap_or_else(|e| panic!("atlas run id {run_id:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_machine_grid_is_valid_and_diverse() {
        let machines = atlas_machines();
        assert!(machines.len() >= 3, "need >= 3 machine points");
        for m in &machines {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
        // Thin-socket point really has 1-core sockets.
        assert!(machines.iter().any(|m| m.topo.cores_per_socket() == 1));
        // Remote latency spans native NUMA to the 1 µs point.
        let lats: Vec<u64> = machines.iter().map(|m| m.lat.intersocket).collect();
        assert!(lats.contains(&330) && lats.contains(&600) && lats.contains(&3300));
    }

    #[test]
    fn atlas_specs_are_per_pattern_deterministic() {
        for (i, &p) in SharingPattern::ALL.iter().enumerate() {
            assert_eq!(atlas_spec(p, i, 7), atlas_spec(p, i, 7));
            assert_ne!(atlas_spec(p, i, 7).seed, atlas_spec(p, i, 8).seed);
        }
    }
}
