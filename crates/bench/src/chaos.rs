//! Deterministic wire-level fault injection for `warden-serve`.
//!
//! [`ChaosProxy`] is an in-process TCP proxy (std::net only) that sits
//! between the load generator and a server and injects the transport
//! faults a resilient system must absorb:
//!
//! | fault           | mechanics |
//! |-----------------|-----------|
//! | torn frame      | forward a prefix of the response — often mid-header — then close |
//! | partial writes  | deliver the response in 1–3 byte chunks with pauses |
//! | byte delay      | stall a few milliseconds every few dozen bytes |
//! | slow loris      | forward a prefix of the *request*, then hold the connection half-open past the server's stall bound |
//! | reset           | close abruptly mid-flight, deeper into the stream |
//!
//! Fault plans are chosen per connection from a seeded xorshift64* stream
//! (`seed ^ connection-ordinal` through splitmix64), so a run's fault mix
//! is reproducible from its seed alone. Roughly `1/fault_one_in`
//! connections are sabotaged; the rest pump cleanly, which keeps every
//! request completable through client retries (each retry re-dials and
//! draws a fresh plan). [`ChaosProxy::stop`] tears everything down and
//! returns the tally of injected faults as a [`ChaosReport`].

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where the proxy forwards accepted connections.
#[derive(Clone, Debug)]
pub enum Upstream {
    /// A TCP address (`host:port`).
    Tcp(String),
    /// A Unix-socket path.
    Uds(PathBuf),
}

/// Tuning for a [`ChaosProxy`].
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Roughly one connection in this many draws a fault (0 disables all
    /// faults — the proxy becomes a transparent relay).
    pub fault_one_in: u32,
    /// How long a slow-loris connection is held half-open before the proxy
    /// finally closes it. Must exceed the server's frame-stall bound for
    /// the fault to bite.
    pub loris_hold: Duration,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            fault_one_in: 3,
            loris_hold: Duration::from_secs(1),
        }
    }
}

/// How many connections drew each fault class, reported by
/// [`ChaosProxy::stop`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosReport {
    /// Connections accepted in total.
    pub connections: u64,
    /// Connections relayed without any fault.
    pub clean: u64,
    /// Responses truncated mid-frame before an abrupt close.
    pub torn_frames: u64,
    /// Responses delivered in tiny pause-separated chunks.
    pub partial_writes: u64,
    /// Responses trickled with per-batch delays.
    pub byte_delays: u64,
    /// Requests held half-open past the server's stall bound.
    pub slow_loris: u64,
    /// Connections closed abruptly deeper into the stream.
    pub resets: u64,
}

impl ChaosReport {
    /// Faulted connections (everything but `clean`).
    pub fn faulted(&self) -> u64 {
        self.connections.saturating_sub(self.clean)
    }
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    clean: AtomicU64,
    torn_frames: AtomicU64,
    partial_writes: AtomicU64,
    byte_delays: AtomicU64,
    slow_loris: AtomicU64,
    resets: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ChaosReport {
        ChaosReport {
            connections: self.connections.load(Ordering::Relaxed),
            clean: self.clean.load(Ordering::Relaxed),
            torn_frames: self.torn_frames.load(Ordering::Relaxed),
            partial_writes: self.partial_writes.load(Ordering::Relaxed),
            byte_delays: self.byte_delays.load(Ordering::Relaxed),
            slow_loris: self.slow_loris.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// The per-direction behavior a connection's fault plan selects.
enum PumpFault {
    /// Relay faithfully.
    None,
    /// Relay in `max_chunk`-byte slices with `pause` between them.
    Chunked { max_chunk: usize, pause: Duration },
    /// Relay faithfully but sleep `pause` after every read batch.
    Delayed { pause: Duration },
    /// Forward exactly `after` bytes, then close both directions.
    CutThenClose { after: u64 },
    /// Forward exactly `after` bytes, then go silent holding the
    /// connection half-open for `hold` before closing.
    CutThenHold { after: u64, hold: Duration },
}

/// Both halves of a proxied stream: TCP on the client side, TCP or Unix
/// socket upstream.
trait Wire: Read + Write + Send {
    fn clone_wire(&self) -> std::io::Result<Box<dyn Wire>>;
    fn shut_both(&self);
}

impl Wire for TcpStream {
    fn clone_wire(&self) -> std::io::Result<Box<dyn Wire>> {
        self.try_clone().map(|s| Box::new(s) as Box<dyn Wire>)
    }
    fn shut_both(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

#[cfg(unix)]
impl Wire for UnixStream {
    fn clone_wire(&self) -> std::io::Result<Box<dyn Wire>> {
        self.try_clone().map(|s| Box::new(s) as Box<dyn Wire>)
    }
    fn shut_both(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

/// The poll tick every blocking wait in the proxy runs at, so `stop` is
/// honored promptly.
const TICK: Duration = Duration::from_millis(10);

fn dial(upstream: &Upstream) -> std::io::Result<Box<dyn Wire>> {
    match upstream {
        Upstream::Tcp(addr) => {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true)?;
            s.set_read_timeout(Some(TICK))?;
            Ok(Box::new(s))
        }
        #[cfg(unix)]
        Upstream::Uds(path) => {
            let s = UnixStream::connect(path)?;
            s.set_read_timeout(Some(TICK))?;
            Ok(Box::new(s))
        }
        #[cfg(not(unix))]
        Upstream::Uds(_) => Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "Unix sockets are unavailable on this platform",
        )),
    }
}

/// Relay `from` into `to` under `fault` until EOF, error, a cut point, or
/// `stop`. Any terminal condition closes **both** streams in **both**
/// directions so the sibling pump unblocks too.
fn pump(mut from: Box<dyn Wire>, mut to: Box<dyn Wire>, fault: PumpFault, stop: Arc<AtomicBool>) {
    let mut buf = [0u8; 4096];
    let mut forwarded: u64 = 0;
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let batch = &buf[..n];
        let deliver: &[u8] = match &fault {
            PumpFault::CutThenClose { after } | PumpFault::CutThenHold { after, .. } => {
                let room = after.saturating_sub(forwarded);
                &batch[..batch.len().min(room as usize)]
            }
            _ => batch,
        };
        let ok = match &fault {
            PumpFault::Chunked { max_chunk, pause } => {
                let mut all = true;
                for chunk in deliver.chunks((*max_chunk).max(1)) {
                    if stop.load(Ordering::Relaxed) || to.write_all(chunk).is_err() {
                        all = false;
                        break;
                    }
                    let _ = to.flush();
                    std::thread::sleep(*pause);
                }
                all
            }
            _ => to.write_all(deliver).and_then(|()| to.flush()).is_ok(),
        };
        if !ok {
            break;
        }
        forwarded += deliver.len() as u64;
        match &fault {
            PumpFault::Delayed { pause } => std::thread::sleep(*pause),
            PumpFault::CutThenClose { after } if forwarded >= *after => break,
            PumpFault::CutThenHold { after, hold } if forwarded >= *after => {
                // Half-open: stay silent without closing, so the peer's
                // stall defense — not an EOF — has to reclaim the slot.
                let held = Instant::now();
                while held.elapsed() < *hold && !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(TICK.min(*hold));
                }
                break;
            }
            _ => {}
        }
    }
    from.shut_both();
    to.shut_both();
}

/// The fault-injecting TCP proxy. Bind with [`ChaosProxy::start`], point
/// clients at [`ChaosProxy::addr`], and call [`ChaosProxy::stop`] for the
/// fault tally.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    counters: Arc<Counters>,
}

impl ChaosProxy {
    /// Bind a loopback listener and start proxying to `upstream` with the
    /// fault mix `cfg` describes.
    pub fn start(upstream: Upstream, cfg: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let acceptor = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || accept_loop(listener, upstream, cfg, stop, counters))?
        };
        Ok(ChaosProxy {
            addr,
            stop,
            acceptor: Some(acceptor),
            counters,
        })
    }

    /// The loopback address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fault tally so far (the proxy keeps running).
    pub fn report(&self) -> ChaosReport {
        self.counters.snapshot()
    }

    /// Stop accepting, tear down every live connection, join all pump
    /// threads, and return the final fault tally.
    pub fn stop(mut self) -> ChaosReport {
        self.shutdown();
        self.counters.snapshot()
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: Upstream,
    cfg: ChaosConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    let mut ordinal: u64 = 0;
    while !stop.load(Ordering::Relaxed) {
        let client = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                pumps.retain(|h| !h.is_finished());
                std::thread::sleep(TICK);
                continue;
            }
            Err(_) => break,
        };
        if client.set_nodelay(true).is_err() || client.set_read_timeout(Some(TICK)).is_err() {
            continue;
        }
        let server = match dial(&upstream) {
            Ok(s) => s,
            Err(_) => continue, // client sees a reset and retries
        };
        counters.connections.fetch_add(1, Ordering::Relaxed);
        let mut rng = splitmix64(cfg.seed ^ ordinal);
        ordinal += 1;
        let (c2s, s2c) = choose_plan(&mut rng, &cfg, &counters);
        let (Ok(client_rd), Ok(server_rd)) = (client.clone_wire(), server.clone_wire()) else {
            continue;
        };
        let up = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("chaos-c2s".into())
                .spawn(move || pump(client_rd, server, c2s, stop))
        };
        let down = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("chaos-s2c".into())
                .spawn(move || pump(server_rd, Box::new(client), s2c, stop))
        };
        pumps.extend([up, down].into_iter().flatten());
    }
    for h in pumps {
        let _ = h.join();
    }
}

/// Draw one connection's fault plan: `(client→server, server→client)`.
/// Response-side faults (tear, chunking, delay, reset) exercise the
/// resilient client; the slow loris goes on the request side, where the
/// server's stall bound has to reclaim the half-open connection.
fn choose_plan(rng: &mut u64, cfg: &ChaosConfig, counters: &Counters) -> (PumpFault, PumpFault) {
    let roll = xorshift(rng);
    if cfg.fault_one_in == 0 || !roll.is_multiple_of(cfg.fault_one_in as u64) {
        counters.clean.fetch_add(1, Ordering::Relaxed);
        return (PumpFault::None, PumpFault::None);
    }
    let detail = xorshift(rng);
    match (roll >> 32) % 5 {
        0 => {
            counters.torn_frames.fetch_add(1, Ordering::Relaxed);
            // Inside or just past the 9-byte frame header: the client sees
            // a syntactically torn frame, not merely a short payload.
            let after = 1 + detail % 12;
            (PumpFault::None, PumpFault::CutThenClose { after })
        }
        1 => {
            counters.partial_writes.fetch_add(1, Ordering::Relaxed);
            let plan = PumpFault::Chunked {
                max_chunk: 1 + (detail % 3) as usize,
                pause: Duration::from_millis(1),
            };
            (PumpFault::None, plan)
        }
        2 => {
            counters.byte_delays.fetch_add(1, Ordering::Relaxed);
            let plan = PumpFault::Delayed {
                pause: Duration::from_millis(2 + detail % 7),
            };
            (PumpFault::None, plan)
        }
        3 => {
            counters.slow_loris.fetch_add(1, Ordering::Relaxed);
            let plan = PumpFault::CutThenHold {
                after: 1 + detail % 8,
                hold: cfg.loris_hold,
            };
            (plan, PumpFault::None)
        }
        _ => {
            counters.resets.fetch_add(1, Ordering::Relaxed);
            let after = 9 + detail % 192;
            (PumpFault::None, PumpFault::CutThenClose { after })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// An echo upstream: reads bytes, writes them straight back.
    fn echo_upstream() -> (Upstream, JoinHandle<()>, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        listener.set_nonblocking(true).expect("nonblocking");
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut workers = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut s, _)) => {
                            s.set_read_timeout(Some(TICK)).expect("timeout");
                            let stop = Arc::clone(&stop);
                            workers.push(std::thread::spawn(move || {
                                let mut buf = [0u8; 1024];
                                loop {
                                    if stop.load(Ordering::Relaxed) {
                                        return;
                                    }
                                    match s.read(&mut buf) {
                                        Ok(0) => return,
                                        Ok(n) => {
                                            if s.write_all(&buf[..n]).is_err() {
                                                return;
                                            }
                                        }
                                        Err(e)
                                            if e.kind() == std::io::ErrorKind::WouldBlock
                                                || e.kind() == std::io::ErrorKind::TimedOut =>
                                        {
                                            continue
                                        }
                                        Err(_) => return,
                                    }
                                }
                            }));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(TICK)
                        }
                        Err(_) => return,
                    }
                }
                for w in workers {
                    let _ = w.join();
                }
            })
        };
        (Upstream::Tcp(addr.to_string()), handle, stop)
    }

    #[test]
    fn a_faultless_proxy_is_a_transparent_relay() {
        let (upstream, echo, echo_stop) = echo_upstream();
        let proxy = ChaosProxy::start(
            upstream,
            ChaosConfig {
                fault_one_in: 0, // relay only
                ..ChaosConfig::default()
            },
        )
        .expect("proxy start");

        let mut conn = TcpStream::connect(proxy.addr()).expect("connect proxy");
        conn.write_all(b"through the relay").expect("write");
        let mut back = [0u8; 17];
        conn.read_exact(&mut back).expect("echo back");
        assert_eq!(&back, b"through the relay");
        drop(conn);

        let report = proxy.stop();
        assert_eq!(report.connections, 1);
        assert_eq!(report.clean, 1);
        assert_eq!(report.faulted(), 0);

        echo_stop.store(true, Ordering::Relaxed);
        let _ = echo.join();
    }

    #[test]
    fn the_same_seed_draws_the_same_fault_mix() {
        let cfg = ChaosConfig::default();
        // The plan *sequence* (one class index per connection ordinal) is a
        // pure function of the seed.
        let draw = |seed: u64| -> Vec<usize> {
            (0..64u64)
                .map(|ordinal| {
                    let counters = Counters::default();
                    let mut rng = splitmix64(seed ^ ordinal);
                    let _ = choose_plan(&mut rng, &cfg, &counters);
                    let r = counters.snapshot();
                    [
                        r.clean,
                        r.torn_frames,
                        r.partial_writes,
                        r.byte_delays,
                        r.slow_loris,
                        r.resets,
                    ]
                    .iter()
                    .position(|&c| c == 1)
                    .expect("every connection draws exactly one plan")
                })
                .collect()
        };
        assert_eq!(draw(7), draw(7), "identical seeds, identical sequences");
        assert_ne!(
            draw(7),
            draw(8),
            "different seeds should shuffle the sequence (64 draws cannot all tie)"
        );
        assert!(draw(7).iter().any(|&c| c != 0), "some faults at 1-in-3");
    }

    #[test]
    fn a_torn_connection_still_delivers_the_prefix_then_closes() {
        let (upstream, echo, echo_stop) = echo_upstream();
        let proxy = ChaosProxy::start(
            upstream,
            ChaosConfig {
                fault_one_in: 1, // every connection faulted
                seed: 3,         // seed 3, ordinal 0 draws a torn frame (checked below)
                loris_hold: Duration::from_millis(50),
            },
        )
        .expect("proxy start");

        // Hammer a handful of connections; every fault class must let the
        // connection die rather than wedge, and the proxy must absorb the
        // mess without leaking threads past `stop`.
        for _ in 0..6 {
            let mut conn = match TcpStream::connect(proxy.addr()) {
                Ok(c) => c,
                Err(_) => continue,
            };
            conn.set_read_timeout(Some(Duration::from_millis(400)))
                .expect("timeout");
            let _ = conn.write_all(&[0xAB; 64]);
            let mut sink = [0u8; 256];
            // Read until close, error or timeout — tolerated all the same.
            while let Ok(n) = conn.read(&mut sink) {
                if n == 0 {
                    break;
                }
            }
        }
        let report = proxy.stop();
        assert_eq!(report.connections, 6);
        assert_eq!(report.clean, 0, "fault_one_in=1 spares nobody");
        assert_eq!(report.faulted(), 6);

        echo_stop.store(true, Ordering::Relaxed);
        let _ = echo.join();
    }
}
