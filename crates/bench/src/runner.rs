//! Running benchmarks under both protocols and collecting comparisons.

use crate::args::HarnessArgs;
use crate::error::HarnessError;
use warden_coherence::ProtocolId;
use warden_pbbs::{Bench, Scale};
use warden_rt::TraceProgram;
use warden_sim::{simulate, Comparison, FaultPlan, MachineConfig, SimOptions, SimOutcome};

/// Scale selection shared by the harness binaries (`--scale tiny` on the
/// command line switches every figure to fast test inputs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SuiteScale {
    /// Unit-test inputs, seconds for the whole set.
    Tiny,
    /// The evaluation inputs.
    #[default]
    Paper,
}

impl SuiteScale {
    /// Parse from process arguments (`--scale tiny|paper`, default paper).
    ///
    /// Parsing is strict: an unrecognized `--` flag anywhere on the command
    /// line is rejected with an error listing the valid flags
    /// ([`crate::args::VALID_FLAGS`]) — a typo like `--scael` fails the run
    /// instead of silently selecting the default.
    pub fn from_args() -> Result<SuiteScale, HarnessError> {
        Ok(HarnessArgs::parse()?.scale)
    }

    /// The pbbs scale this maps to.
    pub fn pbbs(self) -> Scale {
        match self {
            SuiteScale::Tiny => Scale::Tiny,
            SuiteScale::Paper => Scale::Paper,
        }
    }
}

/// Robustness switches shared by the harness binaries: `--check` turns on
/// the coherence invariant checker for every simulated run, and
/// `--faults <seed>` replays the run under the benign seeded fault plan
/// (CAM-exhaustion storms, forced reconciliations, latency spikes, degraded
/// links) — none of which may change the final memory image.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Enable the invariant checker ([`SimOptions::check`]).
    pub check: bool,
    /// Seed for [`FaultPlan::benign`], if fault injection was requested.
    pub faults: Option<u64>,
    /// Enable the observability recorder ([`SimOptions::obs`]): every run
    /// carries a protocol-event timeline, metrics registry, and per-epoch
    /// summaries in its outcome. Passive — stats and the final memory image
    /// are bit-identical with it on or off.
    pub obs: bool,
    /// Event lanes ([`SimOptions::lanes`]): shard the scheduler's core
    /// selection into this many per-socket lanes merged in canonical
    /// `(clock, core, seq)` order. `0`/`1` mean the plain sequential scan;
    /// any lane count replays bit-identically.
    pub lanes: usize,
}

impl RunOptions {
    /// Parse from process arguments (`--check`, `--faults <seed>`).
    ///
    /// Parsing is strict: an unparsable seed or an unrecognized `--` flag
    /// is a hard error listing the valid flags
    /// ([`crate::args::VALID_FLAGS`]) — a typo like `--chek` fails the run
    /// instead of silently proceeding unchecked.
    pub fn from_args() -> Result<RunOptions, HarnessError> {
        Ok(HarnessArgs::parse()?.run)
    }

    /// The simulator options these switches select.
    pub fn sim_options(&self) -> SimOptions {
        SimOptions {
            check: self.check,
            faults: self.faults.map(FaultPlan::benign),
            obs: self.obs,
            lanes: self.lanes,
            ..SimOptions::default()
        }
    }
}

/// One benchmark's results on one machine: both runs and the comparison.
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// Which benchmark.
    pub bench: Bench,
    /// The MESI baseline run.
    pub mesi: SimOutcome,
    /// The WARDen run.
    pub warden: SimOutcome,
    /// Derived comparison (speedup, savings, reductions).
    pub cmp: Comparison,
}

/// Run one traced program under both protocols on `machine`.
///
/// # Panics
///
/// Panics if the two protocols produce different final memory images —
/// WARDen's reconciliation must be semantically transparent.
pub fn run_pair(
    name: &str,
    program: &TraceProgram,
    machine: &MachineConfig,
) -> (SimOutcome, SimOutcome, Comparison) {
    let mesi = simulate(program, machine, ProtocolId::Mesi);
    let warden = simulate(program, machine, ProtocolId::Warden);
    assert_eq!(
        mesi.memory_image_digest, warden.memory_image_digest,
        "{name}: protocols disagree on the final memory image"
    );
    let cmp = Comparison::of(name, &mesi, &warden);
    (mesi, warden, cmp)
}

/// Trace and run one benchmark under both protocols.
pub fn run_bench(bench: Bench, scale: Scale, machine: &MachineConfig) -> BenchRun {
    let program = bench.build(scale);
    let (mesi, warden, cmp) = run_pair(bench.name(), &program, machine);
    BenchRun {
        bench,
        mesi,
        warden,
        cmp,
    }
}

/// Run a set of benchmarks in-process, printing one progress line each.
///
/// This is the unsupervised path kept for tests and library callers; the
/// harness binaries route through [`crate::campaign::campaign_suite`],
/// which adds panic isolation, watchdog deadlines, retries and durable
/// crash-safe resume.
pub fn suite(benches: &[Bench], scale: Scale, machine: &MachineConfig) -> Vec<BenchRun> {
    benches
        .iter()
        .map(|&b| {
            eprint!("  {:<14}\r", b.name());
            run_bench(b, scale, machine)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_consistent_images() {
        let m = MachineConfig::single_socket().with_cores(2);
        let r = run_bench(Bench::MakeArray, Scale::Tiny, &m);
        assert!(r.cmp.speedup > 0.5);
        assert_eq!(r.mesi.memory_image_digest, r.warden.memory_image_digest);
    }

    #[test]
    fn run_options_select_sim_options() {
        let o = RunOptions {
            check: true,
            faults: Some(7),
            obs: true,
            lanes: 4,
        };
        let s = o.sim_options();
        assert!(s.check);
        assert!(s.obs);
        assert_eq!(s.lanes, 4);
        assert_eq!(s.faults.as_ref().map(|p| p.seed), Some(7));
        assert!(s.faults.unwrap().is_benign());
        let d = RunOptions::default().sim_options();
        assert!(!d.check && d.faults.is_none() && !d.obs);
        assert_eq!(d.lanes, 0, "default is the sequential scan");
    }

    #[test]
    fn scale_parsing_defaults_to_paper() {
        assert_eq!(SuiteScale::Paper.pbbs(), Scale::Paper);
        assert_eq!(SuiteScale::Tiny.pbbs(), Scale::Tiny);
    }
}
