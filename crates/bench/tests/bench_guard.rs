//! Replay-throughput guard: the observability subsystem is compiled into
//! every build, and this test holds it to its zero-cost-when-disabled
//! promise — replay throughput on the guarded kernels (obs off, the
//! default) must stay within [`FLOOR`] of the committed
//! `BENCH_hotpath.json` medians, both sequential and laned.
//!
//! The real gate only runs in release builds (`cargo test --release
//! --test bench_guard`): a debug build is ~10x slower than the release
//! baselines and would measure the optimizer, not the code. Debug builds
//! instead verify the committed report parses and covers every guarded
//! kernel, so tier-1 `cargo test` still catches a broken or stale baseline
//! file.

use warden_bench::hotpath::{
    baseline_machine, measure_kernel_laned, parse_laned, parse_report, KernelSample, LANED_LANES,
};
use warden_coherence::ProtocolId;
use warden_pbbs::Bench;

/// The kernels the guard tracks: the paper's divide-and-conquer classic,
/// the widest-footprint kernel, and the deepest task tree.
const GUARDED: &[Bench] = &[Bench::Fib, Bench::SuffixArray, Bench::Nqueens];

/// Minimum acceptable fraction of the committed throughput. Calibrated to
/// the CI box, not to wishful thinking: back-to-back captures of an
/// *identical* build measure a run-to-run spread of up to 1.37x (the
/// committed baseline is already the per-cell minimum of three captures —
/// see EXPERIMENTS.md), so a tight gate would fail on weather. 0.80
/// still catches the structural regressions this guard exists for: obs
/// accidentally costing when disabled, lane bookkeeping leaking into the
/// sequential path, or a data-layout regression (the §7e flat-index work
/// was worth ≥1.5x — effects of that size cannot hide under 20%).
#[cfg(not(debug_assertions))]
const FLOOR: f64 = 0.80;

fn protocol_name(p: ProtocolId) -> &'static str {
    match p {
        ProtocolId::Mesi => "mesi",
        ProtocolId::Warden => "warden",
        _ => unreachable!("the baseline only records mesi and warden"),
    }
}

fn committed_json() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {path}: {e}"))
}

fn committed_baseline() -> Vec<KernelSample> {
    parse_report(&committed_json()).expect("committed baseline parses")
}

fn committed_laned() -> Vec<KernelSample> {
    parse_laned(&committed_json())
        .expect("committed baseline parses")
        .expect("committed baseline carries a laned section")
}

/// Measure the guarded kernels at `lanes` and hold each above [`FLOOR`]
/// of its sample in `baseline`. Shared by the sequential and laned
/// release gates.
#[cfg(not(debug_assertions))]
fn guard_against(baseline: &[KernelSample], lanes: usize, what: &str) {
    use warden_pbbs::Scale;

    let machine = baseline_machine();
    let mut failures = Vec::new();
    for &bench in GUARDED {
        for protocol in [ProtocolId::Mesi, ProtocolId::Warden] {
            let proto = protocol_name(protocol);
            let base = baseline
                .iter()
                .find(|s| s.kernel == bench.name() && s.protocol == proto)
                .unwrap_or_else(|| panic!("no {what} sample for {}/{proto}", bench.name()));
            // Wall-clock noise on a shared machine can sink one attempt;
            // a genuine regression sinks all of them. Keep the best, and
            // back off between retries so a single multi-second contention
            // burst (VM steal time) cannot cover the whole window.
            let mut best = 0.0f64;
            for backoff_ms in [0u64, 100, 300, 1000, 3000] {
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                let s = measure_kernel_laned(bench, Scale::Paper, &machine, protocol, 5, lanes);
                best = best.max(s.events_per_sec);
                if best >= FLOOR * base.events_per_sec {
                    break;
                }
            }
            let ratio = best / base.events_per_sec;
            if ratio < FLOOR {
                failures.push(format!(
                    "  {}/{proto}: {:.1}% of {what} ({:.0} vs {:.0} events/s)",
                    bench.name(),
                    ratio * 100.0,
                    best,
                    base.events_per_sec
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "replay throughput fell below {:.0}% of BENCH_hotpath.json ({what}):\n{}\n\
         (if the regression is intentional, regenerate the baseline with \
         `bench_baseline --scale paper --runs 15 --out BENCH_hotpath.json`)",
        FLOOR * 100.0,
        failures.join("\n")
    );
}

// One test, not two: the harness runs `#[test]`s of a binary on parallel
// threads, and two concurrent measurement loops on a small CI box would
// contend with each other and fail both gates on noise.
#[cfg(not(debug_assertions))]
#[test]
fn replay_throughput_stays_above_the_guard_floor() {
    guard_against(&committed_baseline(), 1, "sequential baseline");
    guard_against(&committed_laned(), LANED_LANES, "laned baseline");
}

#[cfg(debug_assertions)]
#[test]
fn committed_baseline_parses_and_covers_the_guarded_kernels() {
    use warden_pbbs::Scale;

    let baseline = committed_baseline();
    let laned = committed_laned();
    for &bench in GUARDED {
        for protocol in [ProtocolId::Mesi, ProtocolId::Warden] {
            let proto = protocol_name(protocol);
            assert!(
                baseline
                    .iter()
                    .any(|s| s.kernel == bench.name() && s.protocol == proto),
                "committed baseline is missing {}/{proto}",
                bench.name()
            );
            assert!(
                laned
                    .iter()
                    .any(|s| s.kernel == bench.name() && s.protocol == proto),
                "committed laned section is missing {}/{proto}",
                bench.name()
            );
        }
    }
    // Measurement machinery still works end to end (one tiny run; the 3%
    // gate itself is release-only).
    let s = measure_kernel_laned(
        Bench::Fib,
        Scale::Tiny,
        &baseline_machine(),
        ProtocolId::Mesi,
        1,
        LANED_LANES,
    );
    assert!(s.events > 0 && s.events_per_sec > 0.0);
}
