//! Replay-throughput guard: the observability subsystem is compiled into
//! every build, and this test holds it to its zero-cost-when-disabled
//! promise — replay throughput on the guarded kernels (obs off, the
//! default) must stay within 3% of the committed `BENCH_hotpath.json`
//! medians.
//!
//! The real gate only runs in release builds (`cargo test --release
//! --test bench_guard`): a debug build is ~10x slower than the release
//! baselines and would measure the optimizer, not the code. Debug builds
//! instead verify the committed report parses and covers every guarded
//! kernel, so tier-1 `cargo test` still catches a broken or stale baseline
//! file.

use warden_bench::hotpath::{baseline_machine, measure_kernel, parse_report, KernelSample};
use warden_coherence::Protocol;
use warden_pbbs::Bench;

/// The kernels the guard tracks: the paper's divide-and-conquer classic,
/// the widest-footprint kernel, and the deepest task tree.
const GUARDED: &[Bench] = &[Bench::Fib, Bench::SuffixArray, Bench::Nqueens];

fn protocol_name(p: Protocol) -> &'static str {
    match p {
        Protocol::Mesi => "mesi",
        Protocol::Warden => "warden",
        _ => unreachable!("the baseline only records mesi and warden"),
    }
}

fn committed_baseline() -> Vec<KernelSample> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {path}: {e}"));
    parse_report(&json).expect("committed baseline parses")
}

#[cfg(not(debug_assertions))]
#[test]
fn replay_throughput_with_obs_compiled_in_stays_within_3_percent() {
    use warden_pbbs::Scale;

    let baseline = committed_baseline();
    let machine = baseline_machine();
    let mut failures = Vec::new();
    for &bench in GUARDED {
        for protocol in [Protocol::Mesi, Protocol::Warden] {
            let proto = protocol_name(protocol);
            let base = baseline
                .iter()
                .find(|s| s.kernel == bench.name() && s.protocol == proto)
                .unwrap_or_else(|| panic!("no baseline sample for {}/{proto}", bench.name()));
            // Wall-clock noise on a shared machine can sink one attempt;
            // a genuine regression sinks all of them. Keep the best, and
            // back off between retries so a single multi-second contention
            // burst (VM steal time) cannot cover the whole window.
            let mut best = 0.0f64;
            for backoff_ms in [0u64, 100, 300, 1000, 3000] {
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                let s = measure_kernel(bench, Scale::Paper, &machine, protocol, 5);
                best = best.max(s.events_per_sec);
                if best >= 0.97 * base.events_per_sec {
                    break;
                }
            }
            let ratio = best / base.events_per_sec;
            if ratio < 0.97 {
                failures.push(format!(
                    "  {}/{proto}: {:.1}% of baseline ({:.0} vs {:.0} events/s)",
                    bench.name(),
                    ratio * 100.0,
                    best,
                    base.events_per_sec
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "replay throughput regressed beyond 3% of BENCH_hotpath.json:\n{}\n\
         (if the regression is intentional, regenerate the baseline with \
         `bench_baseline --scale paper --runs 15 --out BENCH_hotpath.json`)",
        failures.join("\n")
    );
}

#[cfg(debug_assertions)]
#[test]
fn committed_baseline_parses_and_covers_the_guarded_kernels() {
    use warden_pbbs::Scale;

    let baseline = committed_baseline();
    for &bench in GUARDED {
        for protocol in [Protocol::Mesi, Protocol::Warden] {
            let proto = protocol_name(protocol);
            assert!(
                baseline
                    .iter()
                    .any(|s| s.kernel == bench.name() && s.protocol == proto),
                "committed baseline is missing {}/{proto}",
                bench.name()
            );
        }
    }
    // Measurement machinery still works end to end (one tiny run; the 3%
    // gate itself is release-only).
    let s = measure_kernel(
        Bench::Fib,
        Scale::Tiny,
        &baseline_machine(),
        Protocol::Mesi,
        1,
    );
    assert!(s.events > 0 && s.events_per_sec > 0.0);
}
