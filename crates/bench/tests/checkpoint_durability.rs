//! End-to-end durability properties of the simulation checkpoint format:
//! a run snapshotted at *any* point resumes bit-identically, truncated or
//! corrupted checkpoints never load, and a torn current slot falls back to
//! the previous good snapshot.

use proptest::prelude::*;
use warden_coherence::ProtocolId;
use warden_rt::{trace_program, RtOptions, TraceProgram};
use warden_sim::{simulate_with_options, CheckpointStore, MachineConfig, SimEngine, SimOptions};

/// A parameterized tabulate+reduce workload: fork/join structure, shared
/// reads, and result flow — enough to exercise caches, regions and the
/// scheduler in a few thousand engine steps.
fn workload(n: u64, grain: u64) -> TraceProgram {
    trace_program("ckpt-prop", RtOptions::default(), move |ctx| {
        let xs = ctx.tabulate::<u64>(n, grain, &|c, i| {
            c.work(4);
            i.wrapping_mul(0x9e37_79b9) ^ 0x55
        });
        let _ = ctx.reduce(
            0,
            n,
            grain,
            &|c, i| c.read(&xs, i),
            &|a, b| a.wrapping_add(b),
            0,
        );
    })
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("warden-durability-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Pause after an arbitrary number of steps, snapshot, resume from the
    /// bytes, and finish: the result must match an uninterrupted reference
    /// run exactly — stats, energy, and the final memory image.
    #[test]
    fn snapshot_at_any_prefix_resumes_identically(
        n in 64u64..512,
        grain in 8u64..64,
        pause in 0u64..5_000,
        proto in 0usize..3,
    ) {
        let protocol = [ProtocolId::Msi, ProtocolId::Mesi, ProtocolId::Warden][proto];
        let p = workload(n, grain);
        let m = MachineConfig::dual_socket().with_cores(2);
        let opts = SimOptions::default();
        let reference = simulate_with_options(&p, &m, protocol, &opts);

        let mut eng = SimEngine::new(&p, &m, protocol, &opts);
        for _ in 0..pause {
            if !eng.step() {
                break;
            }
        }
        let bytes = eng.snapshot_to_bytes();
        drop(eng); // the interrupted process is gone

        let out = SimEngine::resume_from_bytes(&p, &m, protocol, &opts, &bytes)
            .expect("snapshot resumes")
            .run();
        prop_assert_eq!(&out.stats, &reference.stats);
        prop_assert_eq!(out.memory_image_digest, reference.memory_image_digest);
        prop_assert_eq!(&out.energy, &reference.energy);
    }

    /// A real engine checkpoint truncated at *every* byte prefix must be
    /// rejected, and flipped bytes (sampled) must never verify.
    #[test]
    fn truncated_and_corrupted_snapshots_never_load(
        n in 64u64..256,
        pause in 0u64..2_000,
    ) {
        let p = workload(n, 16);
        let m = MachineConfig::dual_socket().with_cores(2);
        let opts = SimOptions::default();
        let mut eng = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        for _ in 0..pause {
            if !eng.step() {
                break;
            }
        }
        let bytes = eng.snapshot_to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(
                SimEngine::resume_from_bytes(&p, &m, ProtocolId::Warden, &opts, &bytes[..cut])
                    .is_err(),
                "a {}-byte prefix of a {}-byte checkpoint must not load",
                cut,
                bytes.len()
            );
        }
        for i in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            prop_assert!(
                SimEngine::resume_from_bytes(&p, &m, ProtocolId::Warden, &opts, &bad).is_err(),
                "corrupting byte {} must be detected",
                i
            );
        }
    }
}

/// Kill-point drill through the on-disk store: tear `current.ckpt` at
/// sampled prefix lengths; recovery must fall back to the previous good
/// snapshot and still finish identical to the uninterrupted reference.
#[test]
fn torn_current_slot_falls_back_to_last_good_checkpoint() {
    let p = workload(300, 16);
    let m = MachineConfig::dual_socket().with_cores(2);
    let opts = SimOptions::default();
    let reference = simulate_with_options(&p, &m, ProtocolId::Warden, &opts);

    let dir = scratch("torn");
    let store = CheckpointStore::new(&dir).expect("create store");
    let mut eng = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
    for _ in 0..400 {
        assert!(eng.step(), "workload must outlast both snapshot points");
    }
    eng.try_snapshot(&store).expect("first snapshot");
    for _ in 0..400 {
        assert!(eng.step(), "workload must outlast both snapshot points");
    }
    eng.try_snapshot(&store).expect("second snapshot");
    drop(eng); // killed between checkpoints

    let full = std::fs::read(store.current_path()).expect("read current slot");
    let stride = (full.len() / 8).max(1);
    for cut in (0..full.len()).step_by(stride) {
        std::fs::write(store.current_path(), &full[..cut]).expect("tear current slot");
        let resumed = SimEngine::try_resume(&p, &m, ProtocolId::Warden, &opts, &store)
            .expect("fallback must succeed")
            .expect("previous slot must be present");
        assert!(
            resumed.steps() < 800,
            "must have fallen back to the older snapshot"
        );
        let out = resumed.run();
        assert_eq!(out.stats, reference.stats, "torn at {cut} bytes");
        assert_eq!(out.memory_image_digest, reference.memory_image_digest);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
