//! Supervisor-level crash drills for the benchmark campaign runner: a
//! killed campaign resumes bit-identically from its durable records,
//! panicking runs are retried and isolated, and a deadline-cancelled run
//! continues from its mid-run checkpoint instead of restarting.

use std::path::{Path, PathBuf};
use std::time::Duration;

use warden_bench::{run_campaign, CampaignConfig, HarnessError, RunSpec, Workload};
use warden_coherence::ProtocolId;
use warden_pbbs::{Bench, Scale};
use warden_rt::{trace_program, RtOptions, TraceProgram};
use warden_sim::{simulate_with_options, MachineConfig, SimOptions};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "warden-campaign-test-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quiet_cfg(dir: PathBuf) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(dir);
    cfg.quiet = true;
    cfg.workers = 1;
    cfg.backoff = Duration::from_millis(1);
    cfg
}

/// A 2-benchmark × 2-protocol tiny matrix.
fn tiny_specs() -> Vec<RunSpec> {
    let machine = MachineConfig::dual_socket().with_cores(2);
    let mut specs = Vec::new();
    for bench in [Bench::MakeArray, Bench::Primes] {
        for (protocol, tag) in [(ProtocolId::Mesi, "mesi"), (ProtocolId::Warden, "warden")] {
            specs.push(RunSpec {
                id: format!("{}/{tag}", bench.name()),
                workload: Workload::bench(bench, Scale::Tiny),
                machine: machine.clone(),
                protocol,
                opts: SimOptions::default(),
            });
        }
    }
    specs
}

#[test]
fn aborted_campaign_resumes_bit_identically() {
    let specs = tiny_specs();

    let ref_dir = scratch("abort-ref");
    let reference = run_campaign(&specs, &quiet_cfg(ref_dir.clone())).expect("reference campaign");

    // Simulate a mid-campaign kill: the supervisor stops after one
    // completed run, leaving the other three queued.
    let dir = scratch("abort-victim");
    let mut cfg = quiet_cfg(dir.clone());
    cfg.abort_after_runs = Some(1);
    let err = run_campaign(&specs, &cfg).expect_err("aborted campaign must fail");
    assert!(
        matches!(err, HarnessError::Aborted { completed: 1 }),
        "unexpected error: {err}"
    );
    assert!(
        dir.join("manifest.json").is_file(),
        "the manifest must survive the kill"
    );

    // Second invocation: the completed run is reused from its record, the
    // rest are simulated, and everything matches the reference exactly.
    let resumed = run_campaign(&specs, &quiet_cfg(dir.clone())).expect("resumed campaign");
    assert_eq!(resumed.len(), reference.len());
    assert_eq!(
        resumed.iter().filter(|r| r.reused).count(),
        1,
        "exactly the killed invocation's completed run must be reused"
    );
    for (a, b) in resumed.iter().zip(&reference) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.outcome.stats, b.outcome.stats, "{}", a.id);
        assert_eq!(a.outcome.memory_image_digest, b.outcome.memory_image_digest);
        assert_eq!(a.outcome.energy, b.outcome.energy);
    }

    // Third invocation: everything comes from records, nothing re-runs.
    let third = run_campaign(&specs, &quiet_cfg(dir.clone())).expect("fully-recorded campaign");
    assert!(third.iter().all(|r| r.reused && r.attempts == 0));

    for d in [ref_dir, dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn panicking_runs_are_retried_and_failures_are_typed() {
    let specs = vec![tiny_specs().remove(0)];

    // One injected panic, two retries allowed: the run must recover on its
    // second attempt.
    let dir = scratch("chaos-recover");
    let mut cfg = quiet_cfg(dir.clone());
    cfg.chaos_panic_attempts = 1;
    cfg.retries = 2;
    let results = run_campaign(&specs, &cfg).expect("retry must recover from the panic");
    assert_eq!(results[0].attempts, 2);
    assert!(!results[0].reused);

    // Panics on every attempt: the campaign reports a typed failure naming
    // the run and its attempt count instead of crashing the supervisor.
    let dir2 = scratch("chaos-exhaust");
    let mut cfg = quiet_cfg(dir2.clone());
    cfg.chaos_panic_attempts = u32::MAX;
    cfg.retries = 1;
    let err = run_campaign(&specs, &cfg).expect_err("all attempts panic");
    match err {
        HarnessError::RunsFailed(fails) => {
            assert_eq!(fails.len(), 1);
            assert_eq!(fails[0].id, specs[0].id);
            assert_eq!(fails[0].attempts, 2);
            assert!(
                fails[0].reason.contains("chaos monkey"),
                "{}",
                fails[0].reason
            );
        }
        other => panic!("unexpected error: {other}"),
    }

    for d in [dir, dir2] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// A workload large enough that the supervisor writes mid-run checkpoints
/// long before it finishes.
fn big_program() -> TraceProgram {
    trace_program("deadline-tab", RtOptions::default(), |ctx| {
        let xs = ctx.tabulate::<u64>(30_000, 64, &|c, i| {
            c.work(2);
            i * 3 + 1
        });
        let _ = ctx.reduce(
            0,
            30_000,
            64,
            &|c, i| c.read(&xs, i),
            &|a, b| a.wrapping_add(b),
            0,
        );
    })
}

fn any_ckpt(dir: &Path) -> bool {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return false;
    };
    rd.flatten().any(|e| {
        let p = e.path();
        (p.is_dir() && any_ckpt(&p)) || p.extension().is_some_and(|x| x == "ckpt")
    })
}

#[test]
fn deadline_cancelled_run_resumes_from_checkpoint_and_completes() {
    let machine = MachineConfig::dual_socket().with_cores(2);
    let spec = RunSpec {
        id: "deadline/tab".into(),
        workload: Workload::custom("deadline-tab", big_program),
        machine: machine.clone(),
        protocol: ProtocolId::Warden,
        opts: SimOptions::default(),
    };
    let p = big_program();
    let reference = simulate_with_options(&p, &machine, ProtocolId::Warden, &SimOptions::default());

    // First invocation: an already-expired deadline and no retries. The
    // watchdog cancels the run after its first checkpoint batch, and the
    // snapshot taken at cancellation survives on disk.
    let dir = scratch("deadline");
    let mut cfg = quiet_cfg(dir.clone());
    cfg.deadline = Duration::ZERO;
    cfg.retries = 0;
    cfg.checkpoint_every_steps = 256;
    let err = run_campaign(std::slice::from_ref(&spec), &cfg).expect_err("deadline must cancel");
    match err {
        HarnessError::RunsFailed(fails) => {
            assert!(fails[0].reason.contains("deadline"), "{}", fails[0].reason);
        }
        other => panic!("unexpected error: {other}"),
    }
    assert!(
        any_ckpt(&dir),
        "a mid-run checkpoint must survive the cancelled attempt"
    );

    // Second invocation with a generous deadline: the run continues from
    // the checkpoint (not from scratch) and matches an uninterrupted
    // reference bit for bit.
    let mut cfg = quiet_cfg(dir.clone());
    cfg.checkpoint_every_steps = 256;
    let results =
        run_campaign(std::slice::from_ref(&spec), &cfg).expect("resume must complete the run");
    assert!(!results[0].reused);
    assert_eq!(results[0].outcome.stats, reference.stats);
    assert_eq!(
        results[0].outcome.memory_image_digest,
        reference.memory_image_digest
    );
    assert_eq!(results[0].outcome.energy, reference.energy);

    let _ = std::fs::remove_dir_all(&dir);
}
