//! An MPL-style fork-join runtime with a heap hierarchy, disentanglement
//! checking, and automatic WARD-region marking (paper §4).
//!
//! This crate is phase 1 of the two-phase simulation described in
//! `DESIGN.md`: programs written against [`TaskCtx`] execute *logically*
//! (sequentially, deterministically, with real data in simulated memory)
//! while the runtime records a fork-join DAG of per-task event traces. The
//! `warden-sim` crate then replays that DAG on a simulated multicore under
//! MESI or WARDen.
//!
//! The runtime reproduces the paper's language-side machinery:
//!
//! * a **spawn tree** of lightweight tasks created by [`TaskCtx::fork2`] and
//!   the [`TaskCtx::parallel_for`] / [`TaskCtx::tabulate`] /
//!   [`TaskCtx::reduce`] combinators (paper §2.1),
//! * a **heap hierarchy**: each task allocates into its own heap of
//!   bump-allocated pages, merged into the parent's heap at join
//!   (Figure 2),
//! * **disentanglement checking**: every access must target the task's own
//!   heap or an ancestor's (Definition 1) — violations panic,
//! * **WARD marking by construction** (§4.2): fresh leaf-heap pages are
//!   marked (`RegionAdd`), and the current heap is unmarked at every fork
//!   and at task completion (`RegionRemove` → reconciliation), all in the
//!   fork/alloc hooks — the "<100 lines of runtime changes",
//! * the **fork-path data flow of §5.3**: parents write child descriptors
//!   into their heap right before the unmark-at-fork flush; children read
//!   them at startup; results flow back through flushed result cells, and
//! * **declared WARD scopes** ([`TaskCtx::ward_scope`]): the explicit §3
//!   interface with a dynamic verifier of WARD condition 1 (no cross-task
//!   RAW).
//!
//! # Example
//!
//! ```
//! use warden_rt::{trace_program, RtOptions};
//!
//! // The paper's Figure 4 idea in miniature: racing same-value writes.
//! let program = trace_program("mini-sieve", RtOptions::default(), |ctx| {
//!     let flags = ctx.alloc::<u8>(64);
//!     ctx.parallel_for(0, 64, 8, &|ctx, i| {
//!         if i % 2 == 0 && i > 2 {
//!             ctx.write(&flags, i, 0); // multiples of two: composite
//!         }
//!         if i % 3 == 0 && i > 3 {
//!             ctx.write(&flags, i, 0); // multiples of three may race — same value
//!         }
//!     });
//! });
//! program.check_invariants().unwrap();
//! assert!(program.stats.accesses_in_ward > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ctx;
mod disentangle;
mod heap;
mod scalar;
pub mod summary;
mod trace;
pub mod trace_io;
pub mod workload;

pub use ctx::{trace_program, MarkPolicy, RtOptions, TaskCtx};
pub use disentangle::{CheckMode, WardViolation};
pub use scalar::{Scalar, SimSlice};
pub use summary::{summarize, TraceSummary};
pub use trace::{Event, RegionToken, RmwOp, RtStats, TaskId, TaskTrace, TraceProgram};
pub use trace_io::TraceDecodeError;
pub use workload::{SharingPattern, WorkloadGen, WorkloadGenError, WorkloadSpec};

use warden_mem::{Addr, PageAddr, PAGE_SIZE};

/// Iterate the pages covering `[start, end)` (both page-aligned).
pub(crate) fn pages_between(start: Addr, end: Addr) -> impl Iterator<Item = PageAddr> {
    let first = start.page();
    let n = (end.0 - start.0).div_ceil(PAGE_SIZE);
    (0..n).map(move |i| first + i)
}

/// A convenient alias for program entry points used across the benchmark
/// suite: a named, self-validating trace generator.
pub type ProgramFn = fn() -> TraceProgram;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork2_returns_both_results() {
        let p = trace_program("t", RtOptions::default(), |ctx| {
            let (a, b) = ctx.fork2(|_| 1u32, |_| 2u32);
            assert_eq!((a, b), (1, 2));
        });
        assert_eq!(p.stats.tasks, 3);
        assert_eq!(p.stats.forks, 1);
        p.check_invariants().unwrap();
    }

    #[test]
    fn nested_forks_build_tree() {
        let p = trace_program("t", RtOptions::default(), |ctx| {
            ctx.fork2(|c| c.fork2(|_| (), |_| ()), |_| ());
        });
        assert_eq!(p.stats.tasks, 5);
        assert_eq!(p.stats.max_depth, 2);
        p.check_invariants().unwrap();
    }

    #[test]
    fn writes_are_visible_in_final_memory() {
        let p = trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(3);
            ctx.write(&xs, 2, 99);
            assert_eq!(ctx.read(&xs, 2), 99);
        });
        // Find the value in the final image: it is somewhere in the
        // allocated range; easier to check via stats.
        assert!(p.stats.memory_accesses >= 2);
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let p = trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(100);
            ctx.parallel_for(0, 100, 7, &|ctx, i| {
                let old = ctx.read(&xs, i);
                ctx.write(&xs, i, old + 1);
            });
            for i in 0..100 {
                assert_eq!(ctx.peek(&xs, i), 1, "index {i}");
            }
        });
        p.check_invariants().unwrap();
    }

    #[test]
    fn reduce_computes_sum() {
        trace_program("t", RtOptions::default(), |ctx| {
            let s = ctx.reduce(0, 1000, 64, &|_ctx, i| i, &|a, b| a + b, 0);
            assert_eq!(s, 999 * 1000 / 2);
        });
    }

    #[test]
    fn tabulate_fills_array() {
        trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.tabulate::<u32>(50, 5, &|_ctx, i| (i * 3) as u32);
            for i in 0..50 {
                assert_eq!(ctx.peek(&xs, i), (i * 3) as u32);
            }
        });
    }

    #[test]
    fn regions_marked_and_all_removed() {
        let p = trace_program("t", RtOptions::default(), |ctx| {
            let _ = ctx.alloc::<u64>(1024);
            ctx.fork2(|c| c.alloc::<u64>(600).len(), |c| c.alloc::<u64>(600).len());
        });
        assert!(p.stats.regions_marked >= 3);
        p.check_invariants().unwrap(); // includes region add/remove balance
    }

    #[test]
    fn mark_policy_none_emits_no_regions() {
        let opts = RtOptions {
            mark: MarkPolicy::None,
            ..RtOptions::default()
        };
        let p = trace_program("t", opts, |ctx| {
            let _ = ctx.alloc::<u64>(4096);
        });
        assert_eq!(p.stats.regions_marked, 0);
        assert!(!p
            .tasks
            .iter()
            .flat_map(|t| &t.events)
            .any(|e| matches!(e, Event::RegionAdd { .. })));
    }

    #[test]
    #[should_panic(expected = "disentanglement violation")]
    fn sibling_access_is_disentanglement_violation() {
        trace_program("t", RtOptions::default(), |ctx| {
            // Child a allocates and leaks the handle to child b via the Rust
            // side channel; b's access must be caught.
            let mut handle = None;
            let (_, _) = ctx.fork2(|c| handle = Some(c.alloc::<u64>(8)), |_| ());
            // handle's heap merged into root now; create two fresh siblings
            // where one allocates and a *cousin line* reads it concurrently.
            let mut h2 = None;
            ctx.fork2(
                |c| {
                    h2 = Some(c.alloc::<u64>(8));
                    // Keep the task alive conceptually; nothing else.
                },
                |_| (),
            );
            // After the join both are merged; accessing them is fine. To get
            // a real violation we need a *live* sibling heap — do it inside
            // one fork2:
            let shared: std::cell::Cell<Option<SimSlice<u64>>> = std::cell::Cell::new(None);
            ctx.fork2(
                |c| {
                    let s = c.alloc::<u64>(8);
                    c.write(&s, 0, 1);
                    shared.set(Some(s));
                },
                |c| {
                    // Sibling reads memory owned by the (already completed
                    // but not yet merged) other child: violation.
                    if let Some(s) = shared.get() {
                        let _ = c.read(&s, 0);
                    }
                },
            );
        });
    }

    #[test]
    fn ancestor_access_is_allowed() {
        trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(64);
            ctx.parallel_for(0, 64, 4, &|c, i| c.write(&xs, i, i));
        });
    }

    #[test]
    #[should_panic(expected = "WARD violation")]
    fn ward_scope_flags_cross_task_raw() {
        trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(512);
            ctx.ward_scope(&xs, |ctx| {
                ctx.fork2(
                    |c| c.write(&xs, 0, 7),
                    |c| {
                        let _ = c.read(&xs, 0); // RAW across tasks: flagged
                    },
                );
            });
        });
    }

    #[test]
    fn ward_scope_allows_benign_waw() {
        let p = trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(512);
            ctx.ward_scope(&xs, |ctx| {
                ctx.fork2(|c| c.write(&xs, 3, 1), |c| c.write(&xs, 3, 1));
            });
            assert_eq!(ctx.peek(&xs, 3), 1);
        });
        p.check_invariants().unwrap();
    }

    #[test]
    fn scan_exclusive_computes_prefix_sums() {
        trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.tabulate::<u64>(300, 16, &|_c, i| i + 1);
            let total = ctx.scan_exclusive(&xs, 32);
            assert_eq!(total, 300 * 301 / 2);
            let mut acc = 0;
            for i in 0..300 {
                assert_eq!(ctx.peek(&xs, i), acc, "prefix at {i}");
                acc += i + 1;
            }
        });
    }

    #[test]
    fn scan_handles_short_and_ragged_inputs() {
        trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.tabulate::<u64>(1, 4, &|_c, _i| 9);
            assert_eq!(ctx.scan_exclusive(&xs, 4), 9);
            assert_eq!(ctx.peek(&xs, 0), 0);
            let ys = ctx.tabulate::<u64>(17, 4, &|_c, _i| 1);
            assert_eq!(ctx.scan_exclusive(&ys, 5), 17);
            assert_eq!(ctx.peek(&ys, 16), 16);
        });
    }

    #[test]
    fn drf_scope_allows_race_free_parallelism() {
        trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(256);
            ctx.drf_scope(&xs, |ctx| {
                ctx.parallel_for(0, 256, 32, &|c, i| c.write(&xs, i, i));
            });
        });
    }

    #[test]
    #[should_panic(expected = "WARD violation")]
    fn drf_scope_rejects_the_benign_waw_ward_allows() {
        // The §2.3 distinction made executable: the same racing same-value
        // writes pass `ward_scope` (see ward_scope_allows_benign_waw) but
        // fail `drf_scope`.
        trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(512);
            ctx.drf_scope(&xs, |ctx| {
                ctx.fork2(|c| c.write(&xs, 3, 1), |c| c.write(&xs, 3, 1));
            });
        });
    }

    #[test]
    fn check_mode_off_skips_discipline_checks() {
        // The same sibling leak that panics under Strict traces fine with
        // checking off (the trace itself is still well-formed).
        let opts = RtOptions {
            check: CheckMode::Off,
            ..RtOptions::default()
        };
        let p = trace_program("t", opts, |ctx| {
            let shared: std::cell::Cell<Option<SimSlice<u64>>> = std::cell::Cell::new(None);
            ctx.fork2(
                |c| {
                    let s = c.alloc::<u64>(8);
                    c.write(&s, 0, 1);
                    shared.set(Some(s));
                },
                |c| {
                    if let Some(s) = shared.get() {
                        let _ = c.read(&s, 0);
                    }
                },
            );
        });
        p.check_invariants().unwrap();
    }

    #[test]
    fn cas_success_and_failure() {
        trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(1);
            ctx.write(&xs, 0, 5);
            let (ok, old) = ctx.cas(&xs, 0, 5, 9);
            assert!(ok);
            assert_eq!(old, 5);
            let (ok, old) = ctx.cas(&xs, 0, 5, 11);
            assert!(!ok);
            assert_eq!(old, 9);
            assert_eq!(ctx.peek(&xs, 0), 9);
        });
    }

    #[test]
    fn fetch_add_accumulates() {
        trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(1);
            assert_eq!(ctx.fetch_add(&xs, 0, 5), 0);
            assert_eq!(ctx.fetch_add(&xs, 0, 2), 5);
            assert_eq!(ctx.peek(&xs, 0), 7);
        });
    }

    #[test]
    fn preload_populates_initial_memory() {
        let p = trace_program("t", RtOptions::default(), |ctx| {
            let input = ctx.preload(&[10u64, 20, 30]);
            assert_eq!(ctx.read(&input, 1), 20);
        });
        // The preloaded value is in the *initial* image (before any event).
        let lo = p.address_range.0;
        let found = (0..64).any(|off| p.initial_memory.read_u64(lo + off * 8) == 20);
        assert!(found, "preloaded data must be in the initial image");
    }

    #[test]
    #[should_panic(expected = "preload must precede")]
    fn late_preload_rejected() {
        trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(1);
            ctx.write(&xs, 0, 1);
            let _ = ctx.preload(&[1u64]);
        });
    }

    #[test]
    fn work_merges_consecutive_compute() {
        let p = trace_program("t", RtOptions::default(), |ctx| {
            ctx.work(5);
            ctx.work(7);
        });
        let computes: Vec<_> = p.tasks[0]
            .events
            .iter()
            .filter(|e| matches!(e, Event::Compute { .. }))
            .collect();
        assert_eq!(computes.len(), 1);
        assert_eq!(p.stats.instructions, 12);
    }

    #[test]
    fn accesses_in_ward_counted() {
        let p = trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(1024); // fresh pages: marked
            for i in 0..1024 {
                ctx.write(&xs, i, i);
            }
        });
        // The vast majority of accesses are to marked pages.
        assert!(p.stats.accesses_in_ward * 10 >= p.stats.memory_accesses * 9);
    }

    #[test]
    fn deterministic_traces() {
        let run = || {
            trace_program("t", RtOptions::default(), |ctx| {
                let xs = ctx.tabulate::<u64>(200, 16, &|_c, i| i ^ 0x5a);
                let _ = ctx.reduce(0, 200, 16, &|c, i| c.read(&xs, i), &|a, b| a + b, 0);
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (ta, tb) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(ta.events, tb.events);
        }
    }
}
