//! The fork-join trace captured by the runtime.
//!
//! Phase 1 of the simulation (this crate) executes the program logically and
//! records, per task, a linear stream of [`Event`]s. Phase 2 (`warden-sim`)
//! replays the resulting DAG on a simulated multicore under a chosen
//! coherence protocol.

use std::fmt;
use warden_mem::{Addr, Memory};

/// Identifies one task (one node of the spawn tree). Task ids are dense and
/// allocated in spawn order; the root is task 0.
pub type TaskId = usize;

/// Correlates a `RegionAdd` with its `RegionRemove` across tasks.
pub type RegionToken = u32;

/// The operation an [`Event::Rmw`] performs.
///
/// `Swap` stores a value recorded during the logical execution — correct
/// whenever the stored value does not depend on interleaving (per-slot CAS
/// claims, idempotent inserts). `Add` applies a delta to whatever value the
/// replayed machine holds, so shared counters (fetch-and-add cursors) end at
/// the right total under *any* schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmwOp {
    /// Store the recorded value.
    Swap,
    /// Add the recorded delta (wrapping) to the coherent value.
    Add,
}

/// One event in a task's trace.
///
/// Memory events carry real value bytes so the coherence replay can
/// reconstruct — and the tests can verify — the final memory image under
/// either protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Load `size` bytes at `addr` (never crosses a cache block).
    Load {
        /// Byte address.
        addr: Addr,
        /// Access size in bytes (1..=8).
        size: u8,
    },
    /// Store `size` bytes of `val` (little-endian) at `addr`.
    Store {
        /// Byte address.
        addr: Addr,
        /// Access size in bytes (1..=8).
        size: u8,
        /// Value bytes, little-endian in the low `size` bytes.
        val: u64,
    },
    /// Atomic read-modify-write.
    Rmw {
        /// Byte address.
        addr: Addr,
        /// Access size in bytes (1..=8).
        size: u8,
        /// Operand: the stored value for [`RmwOp::Swap`], the delta for
        /// [`RmwOp::Add`].
        val: u64,
        /// What the atomic does to the coherent value at replay time.
        op: RmwOp,
    },
    /// `amount` non-memory instructions of pure compute.
    Compute {
        /// Instruction count.
        amount: u64,
    },
    /// Spawn children; the task suspends here and resumes at the next event
    /// once all children have completed (fork-join).
    Fork {
        /// Spawned child task ids, in deque-push order.
        children: Vec<TaskId>,
    },
    /// Execute an Add-Region instruction for `[start, end)` (paper §6.1).
    RegionAdd {
        /// First byte (page-aligned).
        start: Addr,
        /// One past the last byte (page-aligned).
        end: Addr,
        /// Token matched by the corresponding `RegionRemove`.
        token: RegionToken,
    },
    /// Execute a Remove-Region instruction, triggering reconciliation.
    RegionRemove {
        /// Token from the matching `RegionAdd`.
        token: RegionToken,
    },
}

impl Event {
    /// Instructions this event retires on the core (region instructions are
    /// the two new instructions of paper §6.1).
    pub fn instructions(&self) -> u64 {
        match self {
            Event::Compute { amount } => *amount,
            Event::Fork { .. } => 0,
            _ => 1,
        }
    }

    /// Whether this is a demand memory access.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Event::Load { .. } | Event::Store { .. } | Event::Rmw { .. }
        )
    }
}

/// The recorded trace of one task.
#[derive(Clone, Debug, Default)]
pub struct TaskTrace {
    /// The task that forked this one (`None` for the root).
    pub parent: Option<TaskId>,
    /// Spawn-tree depth (root = 0).
    pub depth: u32,
    /// The task's events in program order.
    pub events: Vec<Event>,
}

/// Counters describing the logical execution (phase 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RtStats {
    /// Tasks spawned (including the root).
    pub tasks: u64,
    /// Fork points executed.
    pub forks: u64,
    /// Bytes allocated across all heaps.
    pub allocated_bytes: u64,
    /// Fresh pages drawn from the virtual-address bump allocator.
    pub pages_fresh: u64,
    /// Pages served from the recycled-page pool (models MPL's GC promptly
    /// reclaiming short-lived data).
    pub pages_recycled: u64,
    /// WARD regions marked.
    pub regions_marked: u64,
    /// Maximum spawn-tree depth reached.
    pub max_depth: u32,
    /// Total events recorded.
    pub events: u64,
    /// Total instructions implied by the trace.
    pub instructions: u64,
    /// Demand memory accesses in the trace.
    pub memory_accesses: u64,
    /// Memory accesses that target WARD-marked pages at the time of access
    /// (the paper's "90%+ of accesses occur in a WARD region" metric).
    pub accesses_in_ward: u64,
}

/// A fully captured program: the spawn-tree of traces plus the logical final
/// memory image and bookkeeping.
pub struct TraceProgram {
    /// Program name (benchmark id).
    pub name: String,
    /// Per-task traces; index = [`TaskId`], root = 0.
    pub tasks: Vec<TaskTrace>,
    /// The final memory image of the logical (phase-1) execution. The
    /// coherence replays must converge to this same image.
    pub memory: Memory,
    /// Logical-execution counters.
    pub stats: RtStats,
    /// Extent of the allocated address space, `[lo, hi)` — useful for
    /// comparing memory images over exactly the touched range.
    pub address_range: (Addr, Addr),
    /// Memory contents when the traced (timed) region begins: preloaded
    /// inputs live here, as if read from disk before the benchmark kernel.
    /// Replays start from this image.
    pub initial_memory: Memory,
}

impl TraceProgram {
    /// Total events across all tasks.
    pub fn total_events(&self) -> u64 {
        self.stats.events
    }

    /// Verify structural invariants of the trace (used by tests):
    /// every forked child exists, has the right parent, and every
    /// `RegionAdd` has exactly one matching `RegionRemove` somewhere.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut region_state: HashMap<RegionToken, i32> = HashMap::new();
        let mut seen_children = vec![false; self.tasks.len()];
        seen_children[0] = true; // root is never forked
        for (tid, task) in self.tasks.iter().enumerate() {
            for ev in &task.events {
                match ev {
                    Event::Fork { children } => {
                        if children.is_empty() {
                            return Err(format!("task {tid}: empty fork"));
                        }
                        for &c in children {
                            let t = self
                                .tasks
                                .get(c)
                                .ok_or_else(|| format!("task {tid} forks unknown child {c}"))?;
                            if t.parent != Some(tid) {
                                return Err(format!(
                                    "child {c} has parent {:?}, expected {tid}",
                                    t.parent
                                ));
                            }
                            if seen_children[c] {
                                return Err(format!("child {c} forked twice"));
                            }
                            seen_children[c] = true;
                        }
                    }
                    Event::RegionAdd { token, start, end } => {
                        if start.page_offset() != 0 || end.page_offset() != 0 || start >= end {
                            return Err(format!("task {tid}: bad region bounds"));
                        }
                        *region_state.entry(*token).or_insert(0) += 1;
                    }
                    Event::RegionRemove { token } => {
                        *region_state.entry(*token).or_insert(0) -= 1;
                    }
                    Event::Load { addr, size }
                    | Event::Store { addr, size, .. }
                    | Event::Rmw { addr, size, .. } => {
                        if *size == 0 || *size > 8 {
                            return Err(format!("task {tid}: access size {size}"));
                        }
                        if addr.block_offset() + *size as u64 > warden_mem::BLOCK_SIZE {
                            return Err(format!("task {tid}: access crosses block at {addr}"));
                        }
                    }
                    Event::Compute { .. } => {}
                }
            }
        }
        if let Some(c) = seen_children.iter().position(|s| !s) {
            return Err(format!("task {c} is never forked"));
        }
        for (token, n) in region_state {
            if n != 0 {
                return Err(format!("region token {token} adds-removes imbalance {n}"));
            }
        }
        Ok(())
    }

    /// A content fingerprint of the program: name, the complete spawn tree
    /// with every event, the address range, and the initial memory image.
    /// Checkpoints embed it so a snapshot taken against one trace can never
    /// be resumed against a different one.
    ///
    /// (The phase-1 *final* image and stats are derived from the events and
    /// initial image, so they are not hashed separately.)
    pub fn fingerprint(&self) -> u64 {
        use warden_mem::codec::{fnv1a64, Encoder};
        let mut enc = Encoder::new();
        enc.put_str(&self.name);
        enc.put_usize(self.tasks.len());
        for task in &self.tasks {
            match task.parent {
                Some(p) => {
                    enc.put_bool(true);
                    enc.put_usize(p);
                }
                None => enc.put_bool(false),
            }
            enc.put_u32(task.depth);
            enc.put_usize(task.events.len());
            for ev in &task.events {
                match ev {
                    Event::Load { addr, size } => {
                        enc.put_u8(0);
                        enc.put_u64(addr.0);
                        enc.put_u8(*size);
                    }
                    Event::Store { addr, size, val } => {
                        enc.put_u8(1);
                        enc.put_u64(addr.0);
                        enc.put_u8(*size);
                        enc.put_u64(*val);
                    }
                    Event::Rmw {
                        addr,
                        size,
                        val,
                        op,
                    } => {
                        enc.put_u8(2);
                        enc.put_u64(addr.0);
                        enc.put_u8(*size);
                        enc.put_u64(*val);
                        enc.put_u8(match op {
                            RmwOp::Swap => 0,
                            RmwOp::Add => 1,
                        });
                    }
                    Event::Compute { amount } => {
                        enc.put_u8(3);
                        enc.put_u64(*amount);
                    }
                    Event::Fork { children } => {
                        enc.put_u8(4);
                        enc.put_usize(children.len());
                        for &c in children {
                            enc.put_usize(c);
                        }
                    }
                    Event::RegionAdd { start, end, token } => {
                        enc.put_u8(5);
                        enc.put_u64(start.0);
                        enc.put_u64(end.0);
                        enc.put_u32(*token);
                    }
                    Event::RegionRemove { token } => {
                        enc.put_u8(6);
                        enc.put_u32(*token);
                    }
                }
            }
        }
        enc.put_u64(self.address_range.0 .0);
        enc.put_u64(self.address_range.1 .0);
        enc.put_u64(self.initial_memory.digest());
        fnv1a64(enc.bytes())
    }
}

impl fmt::Debug for TraceProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TraceProgram({}, {} tasks, {} events)",
            self.name,
            self.tasks.len(),
            self.stats.events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_instruction_counts() {
        assert_eq!(Event::Compute { amount: 7 }.instructions(), 7);
        assert_eq!(
            Event::Load {
                addr: Addr(0),
                size: 8
            }
            .instructions(),
            1
        );
        assert_eq!(Event::Fork { children: vec![1] }.instructions(), 0);
        assert_eq!(Event::RegionRemove { token: 0 }.instructions(), 1);
    }

    #[test]
    fn is_memory_classification() {
        assert!(Event::Load {
            addr: Addr(0),
            size: 1
        }
        .is_memory());
        assert!(!Event::Compute { amount: 1 }.is_memory());
        assert!(!Event::RegionAdd {
            start: Addr(0),
            end: Addr(4096),
            token: 0
        }
        .is_memory());
    }

    fn mini_program(events_root: Vec<Event>, child: Option<TaskTrace>) -> TraceProgram {
        let mut tasks = vec![TaskTrace {
            parent: None,
            depth: 0,
            events: events_root,
        }];
        if let Some(c) = child {
            tasks.push(c);
        }
        TraceProgram {
            name: "mini".into(),
            tasks,
            memory: Memory::new(),
            stats: RtStats::default(),
            address_range: (Addr(0), Addr(0)),
            initial_memory: Memory::new(),
        }
    }

    #[test]
    fn invariants_accept_well_formed() {
        let p = mini_program(
            vec![Event::Fork { children: vec![1] }],
            Some(TaskTrace {
                parent: Some(0),
                depth: 1,
                events: vec![Event::Compute { amount: 1 }],
            }),
        );
        assert!(p.check_invariants().is_ok());
    }

    #[test]
    fn invariants_reject_unforked_task() {
        let p = mini_program(
            vec![],
            Some(TaskTrace {
                parent: Some(0),
                depth: 1,
                events: vec![],
            }),
        );
        assert!(p.check_invariants().is_err());
    }

    #[test]
    fn invariants_reject_unbalanced_region() {
        let p = mini_program(
            vec![Event::RegionAdd {
                start: Addr(0),
                end: Addr(4096),
                token: 3,
            }],
            None,
        );
        assert!(p.check_invariants().unwrap_err().contains("imbalance"));
    }

    #[test]
    fn invariants_reject_block_crossing_access() {
        let p = mini_program(
            vec![Event::Load {
                addr: Addr(60),
                size: 8,
            }],
            None,
        );
        assert!(p.check_invariants().unwrap_err().contains("crosses"));
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn block_addr_type_is_reexported_in_events_module() {
        // Compile-time sanity that BlockAddr stays accessible for consumers.
        let _b = Addr(128).block();
    }
}
