//! The task execution context: the API benchmarks program against.
//!
//! A [`TaskCtx`] plays the role of "the current lightweight thread" of the
//! MPL runtime: it allocates from the task's heap, reads and writes
//! simulated memory (tracing every access), forks children, and carries the
//! WARD-marking hooks of paper §4.2 — mark freshly allocated heap pages,
//! unmark the current heap's pages at each fork, and unmark a completing
//! task's pages before its heap merges into the parent.

use crate::disentangle::{is_ancestor_or_self, CheckMode, ScopeKind, WardScopeState};
use crate::heap::{HeapManager, BASE_ADDR};
use crate::scalar::{Scalar, SimSlice};
use crate::trace::{Event, RegionToken, RmwOp, RtStats, TaskId, TaskTrace, TraceProgram};
use std::collections::HashMap;
use warden_mem::{Addr, Memory, PageAddr};

/// When the runtime marks WARD regions (paper §4.2 vs. ablation baselines).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MarkPolicy {
    /// Never mark (a WARDen machine then behaves exactly like MESI —
    /// the legacy-application path of Figure 1).
    None,
    /// Mark leaf-heap pages at allocation; unmark the current heap at each
    /// fork and at task completion (the paper's policy, plus the completion
    /// unmark that makes post-join reads of child results coherent).
    #[default]
    LeafHeaps,
    /// Like `LeafHeaps` but without the unmark-at-fork flush — the ablation
    /// isolating the §5.3 fork-path optimization. (Unsound on real hardware:
    /// children could read stale closure data; harmless in the simulator,
    /// whose replay never consumes load values.)
    NoUnmarkAtFork,
}

/// Options controlling tracing.
#[derive(Clone, Copy, Debug)]
pub struct RtOptions {
    /// WARD marking policy.
    pub mark: MarkPolicy,
    /// Memory-discipline checking.
    pub check: CheckMode,
    /// Whether completed tasks' scratch pages are recycled (models MPL's GC
    /// promptly reclaiming short-lived data; creates the runtime/application
    /// cache interactions of paper §4.1).
    pub recycle_pages: bool,
}

impl Default for RtOptions {
    fn default() -> RtOptions {
        RtOptions {
            mark: MarkPolicy::default(),
            check: CheckMode::default(),
            recycle_pages: true,
        }
    }
}

/// Cost constants for the traced runtime operations (instruction counts for
/// `Compute` events modelling scheduler work that touches no shared memory).
const FORK_SCHED_WORK: u64 = 12;
const CHILD_START_WORK: u64 = 6;

/// Per-child descriptor size: function pointer, argument, environment
/// pointer, size field — written by the parent, read by the child (the data
/// of paper §5.3's fork-path optimization).
const DESC_WORDS: u64 = 4;

pub(crate) struct RtState {
    pub memory: Memory,
    pub initial_memory: Option<Memory>,
    pub heaps: HeapManager,
    pub tasks: Vec<TaskTrace>,
    pub stats: RtStats,
    pub opts: RtOptions,
    next_token: RegionToken,
    /// Pages currently WARD-marked, with a count of covering regions (for
    /// the accesses-in-ward statistic; regions may overlap).
    marked_pages: HashMap<PageAddr, u32>,
    /// Token → range, to unmark on RegionRemove.
    token_ranges: HashMap<RegionToken, (Addr, Addr)>,
    /// Declared WARD scopes currently active (checker state).
    ward_scopes: Vec<WardScopeState>,
}

impl RtState {
    pub fn new(opts: RtOptions) -> RtState {
        RtState {
            memory: Memory::new(),
            initial_memory: None,
            heaps: HeapManager::new(opts.recycle_pages),
            tasks: Vec::new(),
            stats: RtStats::default(),
            opts,
            next_token: 0,
            marked_pages: HashMap::new(),
            token_ranges: HashMap::new(),
            ward_scopes: Vec::new(),
        }
    }
}

/// The handle a task body uses to interact with the simulated machine.
///
/// See the crate-level docs for a complete example; in short:
///
/// ```
/// use warden_rt::{trace_program, RtOptions};
///
/// let p = trace_program("sum-pair", RtOptions::default(), |ctx| {
///     let xs = ctx.alloc::<u64>(2);
///     let (a, b) = ctx.fork2(
///         |ctx| {
///             ctx.write(&xs, 0, 21);
///             21u64
///         },
///         |ctx| {
///             ctx.write(&xs, 1, 21);
///             21u64
///         },
///     );
///     assert_eq!(a + b, 42);
/// });
/// assert!(p.stats.forks >= 1);
/// ```
pub struct TaskCtx<'a> {
    st: &'a mut RtState,
    task: TaskId,
}

impl<'a> TaskCtx<'a> {
    pub(crate) fn new(st: &'a mut RtState, task: TaskId) -> TaskCtx<'a> {
        TaskCtx { st, task }
    }

    /// The current task's id (root = 0).
    pub fn task_id(&self) -> TaskId {
        self.task
    }

    /// Spawn-tree depth of the current task.
    pub fn depth(&self) -> u32 {
        self.st.tasks[self.task].depth
    }

    // ----- event plumbing ---------------------------------------------------

    fn emit(&mut self, ev: Event) {
        if self.st.initial_memory.is_none() {
            self.st.initial_memory = Some(self.st.memory.clone());
        }
        self.st.stats.events += 1;
        self.st.stats.instructions += ev.instructions();
        if ev.is_memory() {
            self.st.stats.memory_accesses += 1;
            let addr = match ev {
                Event::Load { addr, .. } | Event::Store { addr, .. } | Event::Rmw { addr, .. } => {
                    addr
                }
                _ => unreachable!(),
            };
            if self.st.marked_pages.contains_key(&addr.page()) {
                self.st.stats.accesses_in_ward += 1;
            }
        }
        self.st.tasks[self.task].events.push(ev);
    }

    /// Record `amount` instructions of pure compute (merged into the
    /// previous event when that is also compute).
    pub fn work(&mut self, amount: u64) {
        if amount == 0 {
            return;
        }
        self.st.stats.instructions += amount;
        if let Some(Event::Compute { amount: last }) = self.st.tasks[self.task].events.last_mut() {
            *last += amount;
            return;
        }
        if self.st.initial_memory.is_none() {
            self.st.initial_memory = Some(self.st.memory.clone());
        }
        self.st.stats.events += 1;
        self.st.tasks[self.task]
            .events
            .push(Event::Compute { amount });
    }

    // ----- allocation --------------------------------------------------------

    fn alloc_inner<T: Scalar>(&mut self, len: u64, scratch: bool, mark: bool) -> SimSlice<T> {
        assert!(len > 0, "empty allocation");
        let bytes = len * T::SIZE;
        self.st.stats.allocated_bytes += bytes;
        let (addr, new_run) = self.st.heaps.alloc(self.task, bytes, scratch);
        if let (Some(run), true) = (new_run, mark) {
            if self.st.opts.mark != MarkPolicy::None {
                self.mark_region(run.start(), run.end());
                if !scratch {
                    self.st.heaps.push_own_run(self.task, run);
                }
            }
        }
        SimSlice::from_raw(addr, len)
    }

    /// Allocate `len` elements in the current task's heap. Freshly opened
    /// pages are WARD-marked per the marking policy.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn alloc<T: Scalar>(&mut self, len: u64) -> SimSlice<T> {
        self.alloc_inner(len, false, true)
    }

    /// Allocate short-lived data: like [`Self::alloc`], but the pages are
    /// recycled into the global pool when this task completes (modelling
    /// prompt GC of data that does not survive the task).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn alloc_scratch<T: Scalar>(&mut self, len: u64) -> SimSlice<T> {
        self.alloc_inner(len, true, true)
    }

    /// Install input data without tracing (as if preloaded before the timed
    /// region): the values appear in both the initial and final memory
    /// images and the pages are never WARD-marked.
    ///
    /// # Panics
    ///
    /// Panics if called after the first traced event, or with empty `data`.
    pub fn preload<T: Scalar>(&mut self, data: &[T]) -> SimSlice<T> {
        assert!(
            self.st.initial_memory.is_none(),
            "preload must precede all traced events"
        );
        assert!(!data.is_empty(), "empty preload");
        let (addr, _run) = self
            .st
            .heaps
            .alloc(self.task, data.len() as u64 * T::SIZE, false);
        for (i, v) in data.iter().enumerate() {
            let a = addr + i as u64 * T::SIZE;
            let bytes = v.to_bits().to_le_bytes();
            self.st.memory.write_bytes(a, &bytes[..T::SIZE as usize]);
        }
        SimSlice::from_raw(addr, data.len() as u64)
    }

    fn mark_region(&mut self, start: Addr, end: Addr) {
        let token = self.st.next_token;
        self.st.next_token += 1;
        self.st.stats.regions_marked += 1;
        self.st.heaps.push_region(self.task, token, start, end);
        self.st.token_ranges.insert(token, (start, end));
        for p in crate::pages_between(start, end) {
            *self.st.marked_pages.entry(p).or_insert(0) += 1;
        }
        self.emit(Event::RegionAdd { start, end, token });
    }

    fn unmark_all_regions(&mut self, task: TaskId) {
        let regions = self.st.heaps.drain_regions(task);
        for (token, start, end) in regions {
            for p in crate::pages_between(start, end) {
                unmark_page(&mut self.st.marked_pages, p);
            }
            self.st.token_ranges.remove(&token);
            self.st.tasks[self.task]
                .events
                .push(Event::RegionRemove { token });
            self.st.stats.events += 1;
            self.st.stats.instructions += 1;
        }
    }

    // ----- memory access ------------------------------------------------------

    fn check_access(&mut self, addr: Addr, size: u64, write: bool) {
        if self.st.opts.check == CheckMode::Off {
            return;
        }
        if let Some(owner) = self.st.heaps.owner_of(addr.page()) {
            if !is_ancestor_or_self(&self.st.tasks, owner, self.task) {
                panic!(
                    "disentanglement violation: task {} accessed {} owned by heap {} \
                     (neither itself nor an ancestor)",
                    self.task, addr, owner
                );
            }
        }
        let task = self.task;
        for scope in &mut self.st.ward_scopes {
            let result = if write {
                scope.on_write(addr, size, task)
            } else {
                scope.on_read(addr, size, task)
            };
            if let Err(v) = result {
                panic!("{v}");
            }
        }
    }

    /// Read element `i` of a slice (traced).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access or a memory-discipline violation.
    pub fn read<T: Scalar>(&mut self, slice: &SimSlice<T>, i: u64) -> T {
        let addr = slice.addr_of(i);
        self.check_access(addr, T::SIZE, false);
        let mut bytes = [0u8; 8];
        self.st
            .memory
            .read_bytes(addr, &mut bytes[..T::SIZE as usize]);
        self.emit(Event::Load {
            addr,
            size: T::SIZE as u8,
        });
        T::from_bits(u64::from_le_bytes(bytes))
    }

    /// Write element `i` of a slice (traced).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access or a memory-discipline violation.
    pub fn write<T: Scalar>(&mut self, slice: &SimSlice<T>, i: u64, v: T) {
        let addr = slice.addr_of(i);
        self.check_access(addr, T::SIZE, true);
        let bits = v.to_bits();
        let bytes = bits.to_le_bytes();
        self.st.memory.write_bytes(addr, &bytes[..T::SIZE as usize]);
        self.emit(Event::Store {
            addr,
            size: T::SIZE as u8,
            val: bits,
        });
    }

    /// Atomic compare-and-swap on element `i`: if the current value equals
    /// `expected`, store `new`. Returns `(succeeded, previous value)`.
    ///
    /// CAS is traced as an `Rmw` and is always executed coherently by the
    /// WARDen machine (see `warden-coherence`).
    pub fn cas<T: Scalar + PartialEq>(
        &mut self,
        slice: &SimSlice<T>,
        i: u64,
        expected: T,
        new: T,
    ) -> (bool, T) {
        let addr = slice.addr_of(i);
        self.check_access(addr, T::SIZE, true);
        let mut bytes = [0u8; 8];
        self.st
            .memory
            .read_bytes(addr, &mut bytes[..T::SIZE as usize]);
        let old = T::from_bits(u64::from_le_bytes(bytes));
        let success = old == expected;
        let stored = if success { new } else { old };
        let bits = stored.to_bits();
        if success {
            let nb = bits.to_le_bytes();
            self.st.memory.write_bytes(addr, &nb[..T::SIZE as usize]);
        }
        self.emit(Event::Rmw {
            addr,
            size: T::SIZE as u8,
            val: bits,
            op: RmwOp::Swap,
        });
        (success, old)
    }

    /// Atomic fetch-add on a `u64` element, returning the previous value.
    pub fn fetch_add(&mut self, slice: &SimSlice<u64>, i: u64, delta: u64) -> u64 {
        let addr = slice.addr_of(i);
        self.check_access(addr, 8, true);
        let old = self.st.memory.read_u64(addr);
        let new = old.wrapping_add(delta);
        self.st.memory.write_u64(addr, new);
        self.emit(Event::Rmw {
            addr,
            size: 8,
            val: delta,
            op: RmwOp::Add,
        });
        old
    }

    /// Untraced read, for validating results after the computation (does not
    /// appear in the trace or perturb statistics).
    pub fn peek<T: Scalar>(&self, slice: &SimSlice<T>, i: u64) -> T {
        let mut bytes = [0u8; 8];
        self.st
            .memory
            .read_bytes(slice.addr_of(i), &mut bytes[..T::SIZE as usize]);
        T::from_bits(u64::from_le_bytes(bytes))
    }

    // ----- fork-join -----------------------------------------------------------

    /// Fork two children, run them (logically), and return both results.
    ///
    /// Traced effects, mirroring the MPL scheduler (paper §4.2, §5.3):
    /// the parent writes each child's task descriptor into its own heap,
    /// initializes a join counter in the runtime arena, unmarks its heap's
    /// WARD regions (the reconciliation flush that speeds up steals), and
    /// suspends at a `Fork` event. Each child reads its descriptor, runs,
    /// writes its result cell, unmarks its own regions, and decrements the
    /// join counter with a CAS. The parent then reads the join counter and
    /// both result cells, and the children's heaps merge into the parent's.
    pub fn fork2<RA, RB>(
        &mut self,
        a: impl FnOnce(&mut TaskCtx<'_>) -> RA,
        b: impl FnOnce(&mut TaskCtx<'_>) -> RB,
    ) -> (RA, RB) {
        let mut a = Some(a);
        let mut b = Some(b);
        let mut ra = None;
        let mut rb = None;
        self.fork2_dyn(
            &mut |ctx| ra = Some((a.take().expect("child a runs once"))(ctx)),
            &mut |ctx| rb = Some((b.take().expect("child b runs once"))(ctx)),
        );
        (
            ra.expect("child a completed"),
            rb.expect("child b completed"),
        )
    }

    /// Object-safe fork used by the recursive combinators (avoids
    /// infinitely-nested closure monomorphization).
    pub fn fork2_dyn(
        &mut self,
        a: &mut dyn FnMut(&mut TaskCtx<'_>),
        b: &mut dyn FnMut(&mut TaskCtx<'_>),
    ) {
        self.st.stats.forks += 1;
        self.work(FORK_SCHED_WORK);

        // Parent writes both task descriptors into its own heap.
        let desc_a = self.alloc_inner::<u64>(DESC_WORDS, false, true);
        let desc_b = self.alloc_inner::<u64>(DESC_WORDS, false, true);
        let ids_base = self.st.tasks.len() as u64;
        for w in 0..DESC_WORDS {
            self.write(&desc_a, w, 0x4000_0000 + ids_base * 16 + w);
            self.write(&desc_b, w, 0x4000_0000 + (ids_base + 1) * 16 + w);
        }

        // The join cell lives in the runtime arena (coherent, never WARD).
        // Each child owns one word of it: completion is a CAS on the child's
        // word, so the final contents are order-independent while the cache
        // *block* still ping-pongs between the children exactly like a
        // shared counter would.
        let join_addr = self.st.heaps.alloc_arena();
        let join_cell: SimSlice<u64> = SimSlice::from_raw(join_addr, 2);
        self.write(&join_cell, 0, 0);
        self.write(&join_cell, 1, 0);

        // Unmark the (about-to-become-internal) heap's WARD regions.
        if self.st.opts.mark == MarkPolicy::LeafHeaps {
            self.unmark_all_regions(self.task);
        }

        // Spawn the children.
        let parent = self.task;
        let depth = self.st.tasks[parent].depth + 1;
        let ca = self.st.tasks.len();
        let cb = ca + 1;
        for _ in 0..2 {
            let t = self.st.tasks.len();
            self.st.tasks.push(TaskTrace {
                parent: Some(parent),
                depth,
                events: Vec::new(),
            });
            self.st.heaps.new_heap(t);
        }
        self.st.stats.tasks += 2;
        self.st.stats.max_depth = self.st.stats.max_depth.max(depth);
        self.emit(Event::Fork {
            children: vec![ca, cb],
        });

        // Run the children depth-first (logical execution order; the timing
        // simulator schedules them onto cores independently).
        self.run_child(ca, desc_a, join_cell, 0, a);
        self.run_child(cb, desc_b, join_cell, 1, b);

        // Parent resumes: read both join words and both result cells.
        self.emit(Event::Load {
            addr: join_addr,
            size: 8,
        });
        self.emit(Event::Load {
            addr: join_addr + 8,
            size: 8,
        });
        self.st.heaps.merge_into_parent(ca, parent);
        self.st.heaps.merge_into_parent(cb, parent);
        self.st.heaps.free_arena(join_addr);
        // The parent is a leaf again (paper §4.1): re-mark the runs it
        // allocated for itself. Sound because entering the W state from a
        // dirty owner snapshots that owner's sectors into the LLC (see
        // `warden-coherence`), so pre-region data is never served stale.
        if self.st.opts.mark == MarkPolicy::LeafHeaps {
            let runs = self.st.heaps.own_runs(parent).to_vec();
            for (s, e) in runs {
                self.mark_region(s, e);
            }
        }
    }

    fn run_child(
        &mut self,
        child: TaskId,
        desc: SimSlice<u64>,
        join_cell: SimSlice<u64>,
        join_slot: u64,
        body: &mut dyn FnMut(&mut TaskCtx<'_>),
    ) {
        let parent = self.task;
        {
            let mut ctx = TaskCtx::new(self.st, child);
            ctx.work(CHILD_START_WORK);
            for w in 0..DESC_WORDS {
                ctx.read(&desc, w);
            }
            // The result cell is allocated in the child's (fresh, marked)
            // heap: its flush at completion is what lets the parent read the
            // result from the LLC instead of downgrading the child's core.
            let result_cell = ctx.alloc::<u64>(1);
            body(&mut ctx);
            ctx.write(&result_cell, 0, child as u64);
            if ctx.st.opts.mark != MarkPolicy::None {
                ctx.unmark_all_regions(child);
            }
            if ctx.st.opts.recycle_pages {
                ctx.st.heaps.free_scratch(child);
            }
            // Join notification (busy-wait CAS primitive of PBBS): the child
            // CASes its own word of the shared join block.
            ctx.cas(&join_cell, join_slot, 0, 1);
            // Parent will read the result cell after the join.
            let rc_addr = result_cell.addr_of(0);
            ctx.st.tasks[parent].events.push(Event::Load {
                addr: rc_addr,
                size: 8,
            });
            ctx.st.stats.events += 1;
            ctx.st.stats.instructions += 1;
            ctx.st.stats.memory_accesses += 1;
        }
    }

    /// Parallel for over `lo..hi`, splitting in half down to `grain`
    /// iterations, then running sequentially.
    ///
    /// # Panics
    ///
    /// Panics if `grain == 0`.
    pub fn parallel_for(
        &mut self,
        lo: u64,
        hi: u64,
        grain: u64,
        f: &dyn Fn(&mut TaskCtx<'_>, u64),
    ) {
        assert!(grain > 0, "grain must be positive");
        if hi <= lo {
            return;
        }
        if hi - lo <= grain {
            for i in lo..hi {
                f(self, i);
            }
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.fork2_dyn(&mut |ctx| ctx.parallel_for(lo, mid, grain, f), &mut |ctx| {
            ctx.parallel_for(mid, hi, grain, f)
        });
    }

    /// Allocate an array of `n` elements in the *current* heap and fill it
    /// in parallel — the classic `tabulate` of parallel functional
    /// languages. The children write into their ancestor's fresh array.
    pub fn tabulate<T: Scalar>(
        &mut self,
        n: u64,
        grain: u64,
        f: &dyn Fn(&mut TaskCtx<'_>, u64) -> T,
    ) -> SimSlice<T> {
        let out = self.alloc::<T>(n.max(1));
        self.parallel_for(0, n, grain, &|ctx, i| {
            let v = f(ctx, i);
            ctx.write(&out, i, v);
        });
        out
    }

    /// Parallel reduction of `f(lo) ⊕ … ⊕ f(hi-1)` with an associative
    /// `combine`; results flow through child result cells.
    pub fn reduce(
        &mut self,
        lo: u64,
        hi: u64,
        grain: u64,
        f: &dyn Fn(&mut TaskCtx<'_>, u64) -> u64,
        combine: &dyn Fn(u64, u64) -> u64,
        identity: u64,
    ) -> u64 {
        assert!(grain > 0, "grain must be positive");
        if hi <= lo {
            return identity;
        }
        if hi - lo <= grain {
            let mut acc = identity;
            for i in lo..hi {
                acc = combine(acc, f(self, i));
            }
            return acc;
        }
        let mid = lo + (hi - lo) / 2;
        let mut left = identity;
        let mut right = identity;
        self.fork2_dyn(
            &mut |ctx| left = ctx.reduce(lo, mid, grain, f, combine, identity),
            &mut |ctx| right = ctx.reduce(mid, hi, grain, f, combine, identity),
        );
        combine(left, right)
    }

    /// Parallel exclusive prefix sum over `xs`, in place, returning the
    /// total — the classic two-pass block scan of parallel functional
    /// languages (leaf block sums, a short sequential pass over the block
    /// sums, then a parallel rewrite).
    ///
    /// # Panics
    ///
    /// Panics if `grain == 0`.
    pub fn scan_exclusive(&mut self, xs: &SimSlice<u64>, grain: u64) -> u64 {
        assert!(grain > 0, "grain must be positive");
        let n = xs.len();
        if n == 0 {
            return 0;
        }
        let nblocks = n.div_ceil(grain);
        let sums = self.alloc::<u64>(nblocks);
        self.parallel_for(0, nblocks, 1, &|c, b| {
            let lo = b * grain;
            let hi = (lo + grain).min(n);
            let mut acc = 0u64;
            for i in lo..hi {
                acc = acc.wrapping_add(c.read(xs, i));
                c.work(1);
            }
            c.write(&sums, b, acc);
        });
        let mut total = 0u64;
        for b in 0..nblocks {
            let v = self.read(&sums, b);
            self.write(&sums, b, total);
            total = total.wrapping_add(v);
            self.work(2);
        }
        self.parallel_for(0, nblocks, 1, &|c, b| {
            let lo = b * grain;
            let hi = (lo + grain).min(n);
            let mut acc = c.read(&sums, b);
            for i in lo..hi {
                let v = c.read(xs, i);
                c.write(xs, i, acc);
                acc = acc.wrapping_add(v);
                c.work(1);
            }
        });
        total
    }

    // ----- declared WARD scopes (the §3 extension) -----------------------------

    /// Declare that `slice`'s memory satisfies the WARD property for the
    /// duration of `f` (the explicit analogue of Figure 4's "flags is a WARD
    /// region"), run `f`, then end the region (triggering reconciliation in
    /// the WARDen machine).
    ///
    /// While the scope is active the checker verifies WARD condition 1
    /// dynamically: any cross-task read-after-write inside the scope
    /// panics. Condition 2 (WAW apathy) is the caller's declaration.
    pub fn ward_scope<T: Scalar, R>(
        &mut self,
        slice: &SimSlice<T>,
        f: impl FnOnce(&mut TaskCtx<'_>) -> R,
    ) -> R {
        self.scoped(ScopeKind::Ward, slice, f)
    }

    /// Like [`Self::ward_scope`], but the checker enforces full data-race
    /// freedom inside the scope: any cross-task pair of accesses to the same
    /// byte with at least one write panics. This is the stricter discipline
    /// the paper's DRF-based prior work requires (§2.3) — programs with
    /// benign WAW races (the prime sieve, BFS) pass a WARD scope but fail a
    /// DRF scope, demonstrating that "disentanglement is more general than
    /// data race-freedom".
    pub fn drf_scope<T: Scalar, R>(
        &mut self,
        slice: &SimSlice<T>,
        f: impl FnOnce(&mut TaskCtx<'_>) -> R,
    ) -> R {
        self.scoped(ScopeKind::Drf, slice, f)
    }

    fn scoped<T: Scalar, R>(
        &mut self,
        kind: ScopeKind,
        slice: &SimSlice<T>,
        f: impl FnOnce(&mut TaskCtx<'_>) -> R,
    ) -> R {
        let byte_start = slice.base();
        let byte_end = Addr(slice.base().0 + slice.len() * T::SIZE);
        // The hardware region is the *contained* whole pages (rounded
        // inward): page granularity must never disable coherence for
        // neighbouring data the declaration does not cover.
        let start = Addr(byte_start.0.div_ceil(warden_mem::PAGE_SIZE) * warden_mem::PAGE_SIZE);
        let end = Addr(byte_end.0 & !(warden_mem::PAGE_SIZE - 1));
        let region = if start < end {
            let token = self.st.next_token;
            self.st.next_token += 1;
            self.st.stats.regions_marked += 1;
            self.st.token_ranges.insert(token, (start, end));
            for p in crate::pages_between(start, end) {
                *self.st.marked_pages.entry(p).or_insert(0) += 1;
            }
            self.emit(Event::RegionAdd { start, end, token });
            Some(token)
        } else {
            None
        };
        // The checker monitors the declared bytes exactly.
        if self.st.opts.check == CheckMode::Strict {
            self.st
                .ward_scopes
                .push(WardScopeState::new(kind, byte_start, byte_end));
        }
        let r = f(self);
        if self.st.opts.check == CheckMode::Strict {
            self.st.ward_scopes.pop();
        }
        if let Some(token) = region {
            for p in crate::pages_between(start, end) {
                unmark_page(&mut self.st.marked_pages, p);
            }
            self.st.token_ranges.remove(&token);
            self.emit(Event::RegionRemove { token });
        }
        r
    }

    /// Finish the root task: unmark remaining regions, recycle scratch.
    pub(crate) fn finish_root(&mut self) {
        assert_eq!(self.task, 0, "finish_root on non-root task");
        if self.st.opts.mark != MarkPolicy::None {
            self.unmark_all_regions(0);
        }
        if self.st.opts.recycle_pages {
            self.st.heaps.free_scratch(0);
        }
    }
}

/// Execute `root` as the program's root task and capture the full trace.
///
/// This is the phase-1 entry point: the program runs *logically* (depth
/// first, sequentially, deterministically) while every memory access, fork,
/// and WARD-marking action is recorded for the timing replay.
///
/// # Example
///
/// ```
/// use warden_rt::{trace_program, RtOptions};
///
/// let p = trace_program("hello", RtOptions::default(), |ctx| {
///     let xs = ctx.tabulate::<u64>(100, 25, &|_ctx, i| i * i);
///     let sum = ctx.reduce(0, 100, 25, &|ctx, i| ctx.read(&xs, i), &|a, b| a + b, 0);
///     assert_eq!(sum, (0..100u64).map(|i| i * i).sum());
/// });
/// p.check_invariants().unwrap();
/// assert!(p.stats.tasks > 1);
/// ```
pub fn trace_program(
    name: &str,
    opts: RtOptions,
    root: impl FnOnce(&mut TaskCtx<'_>),
) -> TraceProgram {
    let mut st = RtState::new(opts);
    st.tasks.push(TaskTrace {
        parent: None,
        depth: 0,
        events: Vec::new(),
    });
    st.heaps.new_heap(0);
    st.stats.tasks = 1;
    {
        let mut ctx = TaskCtx::new(&mut st, 0);
        root(&mut ctx);
        ctx.finish_root();
    }
    st.stats.pages_fresh = st.heaps.pages_fresh;
    st.stats.pages_recycled = st.heaps.pages_recycled;
    let initial = st.initial_memory.unwrap_or_else(|| st.memory.clone());
    let high = st.heaps.high_water;
    TraceProgram {
        name: name.to_owned(),
        tasks: st.tasks,
        memory: st.memory,
        stats: st.stats,
        address_range: (Addr(BASE_ADDR), Addr(high)),
        initial_memory: initial,
    }
}

/// Decrement a page's covering-region count, removing it at zero.
fn unmark_page(marked: &mut HashMap<warden_mem::PageAddr, u32>, p: warden_mem::PageAddr) {
    if let Some(n) = marked.get_mut(&p) {
        *n -= 1;
        if *n == 0 {
            marked.remove(&p);
        }
    }
}
