//! Trace inspection: aggregate statistics over a captured program, used by
//! the `trace_stats` harness binary and by tests that reason about workload
//! shape.

use crate::trace::{Event, TaskId, TraceProgram};
use std::fmt;

/// Aggregate shape of one captured trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Tasks in the spawn tree.
    pub tasks: u64,
    /// Leaf tasks (no forks).
    pub leaves: u64,
    /// Maximum spawn-tree depth.
    pub max_depth: u32,
    /// Event counts by kind: loads, stores, rmws, computes, forks,
    /// region adds, region removes.
    pub loads: u64,
    /// Store events.
    pub stores: u64,
    /// Atomic events.
    pub rmws: u64,
    /// Compute events (each possibly many instructions).
    pub computes: u64,
    /// Fork events.
    pub forks: u64,
    /// Region-add events.
    pub region_adds: u64,
    /// Region-remove events.
    pub region_removes: u64,
    /// Total traced instructions.
    pub instructions: u64,
    /// Instructions attributable to pure compute.
    pub compute_instructions: u64,
    /// Distinct 64-byte blocks touched by memory events.
    pub distinct_blocks: u64,
    /// Memory events whose block is touched by more than one task — the
    /// traffic coherence exists for.
    pub shared_accesses: u64,
    /// Events of the longest single task trace.
    pub longest_task_events: usize,
    /// The critical path in traced instructions: the maximum, over
    /// root-to-completion chains, of instructions that must execute
    /// sequentially (events of a task plus, at each fork, the heaviest
    /// child's chain).
    pub span_instructions: u64,
}

impl TraceSummary {
    /// The average parallelism implied by the trace: total instructions over
    /// the sequential span (Brent's law denominator).
    pub fn parallelism(&self) -> f64 {
        if self.span_instructions == 0 {
            return 1.0;
        }
        self.instructions as f64 / self.span_instructions as f64
    }

    /// Fraction of memory events touching task-shared blocks.
    pub fn sharing_fraction(&self) -> f64 {
        let mem = self.loads + self.stores + self.rmws;
        if mem == 0 {
            return 0.0;
        }
        self.shared_accesses as f64 / mem as f64
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} tasks ({} leaves, depth {}), {} instructions (span {}, parallelism {:.1})",
            self.tasks,
            self.leaves,
            self.max_depth,
            self.instructions,
            self.span_instructions,
            self.parallelism()
        )?;
        writeln!(
            f,
            "events: {} loads, {} stores, {} rmws, {} computes, {} forks, {}+{} region ops",
            self.loads,
            self.stores,
            self.rmws,
            self.computes,
            self.forks,
            self.region_adds,
            self.region_removes
        )?;
        write!(
            f,
            "footprint: {} blocks, {:.1}% of accesses on task-shared blocks",
            self.distinct_blocks,
            100.0 * self.sharing_fraction()
        )
    }
}

/// Compute the sequential-span instructions below (and including) `task`.
fn span_of(program: &TraceProgram, task: TaskId, memo: &mut [Option<u64>]) -> u64 {
    if let Some(v) = memo[task] {
        return v;
    }
    let mut total = 0u64;
    for ev in &program.tasks[task].events {
        total += ev.instructions();
        if let Event::Fork { children } = ev {
            total += children
                .iter()
                .map(|&c| span_of(program, c, memo))
                .max()
                .unwrap_or(0);
        }
    }
    memo[task] = Some(total);
    total
}

/// Summarize a captured program.
pub fn summarize(program: &TraceProgram) -> TraceSummary {
    use std::collections::HashMap;
    let mut s = TraceSummary {
        tasks: program.tasks.len() as u64,
        max_depth: program.stats.max_depth,
        instructions: program.stats.instructions,
        ..TraceSummary::default()
    };
    // block -> first task seen; u64::MAX marks "shared".
    let mut block_task: HashMap<u64, u64> = HashMap::new();
    for (tid, task) in program.tasks.iter().enumerate() {
        let mut forked = false;
        s.longest_task_events = s.longest_task_events.max(task.events.len());
        for ev in &task.events {
            match ev {
                Event::Load { addr, .. } => {
                    s.loads += 1;
                    mark(&mut block_task, addr.block().0, tid as u64);
                }
                Event::Store { addr, .. } => {
                    s.stores += 1;
                    mark(&mut block_task, addr.block().0, tid as u64);
                }
                Event::Rmw { addr, .. } => {
                    s.rmws += 1;
                    mark(&mut block_task, addr.block().0, tid as u64);
                }
                Event::Compute { amount } => {
                    s.computes += 1;
                    s.compute_instructions += amount;
                }
                Event::Fork { .. } => {
                    s.forks += 1;
                    forked = true;
                }
                Event::RegionAdd { .. } => s.region_adds += 1,
                Event::RegionRemove { .. } => s.region_removes += 1,
            }
        }
        if !forked {
            s.leaves += 1;
        }
    }
    s.distinct_blocks = block_task.len() as u64;
    // Second pass: count accesses to shared blocks.
    for task in &program.tasks {
        for ev in &task.events {
            let addr = match ev {
                Event::Load { addr, .. } | Event::Store { addr, .. } | Event::Rmw { addr, .. } => {
                    addr
                }
                _ => continue,
            };
            if block_task.get(&addr.block().0) == Some(&u64::MAX) {
                s.shared_accesses += 1;
            }
        }
    }
    let mut memo = vec![None; program.tasks.len()];
    s.span_instructions = span_of(program, 0, &mut memo);
    s
}

fn mark(map: &mut std::collections::HashMap<u64, u64>, block: u64, task: u64) {
    match map.get(&block) {
        None => {
            map.insert(block, task);
        }
        Some(&t) if t == task || t == u64::MAX => {}
        Some(_) => {
            map.insert(block, u64::MAX);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{trace_program, RtOptions};

    #[test]
    fn summary_counts_basic_shape() {
        let p = trace_program("t", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(64);
            ctx.parallel_for(0, 64, 16, &|c, i| c.write(&xs, i, i));
        });
        let s = summarize(&p);
        assert_eq!(s.tasks, p.tasks.len() as u64);
        assert!(s.leaves >= 4);
        assert!(s.stores >= 64);
        assert_eq!(s.forks, p.stats.forks);
        assert!(s.distinct_blocks >= 8);
        assert_eq!(s.instructions, p.stats.instructions);
    }

    #[test]
    fn parallelism_reflects_structure() {
        // Balanced parallel work: parallelism well above 1.
        let wide = trace_program("wide", RtOptions::default(), |ctx| {
            ctx.parallel_for(0, 64, 1, &|c, _| c.work(1_000));
        });
        let ws = summarize(&wide);
        assert!(ws.parallelism() > 4.0, "got {}", ws.parallelism());
        // Serial work: parallelism ~1.
        let serial = trace_program("serial", RtOptions::default(), |ctx| ctx.work(64_000));
        let ss = summarize(&serial);
        assert!((ss.parallelism() - 1.0).abs() < 0.01);
        assert!(ws.span_instructions < wide.stats.instructions);
    }

    #[test]
    fn sharing_fraction_sees_cross_task_blocks() {
        let p = trace_program("shared", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(1);
            ctx.fork2(|c| c.write(&xs, 0, 1), |c| c.write(&xs, 0, 1));
        });
        let s = summarize(&p);
        assert!(s.sharing_fraction() > 0.0);
        assert!(s.shared_accesses >= 2);
    }

    #[test]
    fn display_is_informative() {
        let p = trace_program("t", RtOptions::default(), |ctx| ctx.work(10));
        let text = summarize(&p).to_string();
        assert!(text.contains("tasks"));
        assert!(text.contains("instructions"));
    }
}
