//! Seeded synthetic sharing-pattern workloads — the differential fuzz
//! lab's trace generator.
//!
//! The paper evaluates WARDen on a fixed 14-benchmark suite; this module
//! generates *adversarial* fork-join programs that sweep the sharing-pattern
//! space the benchmarks only sample: ping-pong, producer-consumer, false
//! sharing, read-mostly, WAW-heavy WARD-friendly and WARD-hostile shapes,
//! and migratory data. Every generated program
//!
//! * is **data-race-free by construction** under its declared pattern —
//!   concurrent tasks touch disjoint bytes (or race only with same-value
//!   WAW writes inside a declared [`TaskCtx::ward_scope`]), and all
//!   cross-round sharing is ordered by fork-join barriers. Generation runs
//!   under the runtime's strict disentanglement and scope checkers, so a
//!   discipline bug in a pattern body panics at generation time rather than
//!   producing an invalid trace;
//! * is **deterministic**: a [`WorkloadSpec`] is a pure function of its
//!   seed and knobs (all randomness flows from a splitmix64 stream), so two
//!   builds of the same spec are event-identical and the spec's
//!   [`WorkloadSpec::token`] is a complete replayable reproducer;
//! * flows through the standard [`TraceProgram`] representation and the
//!   `trace_io` codec, so every downstream layer — simulator, invariant
//!   checker, observability, event lanes, serving, campaigns — consumes
//!   generated workloads exactly like hand-written benchmarks.
//!
//! [`WorkloadGen`] is the seeded stream of specs the fuzz gate draws from;
//! a single [`WorkloadSpec`] can also be parsed back from an archived
//! failure token with [`WorkloadSpec::from_token`].

use crate::{trace_program, RtOptions, TaskCtx, TraceProgram};
use std::fmt;

/// Generation failed or a spec/tokens was malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadGenError {
    /// A knob is outside its supported range.
    BadKnob(String),
    /// A sharing-pattern name not in [`SharingPattern::ALL`].
    UnknownPattern(String),
    /// A replay token that does not parse back into a spec.
    BadToken {
        /// The offending token.
        token: String,
        /// What failed to parse.
        why: String,
    },
}

impl fmt::Display for WorkloadGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadGenError::BadKnob(msg) => write!(f, "invalid workload knob: {msg}"),
            WorkloadGenError::UnknownPattern(name) => {
                let names: Vec<&str> = SharingPattern::ALL.iter().map(|p| p.name()).collect();
                write!(
                    f,
                    "unknown sharing pattern {name:?}; known patterns: {}",
                    names.join(", ")
                )
            }
            WorkloadGenError::BadToken { token, why } => {
                write!(f, "malformed workload token {token:?}: {why}")
            }
        }
    }
}

impl std::error::Error for WorkloadGenError {}

/// The synthetic sharing patterns the generator can emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SharingPattern {
    /// One rotating writer per round updates a hot double-buffered pair of
    /// cache blocks that every task reads the following round — the classic
    /// true-sharing latency stress (paper Table 1).
    PingPong,
    /// Task pairs: even tasks produce into per-pair segments, odd tasks
    /// consume the segment their producer filled the previous round.
    ProducerConsumer,
    /// Concurrent tasks write *distinct words of the same cache blocks* —
    /// no data race, maximal coherence traffic. The written area is a
    /// declared WARD region, so WARD-style protocols may keep it incoherent.
    FalseSharing,
    /// A shared table read at random by every task, with one private result
    /// slot written per task — the read-scaling best case, declared (and
    /// dynamically verified) DRF.
    ReadMostly,
    /// WAW-heavy and WARD-friendly: tasks race same-value writes across a
    /// large declared WARD region with few sync points, the §2.3 benign-WAW
    /// shape that DRF-based designs must forbid.
    WawFriendly,
    /// WAW-heavy and WARD-hostile: a fresh tiny region is declared, raced
    /// over and reconciled every round, so region add/remove and
    /// reconciliation costs dominate the little useful work.
    WawHostile,
    /// A data chunk read-modify-written by a single rotating owner per
    /// round while the other tasks do private work — migratory sharing.
    Migratory,
}

impl SharingPattern {
    /// Every pattern, in the canonical order used by sweeps and atlases.
    pub const ALL: [SharingPattern; 7] = [
        SharingPattern::PingPong,
        SharingPattern::ProducerConsumer,
        SharingPattern::FalseSharing,
        SharingPattern::ReadMostly,
        SharingPattern::WawFriendly,
        SharingPattern::WawHostile,
        SharingPattern::Migratory,
    ];

    /// Stable registry name (also the token prefix).
    pub fn name(&self) -> &'static str {
        match self {
            SharingPattern::PingPong => "ping-pong",
            SharingPattern::ProducerConsumer => "producer-consumer",
            SharingPattern::FalseSharing => "false-sharing",
            SharingPattern::ReadMostly => "read-mostly",
            SharingPattern::WawFriendly => "waw-friendly",
            SharingPattern::WawHostile => "waw-hostile",
            SharingPattern::Migratory => "migratory",
        }
    }

    /// Resolve a registry name back to the pattern.
    pub fn from_name(name: &str) -> Result<SharingPattern, WorkloadGenError> {
        SharingPattern::ALL
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| WorkloadGenError::UnknownPattern(name.to_string()))
    }
}

impl fmt::Display for SharingPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Knob bounds enforced by [`WorkloadSpec::validate`].
mod bounds {
    /// Parallel leaf tasks per round (the "core count" knob).
    pub const TASKS: std::ops::RangeInclusive<u32> = 2..=64;
    /// Fork-join rounds.
    pub const ROUNDS: std::ops::RangeInclusive<u32> = 1..=256;
    /// Memory operations per task per round.
    pub const OPS: std::ops::RangeInclusive<u32> = 1..=4096;
    /// Shared working-set bytes.
    pub const FOOTPRINT: std::ops::RangeInclusive<u64> = 512..=1 << 20;
}

/// One fully specified synthetic workload: a pattern plus the seed and size
/// knobs. The spec is `Copy` and tiny; [`WorkloadSpec::build`] materializes
/// the actual trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// The sharing pattern.
    pub pattern: SharingPattern,
    /// Seed for every random choice the pattern body makes.
    pub seed: u64,
    /// Parallel leaf tasks per fork-join round (2..=64).
    pub tasks: u32,
    /// Fork-join rounds (1..=256).
    pub rounds: u32,
    /// Memory operations per task per round (1..=4096).
    pub ops: u32,
    /// Shared working-set size in bytes (512..=1 MiB); patterns round it
    /// to whole slots and clamp where a shape needs a minimum (e.g. a
    /// declared region must contain a whole page).
    pub footprint: u64,
}

impl WorkloadSpec {
    /// A small, valid default spec for `pattern` derived from `seed`.
    pub fn new(pattern: SharingPattern, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            pattern,
            seed,
            tasks: 4,
            rounds: 3,
            ops: 24,
            footprint: 4096,
        }
    }

    /// Check every knob against its supported range.
    pub fn validate(&self) -> Result<(), WorkloadGenError> {
        let bad = |msg: String| Err(WorkloadGenError::BadKnob(msg));
        if !bounds::TASKS.contains(&self.tasks) {
            return bad(format!(
                "tasks = {} outside {:?}",
                self.tasks,
                bounds::TASKS
            ));
        }
        if !bounds::ROUNDS.contains(&self.rounds) {
            return bad(format!(
                "rounds = {} outside {:?}",
                self.rounds,
                bounds::ROUNDS
            ));
        }
        if !bounds::OPS.contains(&self.ops) {
            return bad(format!("ops = {} outside {:?}", self.ops, bounds::OPS));
        }
        if !bounds::FOOTPRINT.contains(&self.footprint) {
            return bad(format!(
                "footprint = {} outside {:?}",
                self.footprint,
                bounds::FOOTPRINT
            ));
        }
        Ok(())
    }

    /// The complete replayable identity of this spec: pattern name, seed
    /// and every knob. Filesystem-safe; parses back with
    /// [`WorkloadSpec::from_token`].
    pub fn token(&self) -> String {
        format!(
            "{}-s{:016x}-t{}-r{}-o{}-f{}",
            self.pattern.name(),
            self.seed,
            self.tasks,
            self.rounds,
            self.ops,
            self.footprint
        )
    }

    /// Parse a [`WorkloadSpec::token`] back into a (validated) spec —
    /// how an archived failing seed is replayed.
    pub fn from_token(token: &str) -> Result<WorkloadSpec, WorkloadGenError> {
        let bad = |why: &str| WorkloadGenError::BadToken {
            token: token.to_string(),
            why: why.to_string(),
        };
        // Pattern names contain '-', so peel the five knob segments off the
        // right; whatever remains is the pattern name.
        let parts: Vec<&str> = token.rsplitn(6, '-').collect();
        if parts.len() != 6 {
            return Err(bad("expected <pattern>-s<seed>-t<n>-r<n>-o<n>-f<n>"));
        }
        let seg = |part: &str, prefix: char| -> Result<String, WorkloadGenError> {
            part.strip_prefix(prefix)
                .map(str::to_string)
                .ok_or_else(|| bad(&format!("segment {part:?} should start with {prefix:?}")))
        };
        let pattern = SharingPattern::from_name(parts[5])?;
        let seed = u64::from_str_radix(&seg(parts[4], 's')?, 16)
            .map_err(|_| bad("seed is not a 64-bit hex number"))?;
        let num = |part: &str, prefix: char| -> Result<u64, WorkloadGenError> {
            seg(part, prefix)?
                .parse()
                .map_err(|_| bad(&format!("{prefix} knob is not a number")))
        };
        let spec = WorkloadSpec {
            pattern,
            seed,
            tasks: num(parts[3], 't')? as u32,
            rounds: num(parts[2], 'r')? as u32,
            ops: num(parts[1], 'o')? as u32,
            footprint: num(parts[0], 'f')?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Materialize the trace: run the pattern body through the runtime
    /// under strict checking (default [`RtOptions`]), so the generated
    /// program is proven disentangled — and scope-disciplined — at build
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`] (a spec from
    /// [`WorkloadGen`] or [`WorkloadSpec::from_token`] is always valid).
    pub fn build(&self) -> TraceProgram {
        if let Err(e) = self.validate() {
            panic!("cannot build workload: {e}");
        }
        let spec = *self;
        trace_program(&self.token(), RtOptions::default(), move |ctx| {
            spec.run(ctx)
        })
    }

    fn run(&self, ctx: &mut TaskCtx<'_>) {
        match self.pattern {
            SharingPattern::PingPong => self.ping_pong(ctx),
            SharingPattern::ProducerConsumer => self.producer_consumer(ctx),
            SharingPattern::FalseSharing => self.false_sharing(ctx),
            SharingPattern::ReadMostly => self.read_mostly(ctx),
            SharingPattern::WawFriendly => self.waw_friendly(ctx),
            SharingPattern::WawHostile => self.waw_hostile(ctx),
            SharingPattern::Migratory => self.migratory(ctx),
        }
    }

    fn knobs(&self) -> (u64, u64, u64) {
        (
            u64::from(self.tasks),
            u64::from(self.rounds),
            u64::from(self.ops),
        )
    }

    /// Two hot cache blocks, double-buffered: each round one rotating
    /// writer fills this round's block while every task re-reads the block
    /// written last round. The join between rounds orders the handoff, so
    /// the trace is DRF while the blocks bounce between cores.
    fn ping_pong(&self, ctx: &mut TaskCtx<'_>) {
        let (t, rounds, ops) = self.knobs();
        let hot = ctx.alloc::<u64>(16); // two blocks of 8 words
        let scratch = ctx.alloc::<u64>(t * 8);
        for k in 0..16 {
            ctx.write(&hot, k, mix3(self.seed, 0, 0, k));
        }
        let reads = ops.min(64);
        for r in 0..rounds {
            let writer = r % t;
            let wbuf = (r % 2) * 8;
            let rbuf = ((r + 1) % 2) * 8;
            let seed = self.seed;
            ctx.parallel_for(0, t, 1, &|c, i| {
                if i == writer {
                    for k in 0..8 {
                        c.write(&hot, wbuf + k, mix3(seed, r, 1, k));
                    }
                }
                for n in 0..reads {
                    let _ = c.read(&hot, rbuf + (n % 8));
                }
                c.write(&scratch, i * 8 + (r % 8), r + i);
                c.work(4);
            });
        }
    }

    /// Even tasks produce into per-pair segments of the current buffer;
    /// odd tasks consume the segment their producer filled last round
    /// (double-buffered, so the round's writes and reads never overlap).
    fn producer_consumer(&self, ctx: &mut TaskCtx<'_>) {
        let (t, rounds, ops) = self.knobs();
        let pairs = (t / 2).max(1);
        let seg = ((self.footprint / 8) / (2 * pairs)).clamp(8, 512);
        let shared = ctx.alloc::<u64>(2 * pairs * seg);
        // Pre-fill the odd buffer: it is "previous" for round 0.
        for p in 0..pairs {
            for k in 0..seg.min(16) {
                ctx.write(&shared, (pairs + p) * seg + k, mix3(self.seed, p, 0, k));
            }
        }
        for r in 0..rounds {
            let cur = r % 2;
            let prev = 1 - cur;
            let seed = self.seed;
            ctx.parallel_for(0, t, 1, &|c, i| {
                let pair = i / 2;
                if pair >= pairs {
                    c.work(8); // odd task count: the tail task only computes
                    return;
                }
                if i % 2 == 0 {
                    for n in 0..ops {
                        c.write(&shared, (cur * pairs + pair) * seg + (n % seg), {
                            mix3(seed, r, pair, n)
                        });
                    }
                } else {
                    for n in 0..ops {
                        let _ = c.read(&shared, (prev * pairs + pair) * seg + (n % seg));
                    }
                    c.work(2);
                }
            });
        }
    }

    /// Groups of up to eight tasks hammer *distinct words of the same
    /// cache blocks* — byte-disjoint (hence race-free) but maximally
    /// coherence-hostile. The block area is a declared WARD region, so
    /// protocols with a W state may leave it incoherent until the
    /// end-of-round reconciliation. Values are a function of the slot
    /// alone: deferred writes from different rounds (the leaf-heap
    /// re-marks can keep pages in a region past each scope's exit) then
    /// merge to the same image regardless of reconciliation order — the
    /// benign-WAW discipline the paper licenses.
    fn false_sharing(&self, ctx: &mut TaskCtx<'_>) {
        let (t, rounds, ops) = self.knobs();
        let groups = t.div_ceil(8);
        // At least two pages of blocks so the declared scope contains a
        // whole page after inward rounding; `groups` divides the stripes.
        let blocks = (self.footprint / 64).clamp(groups.max(128), 1024);
        let per_group = blocks / groups;
        let shared = ctx.alloc::<u64>(blocks * 8);
        for _round in 0..rounds {
            let seed = self.seed;
            ctx.ward_scope(&shared, |ctx| {
                ctx.parallel_for(0, t, 1, &|c, i| {
                    let word = i % 8;
                    let group = i / 8;
                    for n in 0..ops {
                        let b = group + (n % per_group) * groups;
                        let slot = b * 8 + word;
                        c.write(&shared, slot, mix3(seed, 3, 0, slot));
                    }
                    c.work(2);
                });
            });
        }
        // Phase-1 validation only (see `waw_friendly` for why a traced
        // read after the scopes would not be DRF).
        for k in 0..8 {
            let _ = ctx.peek(&shared, k);
        }
    }

    /// Every task streams seeded random reads out of a shared table and
    /// writes one private (block-padded) result slot. The table accesses
    /// run inside a `drf_scope`, so full data-race freedom is dynamically
    /// verified during generation.
    fn read_mostly(&self, ctx: &mut TaskCtx<'_>) {
        let (t, rounds, ops) = self.knobs();
        let slots = (self.footprint / 8).clamp(2048, 16_384);
        let seed = self.seed;
        // Build the table with a fork-join `tabulate` (the house idiom): a
        // plain root-task write loop would leave the fill deferred in the
        // root core's cache under WARD (fresh pages are auto-marked), and
        // the scope below keeps the pages marked, so the readers would see
        // protocol-dependent values.
        let shared = ctx.tabulate::<u64>(slots, 512, &|_c, k| mix3(seed, 0, 7, k));
        let out = ctx.alloc::<u64>(t * 8);
        ctx.drf_scope(&shared, |ctx| {
            for r in 0..rounds {
                ctx.parallel_for(0, t, 1, &|c, i| {
                    let mut acc = 0u64;
                    for n in 0..ops {
                        let idx = mix3(seed, r, i, n) % slots;
                        acc ^= c.read(&shared, idx);
                    }
                    c.work(ops / 4 + 1);
                    c.write(&out, i * 8, acc);
                });
            }
        });
    }

    /// Benign WAW at scale: tasks race writes across one large declared
    /// WARD region, but every write to a slot stores the same seeded value
    /// (a function of the slot alone), so any interleaving yields the same
    /// image — the §2.3 discipline DRF-based designs must reject.
    fn waw_friendly(&self, ctx: &mut TaskCtx<'_>) {
        let (t, rounds, ops) = self.knobs();
        let slots = (self.footprint / 8).clamp(2048, 131_072);
        let shared = ctx.alloc::<u64>(slots);
        let seed = self.seed;
        ctx.ward_scope(&shared, |ctx| {
            for r in 0..rounds {
                ctx.parallel_for(0, t, 1, &|c, i| {
                    for n in 0..ops {
                        let slot = mix3(seed, r ^ 0xa5, i ^ n, n) % slots;
                        c.write(&shared, slot, mix3(seed, 11, 0, slot));
                    }
                    c.work(2);
                });
            }
        });
        // Validate through phase-1 memory only: the leaf-heap re-marking of
        // §4.1 may keep these pages inside a WARD region past the scope's
        // exit, so a *traced* root read here would be a cross-task RAW with
        // a protocol-dependent answer (exactly what WARD licenses).
        for k in 0..8 {
            let v = ctx.peek(&shared, k);
            assert!(
                v == 0 || v == mix3(seed, 11, 0, k),
                "slot {k}: unexpected value {v:#x}"
            );
        }
    }

    /// WARD overhead with no WARD benefit: every round allocates a fresh
    /// two-page buffer, declares it, races a handful of same-value writes
    /// across it and immediately reconciles — region add/remove churn
    /// dominates the almost-nonexistent useful work.
    fn waw_hostile(&self, ctx: &mut TaskCtx<'_>) {
        let (t, rounds, ops) = self.knobs();
        let writes = ops.min(16);
        for r in 0..rounds {
            let tiny = ctx.alloc::<u64>(1024); // two pages: scope keeps >= 1
            let seed = self.seed;
            ctx.ward_scope(&tiny, |ctx| {
                ctx.parallel_for(0, t, 1, &|c, i| {
                    for n in 0..writes {
                        let slot = mix3(seed, r, i.wrapping_add(n), 3) % 1024;
                        c.write(&tiny, slot, mix3(seed, 13, 0, slot));
                    }
                    c.work(1);
                });
            });
            // Phase-1 validation only (see `waw_friendly` for why a traced
            // read after the scope would not be DRF).
            let _ = ctx.peek(&tiny, r % 1024);
        }
    }

    /// One rotating owner per round read-modify-writes the shared chunk
    /// while everyone else computes privately — the chunk migrates from
    /// cache to cache with the ownership.
    fn migratory(&self, ctx: &mut TaskCtx<'_>) {
        let (t, rounds, ops) = self.knobs();
        let slots = (self.footprint / 8).clamp(16, 4096);
        let shared = ctx.alloc::<u64>(slots);
        for k in 0..slots.min(1024) {
            ctx.write(&shared, k, mix3(self.seed, 5, 0, k));
        }
        let scratch = ctx.alloc::<u64>(t * 8);
        for r in 0..rounds {
            let owner = r % t;
            let seed = self.seed;
            ctx.parallel_for(0, t, 1, &|c, i| {
                if i == owner {
                    for n in 0..ops {
                        let idx = (r.wrapping_mul(17).wrapping_add(n)) % slots;
                        let v = c.read(&shared, idx);
                        c.write(&shared, idx, v.wrapping_add(1));
                    }
                } else {
                    c.write(&scratch, i * 8, mix3(seed, r, i, 0));
                    c.work(ops / 2 + 1);
                }
            });
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.token())
    }
}

/// A seeded, endless stream of workload specs cycling through a pattern
/// set with varied knobs — what the differential fuzz gate draws from.
/// Equal seeds (and pattern sets) produce identical streams.
#[derive(Clone, Debug)]
pub struct WorkloadGen {
    state: u64,
    patterns: Vec<SharingPattern>,
    emitted: u64,
}

impl WorkloadGen {
    /// A stream over every pattern.
    pub fn new(seed: u64) -> WorkloadGen {
        WorkloadGen::with_patterns(seed, &SharingPattern::ALL).unwrap_or_else(|e| panic!("{e}"))
    }

    /// A stream restricted to `patterns` (must be non-empty).
    pub fn with_patterns(
        seed: u64,
        patterns: &[SharingPattern],
    ) -> Result<WorkloadGen, WorkloadGenError> {
        if patterns.is_empty() {
            return Err(WorkloadGenError::BadKnob(
                "a workload stream needs at least one pattern".into(),
            ));
        }
        Ok(WorkloadGen {
            state: splitmix64(seed ^ 0x57a7_2d3e_9f4b_0c61),
            patterns: patterns.to_vec(),
            emitted: 0,
        })
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// The next spec in the stream (always valid).
    pub fn next_spec(&mut self) -> WorkloadSpec {
        const FOOTPRINTS: [u64; 6] = [512, 1024, 2048, 4096, 8192, 16384];
        let pattern = self.patterns[(self.emitted % self.patterns.len() as u64) as usize];
        self.emitted += 1;
        let seed = self.next_u64();
        let spec = WorkloadSpec {
            pattern,
            seed,
            tasks: 2 + (self.next_u64() % 7) as u32,
            rounds: 2 + (self.next_u64() % 5) as u32,
            ops: 4 + (self.next_u64() % 61) as u32,
            footprint: FOOTPRINTS[(self.next_u64() % FOOTPRINTS.len() as u64) as usize],
        };
        debug_assert!(spec.validate().is_ok());
        spec
    }
}

impl Iterator for WorkloadGen {
    type Item = WorkloadSpec;

    fn next(&mut self) -> Option<WorkloadSpec> {
        Some(self.next_spec())
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A pure hash of (seed, a, b, c): every "random" choice a pattern body
/// makes flows through this, so leaf closures stay `Fn` and the trace is a
/// pure function of the spec.
fn mix3(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    splitmix64(seed ^ a.rotate_left(21) ^ b.rotate_left(42) ^ c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pattern_builds_a_valid_trace() {
        for pattern in SharingPattern::ALL {
            let spec = WorkloadSpec::new(pattern, 42);
            let p = spec.build();
            p.check_invariants()
                .unwrap_or_else(|e| panic!("{pattern}: {e}"));
            assert!(p.stats.tasks > 1, "{pattern}: no parallelism");
            assert!(p.stats.memory_accesses > 0, "{pattern}: no memory traffic");
        }
    }

    #[test]
    fn equal_specs_build_identical_traces() {
        for pattern in SharingPattern::ALL {
            let spec = WorkloadSpec::new(pattern, 7);
            let a = spec.build();
            let b = spec.build();
            assert_eq!(a.stats, b.stats, "{pattern}");
            assert_eq!(a.tasks.len(), b.tasks.len(), "{pattern}");
            for (ta, tb) in a.tasks.iter().zip(&b.tasks) {
                assert_eq!(ta.events, tb.events, "{pattern}");
            }
            assert_eq!(a.fingerprint(), b.fingerprint(), "{pattern}");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = WorkloadSpec::new(SharingPattern::ReadMostly, 1).build();
        let b = WorkloadSpec::new(SharingPattern::ReadMostly, 2).build();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn tokens_round_trip() {
        let mut gen = WorkloadGen::new(0xfeed);
        for _ in 0..32 {
            let spec = gen.next_spec();
            let token = spec.token();
            let back = WorkloadSpec::from_token(&token).expect("token parses");
            assert_eq!(back, spec, "{token}");
            assert!(
                token.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
                "token {token:?} is not filesystem-safe"
            );
        }
    }

    #[test]
    fn malformed_tokens_are_typed_errors() {
        for bad in [
            "",
            "ping-pong",
            "ping-pong-s00-t4-r3-o24", // missing footprint
            "no-such-pattern-s0000000000000000-t4-r3-o24-f4096",
            "ping-pong-sZZ-t4-r3-o24-f4096",
            "ping-pong-s0000000000000000-tmany-r3-o24-f4096",
            "ping-pong-s0000000000000000-t99-r3-o24-f4096", // knob out of range
        ] {
            assert!(WorkloadSpec::from_token(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn knob_bounds_are_enforced() {
        let ok = WorkloadSpec::new(SharingPattern::PingPong, 0);
        ok.validate().unwrap();
        for (mutate, what) in [
            (
                &(|s: &mut WorkloadSpec| s.tasks = 1) as &dyn Fn(&mut WorkloadSpec),
                "one task",
            ),
            (&|s: &mut WorkloadSpec| s.tasks = 65, "65 tasks"),
            (&|s: &mut WorkloadSpec| s.rounds = 0, "zero rounds"),
            (&|s: &mut WorkloadSpec| s.rounds = 257, "257 rounds"),
            (&|s: &mut WorkloadSpec| s.ops = 0, "zero ops"),
            (&|s: &mut WorkloadSpec| s.ops = 4097, "4097 ops"),
            (
                &|s: &mut WorkloadSpec| s.footprint = 256,
                "footprint below 512",
            ),
            (
                &|s: &mut WorkloadSpec| s.footprint = (1 << 20) + 1,
                "footprint above 1 MiB",
            ),
        ] {
            let mut s = ok;
            mutate(&mut s);
            assert!(
                matches!(s.validate(), Err(WorkloadGenError::BadKnob(_))),
                "{what} should be rejected"
            );
        }
    }

    #[test]
    fn streams_are_deterministic_and_respect_pattern_filters() {
        let a: Vec<WorkloadSpec> = WorkloadGen::new(9).take(20).collect();
        let b: Vec<WorkloadSpec> = WorkloadGen::new(9).take(20).collect();
        assert_eq!(a, b);
        let c: Vec<WorkloadSpec> = WorkloadGen::new(10).take(20).collect();
        assert_ne!(a, c);

        let only = [SharingPattern::Migratory, SharingPattern::PingPong];
        let filtered = WorkloadGen::with_patterns(9, &only).unwrap();
        for (i, spec) in filtered.take(10).enumerate() {
            assert_eq!(spec.pattern, only[i % 2]);
        }
        assert!(WorkloadGen::with_patterns(9, &[]).is_err());
    }

    #[test]
    fn waw_patterns_mark_regions_and_hostile_churns_more() {
        let friendly = WorkloadSpec::new(SharingPattern::WawFriendly, 3).build();
        let mut hostile_spec = WorkloadSpec::new(SharingPattern::WawHostile, 3);
        hostile_spec.rounds = 8;
        let hostile = hostile_spec.build();
        assert!(friendly.stats.regions_marked > 0);
        assert!(hostile.stats.regions_marked > 0);
        // The hostile shape exists to churn regions: per memory access it
        // marks far more often than the friendly bulk-write shape.
        let churn = |p: &TraceProgram| p.stats.regions_marked * 1000 / p.stats.memory_accesses;
        assert!(
            churn(&hostile) > churn(&friendly),
            "hostile {} vs friendly {}",
            churn(&hostile),
            churn(&friendly)
        );
    }
}
