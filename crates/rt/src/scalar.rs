//! Typed views over simulated memory.

use std::marker::PhantomData;
use warden_mem::Addr;

/// A scalar type that can live in simulated memory.
///
/// All implementations have power-of-two sizes ≤ 8 bytes, so an aligned
/// element never crosses a cache-block boundary.
///
/// This trait is sealed: the access paths assume the size/alignment
/// guarantees above.
pub trait Scalar: Copy + private::Sealed {
    /// Size in bytes (1, 2, 4 or 8).
    const SIZE: u64;
    /// Encode into the low `SIZE` bytes (little-endian).
    fn to_bits(self) -> u64;
    /// Decode from the low `SIZE` bytes (little-endian).
    fn from_bits(bits: u64) -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for i64 {}
    impl Sealed for f64 {}
}

impl Scalar for u8 {
    const SIZE: u64 = 1;
    fn to_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(bits: u64) -> u8 {
        bits as u8
    }
}

impl Scalar for u16 {
    const SIZE: u64 = 2;
    fn to_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(bits: u64) -> u16 {
        bits as u16
    }
}

impl Scalar for u32 {
    const SIZE: u64 = 4;
    fn to_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(bits: u64) -> u32 {
        bits as u32
    }
}

impl Scalar for u64 {
    const SIZE: u64 = 8;
    fn to_bits(self) -> u64 {
        self
    }
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Scalar for i64 {
    const SIZE: u64 = 8;
    fn to_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(bits: u64) -> i64 {
        bits as i64
    }
}

impl Scalar for f64 {
    const SIZE: u64 = 8;
    fn to_bits(self) -> u64 {
        self.to_bits()
    }
    fn from_bits(bits: u64) -> f64 {
        f64::from_bits(bits)
    }
}

/// A typed slice of simulated memory: a base address plus a length.
///
/// `SimSlice` is a *handle* (Copy); all element access goes through
/// [`TaskCtx`](crate::TaskCtx) so that every read and write is traced,
/// disentanglement-checked, and charged to the accessing task.
///
/// # Example
///
/// ```
/// use warden_rt::{trace_program, RtOptions};
///
/// let program = trace_program("example", RtOptions::default(), |ctx| {
///     let xs = ctx.alloc::<u64>(4);
///     ctx.write(&xs, 0, 41);
///     let v = ctx.read(&xs, 0) + 1;
///     ctx.write(&xs, 1, v);
///     assert_eq!(ctx.read(&xs, 1), 42);
/// });
/// assert!(program.check_invariants().is_ok());
/// ```
#[derive(Debug)]
pub struct SimSlice<T> {
    base: Addr,
    len: u64,
    _marker: PhantomData<fn() -> T>,
}

// Manual impls: `SimSlice<T>` is a handle and is Copy regardless of `T`.
impl<T> Clone for SimSlice<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SimSlice<T> {}

impl<T: Scalar> SimSlice<T> {
    /// Construct from a raw base address (runtime-internal).
    pub(crate) fn from_raw(base: Addr, len: u64) -> SimSlice<T> {
        SimSlice {
            base,
            len,
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the slice has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address of the slice.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn addr_of(&self, i: u64) -> Addr {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base + i * T::SIZE
    }

    /// A sub-slice view over `[from, to)` (no allocation, same memory).
    ///
    /// # Panics
    ///
    /// Panics if `from > to` or `to > len()`.
    pub fn view(&self, from: u64, to: u64) -> SimSlice<T> {
        assert!(from <= to && to <= self.len, "bad view {from}..{to}");
        SimSlice {
            base: self.base + from * T::SIZE,
            len: to - from,
            _marker: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u8::from_bits(0xABu8.to_bits()), 0xAB);
        assert_eq!(u64::from_bits(u64::MAX.to_bits()), u64::MAX);
        assert_eq!(i64::from_bits((-5i64).to_bits()), -5);
        let f = -1234.5e-3;
        assert_eq!(f64::from_bits(Scalar::to_bits(f)), f);
    }

    #[test]
    fn addr_of_scales_by_size() {
        let s: SimSlice<u32> = SimSlice::from_raw(Addr(0x1000), 10);
        assert_eq!(s.addr_of(3), Addr(0x100c));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn addr_of_checks_bounds() {
        let s: SimSlice<u8> = SimSlice::from_raw(Addr(0), 2);
        s.addr_of(2);
    }

    #[test]
    fn view_offsets_base() {
        let s: SimSlice<u64> = SimSlice::from_raw(Addr(0x100), 8);
        let v = s.view(2, 6);
        assert_eq!(v.len(), 4);
        assert_eq!(v.addr_of(0), Addr(0x110));
        let vv = v.view(1, 2);
        assert_eq!(vv.addr_of(0), Addr(0x118));
    }

    #[test]
    #[should_panic(expected = "bad view")]
    fn view_checks_range() {
        let s: SimSlice<u8> = SimSlice::from_raw(Addr(0), 4);
        s.view(3, 2);
    }

    #[test]
    fn handles_are_copy() {
        let s: SimSlice<u64> = SimSlice::from_raw(Addr(8), 1);
        let t = s;
        assert_eq!(t.base(), s.base());
    }
}
