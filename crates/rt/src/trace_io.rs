//! Serialization of captured traces: record a program once, replay it under
//! many machine configurations without re-tracing.
//!
//! The format is a simple versioned little-endian binary encoding (no
//! external dependencies). Readers validate the magic, the version, and all
//! structural bounds. [`decode_trace`] reports failures as a typed
//! [`TraceDecodeError`]; [`read_trace`] keeps the original `io::Result`
//! surface (every decode failure maps to `io::ErrorKind::InvalidData`,
//! truncation to `UnexpectedEof`). Neither ever panics on malformed input.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use warden_rt::{trace_program, trace_io, RtOptions};
//!
//! let program = trace_program("demo", RtOptions::default(), |ctx| {
//!     let xs = ctx.alloc::<u64>(8);
//!     ctx.write(&xs, 0, 7);
//! });
//! let mut buf = Vec::new();
//! trace_io::write_trace(&mut buf, &program)?;
//! let back = trace_io::read_trace(&mut buf.as_slice())?;
//! assert_eq!(back.name, "demo");
//! assert_eq!(back.stats, program.stats);
//! # Ok(())
//! # }
//! ```

use crate::trace::{Event, RmwOp, RtStats, TaskTrace, TraceProgram};
use std::fmt;
use std::io::{self, Read, Write};
use warden_mem::{Addr, Memory, PageAddr, PAGE_SIZE};

const MAGIC: &[u8; 8] = b"WARDTRC1";

/// Why a trace failed to decode.
///
/// Every malformed input maps to one of these variants; the decoder never
/// panics. Truncation surfaces as [`TraceDecodeError::Io`] with kind
/// `UnexpectedEof` (the reader ran dry mid-field).
#[derive(Debug)]
pub enum TraceDecodeError {
    /// The underlying reader failed (includes truncation: `UnexpectedEof`).
    Io(io::Error),
    /// The stream does not start with the `WARDTRC1` magic.
    BadMagic,
    /// The declared benchmark-name length exceeds the 4096-byte cap.
    NameTooLong(usize),
    /// The benchmark name is not valid UTF-8.
    NameNotUtf8,
    /// A task names a parent id outside the task table.
    ParentOutOfRange {
        /// The task whose header is malformed.
        task: usize,
        /// The out-of-range parent id it declared.
        parent: u64,
    },
    /// Task 0 (the root) declared a parent.
    RootHasParent,
    /// A fork event's child count is zero or exceeds the task count.
    ForkChildCount(usize),
    /// A fork event names a child id outside the task table.
    ForkChildId(usize),
    /// A memory-access event's size is outside `1..=8`.
    AccessSize(u8),
    /// An event carries an unrecognized tag byte.
    UnknownTag(u8),
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDecodeError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceDecodeError::BadMagic => write!(f, "not a WARDen trace (bad magic)"),
            TraceDecodeError::NameTooLong(n) => {
                write!(f, "unreasonable name length ({n} bytes)")
            }
            TraceDecodeError::NameNotUtf8 => write!(f, "name is not UTF-8"),
            TraceDecodeError::ParentOutOfRange { task, parent } => {
                write!(f, "task {task}: parent id {parent} out of range")
            }
            TraceDecodeError::RootHasParent => write!(f, "root task must have no parent"),
            TraceDecodeError::ForkChildCount(n) => {
                write!(f, "fork child count {n} out of range")
            }
            TraceDecodeError::ForkChildId(c) => {
                write!(f, "fork child id {c} out of range")
            }
            TraceDecodeError::AccessSize(s) => {
                write!(f, "access size {s} out of range (want 1..=8)")
            }
            TraceDecodeError::UnknownTag(t) => write!(f, "unknown event tag {t}"),
        }
    }
}

impl std::error::Error for TraceDecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceDecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceDecodeError {
    fn from(e: io::Error) -> TraceDecodeError {
        TraceDecodeError::Io(e)
    }
}

impl From<TraceDecodeError> for io::Error {
    fn from(e: TraceDecodeError) -> io::Error {
        match e {
            TraceDecodeError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

type Decode<T> = Result<T, TraceDecodeError>;

fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u32<R: Read>(r: &mut R) -> Decode<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<R: Read>(r: &mut R) -> Decode<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn put_event<W: Write>(w: &mut W, ev: &Event) -> io::Result<()> {
    match *ev {
        Event::Load { addr, size } => {
            w.write_all(&[0, size])?;
            put_u64(w, addr.0)
        }
        Event::Store { addr, size, val } => {
            w.write_all(&[1, size])?;
            put_u64(w, addr.0)?;
            put_u64(w, val)
        }
        Event::Rmw {
            addr,
            size,
            val,
            op,
        } => {
            let tag = match op {
                RmwOp::Swap => 2,
                RmwOp::Add => 3,
            };
            w.write_all(&[tag, size])?;
            put_u64(w, addr.0)?;
            put_u64(w, val)
        }
        Event::Compute { amount } => {
            w.write_all(&[4, 0])?;
            put_u64(w, amount)
        }
        Event::Fork { ref children } => {
            w.write_all(&[5, 0])?;
            put_u32(w, children.len() as u32)?;
            for &c in children {
                put_u64(w, c as u64)?;
            }
            Ok(())
        }
        Event::RegionAdd { start, end, token } => {
            w.write_all(&[6, 0])?;
            put_u64(w, start.0)?;
            put_u64(w, end.0)?;
            put_u32(w, token)
        }
        Event::RegionRemove { token } => {
            w.write_all(&[7, 0])?;
            put_u32(w, token)
        }
    }
}

fn get_event<R: Read>(r: &mut R, ntasks: usize) -> Decode<Event> {
    let mut head = [0u8; 2];
    r.read_exact(&mut head)?;
    let (tag, size) = (head[0], head[1]);
    if matches!(tag, 0..=3) && !(1..=8).contains(&size) {
        return Err(TraceDecodeError::AccessSize(size));
    }
    Ok(match tag {
        0 => Event::Load {
            addr: Addr(get_u64(r)?),
            size,
        },
        1 => Event::Store {
            addr: Addr(get_u64(r)?),
            size,
            val: get_u64(r)?,
        },
        2 | 3 => Event::Rmw {
            addr: Addr(get_u64(r)?),
            size,
            val: get_u64(r)?,
            op: if tag == 2 { RmwOp::Swap } else { RmwOp::Add },
        },
        4 => Event::Compute {
            amount: get_u64(r)?,
        },
        5 => {
            let n = get_u32(r)? as usize;
            if n == 0 || n > ntasks {
                return Err(TraceDecodeError::ForkChildCount(n));
            }
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                let c = get_u64(r)? as usize;
                if c >= ntasks {
                    return Err(TraceDecodeError::ForkChildId(c));
                }
                children.push(c);
            }
            Event::Fork { children }
        }
        6 => Event::RegionAdd {
            start: Addr(get_u64(r)?),
            end: Addr(get_u64(r)?),
            token: get_u32(r)?,
        },
        7 => Event::RegionRemove { token: get_u32(r)? },
        _ => return Err(TraceDecodeError::UnknownTag(tag)),
    })
}

fn put_memory<W: Write>(w: &mut W, mem: &Memory) -> io::Result<()> {
    let pages = mem.resident();
    put_u32(w, pages.len() as u32)?;
    for (p, data) in pages {
        put_u64(w, p.0)?;
        w.write_all(data)?;
    }
    Ok(())
}

fn get_memory<R: Read>(r: &mut R) -> Decode<Memory> {
    let n = get_u32(r)?;
    let mut mem = Memory::new();
    let mut buf = vec![0u8; PAGE_SIZE as usize];
    for _ in 0..n {
        let page = PageAddr(get_u64(r)?);
        r.read_exact(&mut buf)?;
        mem.write_bytes(page.base(), &buf);
    }
    Ok(mem)
}

/// Serialize a captured trace. `w` may be a `&mut` reference (any
/// `W: Write` works).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(w: &mut W, program: &TraceProgram) -> io::Result<()> {
    w.write_all(MAGIC)?;
    put_u32(w, program.name.len() as u32)?;
    w.write_all(program.name.as_bytes())?;
    put_u32(w, program.tasks.len() as u32)?;
    for task in &program.tasks {
        put_u64(w, task.parent.map_or(u64::MAX, |p| p as u64))?;
        put_u32(w, task.depth)?;
        put_u32(w, task.events.len() as u32)?;
        for ev in &task.events {
            put_event(w, ev)?;
        }
    }
    let s = &program.stats;
    for v in [
        s.tasks,
        s.forks,
        s.allocated_bytes,
        s.pages_fresh,
        s.pages_recycled,
        s.regions_marked,
        s.max_depth as u64,
        s.events,
        s.instructions,
        s.memory_accesses,
        s.accesses_in_ward,
    ] {
        put_u64(w, v)?;
    }
    put_u64(w, program.address_range.0 .0)?;
    put_u64(w, program.address_range.1 .0)?;
    put_memory(w, &program.initial_memory)?;
    put_memory(w, &program.memory)
}

/// Deserialize a trace written by [`write_trace`], reporting failures as a
/// typed [`TraceDecodeError`].
///
/// # Errors
///
/// Returns the specific structural violation (bad magic, out-of-range ids,
/// bad sizes, unknown tags), or [`TraceDecodeError::Io`] for reader
/// failures including truncation (`UnexpectedEof`). Never panics on
/// malformed input.
pub fn decode_trace<R: Read>(r: &mut R) -> Decode<TraceProgram> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let name_len = get_u32(r)? as usize;
    if name_len > 4096 {
        return Err(TraceDecodeError::NameTooLong(name_len));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| TraceDecodeError::NameNotUtf8)?;
    let ntasks = get_u32(r)? as usize;
    let mut tasks = Vec::with_capacity(ntasks.min(1 << 16));
    for tid in 0..ntasks {
        let parent_raw = get_u64(r)?;
        let parent = if parent_raw == u64::MAX {
            None
        } else {
            let p = parent_raw as usize;
            if p >= ntasks {
                return Err(TraceDecodeError::ParentOutOfRange {
                    task: tid,
                    parent: parent_raw,
                });
            }
            Some(p)
        };
        if tid == 0 && parent.is_some() {
            return Err(TraceDecodeError::RootHasParent);
        }
        let depth = get_u32(r)?;
        let nevents = get_u32(r)? as usize;
        let mut events = Vec::with_capacity(nevents.min(1 << 16));
        for _ in 0..nevents {
            events.push(get_event(r, ntasks)?);
        }
        tasks.push(TaskTrace {
            parent,
            depth,
            events,
        });
    }
    let mut vals = [0u64; 11];
    for v in &mut vals {
        *v = get_u64(r)?;
    }
    let stats = RtStats {
        tasks: vals[0],
        forks: vals[1],
        allocated_bytes: vals[2],
        pages_fresh: vals[3],
        pages_recycled: vals[4],
        regions_marked: vals[5],
        max_depth: vals[6] as u32,
        events: vals[7],
        instructions: vals[8],
        memory_accesses: vals[9],
        accesses_in_ward: vals[10],
    };
    let address_range = (Addr(get_u64(r)?), Addr(get_u64(r)?));
    let initial_memory = get_memory(r)?;
    let memory = get_memory(r)?;
    Ok(TraceProgram {
        name,
        tasks,
        memory,
        stats,
        address_range,
        initial_memory,
    })
}

/// Deserialize a trace written by [`write_trace`] behind an `io::Result`
/// surface (a thin wrapper over [`decode_trace`]).
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/version, out-of-range ids, or
/// unknown tags; `UnexpectedEof` on truncation; and propagates I/O errors
/// from the reader.
pub fn read_trace<R: Read>(r: &mut R) -> io::Result<TraceProgram> {
    decode_trace(r).map_err(io::Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{trace_program, RtOptions};

    fn sample() -> TraceProgram {
        trace_program("roundtrip", RtOptions::default(), |ctx| {
            let input = ctx.preload(&[5u64, 6, 7]);
            let xs = ctx.tabulate::<u64>(64, 8, &|c, i| c.read(&input, i % 3) + i);
            let total = ctx.reduce(0, 64, 8, &|c, i| c.read(&xs, i), &|a, b| a + b, 0);
            let flag = ctx.alloc::<u64>(1);
            ctx.fetch_add(&flag, 0, total);
            let (ok, _) = ctx.cas(&flag, 0, total, total + 1);
            assert!(ok);
        })
    }

    #[test]
    fn round_trip_preserves_everything() {
        let p = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &p).unwrap();
        let q = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(q.name, p.name);
        assert_eq!(q.stats, p.stats);
        assert_eq!(q.tasks.len(), p.tasks.len());
        for (a, b) in p.tasks.iter().zip(&q.tasks) {
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.depth, b.depth);
            assert_eq!(a.events, b.events);
        }
        assert_eq!(q.address_range, p.address_range);
        assert_eq!(q.memory.digest(), p.memory.digest());
        assert_eq!(q.initial_memory.digest(), p.initial_memory.digest());
        q.check_invariants().unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&mut &b"NOTATRCE________"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let typed = decode_trace(&mut &b"NOTATRCE________"[..]).unwrap_err();
        assert!(matches!(typed, TraceDecodeError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let p = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &p).unwrap();
        for cut in [9, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_trace(&mut &buf[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn every_prefix_fails_cleanly() {
        // Exhaustive truncation: decoding any strict prefix must return a
        // typed error (truncation = Io/UnexpectedEof once the magic is
        // intact) and must never panic or spuriously succeed.
        let p = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &p).unwrap();
        for cut in 0..buf.len() {
            let err = decode_trace(&mut &buf[..cut]).expect_err("prefix must fail");
            if cut >= MAGIC.len() {
                match err {
                    TraceDecodeError::Io(e) => {
                        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
                    }
                    other => panic!("cut at {cut}: unexpected error {other}"),
                }
            } else {
                assert!(
                    matches!(err, TraceDecodeError::Io(_)),
                    "cut at {cut} inside magic"
                );
            }
        }
    }

    #[test]
    fn corrupted_child_id_rejected() {
        let p = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &p).unwrap();
        // Find the first Fork event's child-count field and blow up an id.
        // Cheap approach: flip bytes across the task section until the
        // reader objects with InvalidData (never panics).
        let mut rejected = 0;
        for i in (16..buf.len().min(4000)).step_by(37) {
            let mut bad_buf = buf.clone();
            bad_buf[i] ^= 0xFF;
            match read_trace(&mut bad_buf.as_slice()) {
                Err(_) => rejected += 1,
                Ok(q) => {
                    // A mutation that still parses must still be structurally
                    // bounded.
                    assert!(q.tasks.len() < 1_000_000);
                }
            }
        }
        assert!(rejected > 0, "some corruption must be caught");
    }

    #[test]
    fn decode_errors_name_the_violation() {
        let p = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &p).unwrap();
        // Corrupt the declared name length to something absurd.
        let mut long_name = buf.clone();
        long_name[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_trace(&mut long_name.as_slice()).unwrap_err(),
            TraceDecodeError::NameTooLong(_)
        ));
        // An io::Error round-trip keeps InvalidData for structural errors.
        let as_io: io::Error = TraceDecodeError::UnknownTag(99).into();
        assert_eq!(as_io.kind(), io::ErrorKind::InvalidData);
        assert!(as_io.to_string().contains("99"));
    }
}
