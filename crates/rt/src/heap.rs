//! The heap hierarchy: per-task bump-allocated heaps of pages, merged into
//! the parent at join (paper §2.1, Figure 2), plus the runtime arena and the
//! recycled-page pool.

use crate::trace::{RegionToken, TaskId};
use std::collections::HashMap;
use warden_mem::{Addr, PageAddr, PAGE_SIZE};

/// Owner sentinel for runtime-arena pages (scheduler metadata, join cells):
/// they belong to the language runtime, not to any heap, and are therefore
/// exempt from the disentanglement check and never WARD-marked.
pub(crate) const ARENA_OWNER: usize = usize::MAX;

/// A contiguous run of pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PageRun {
    pub first: PageAddr,
    pub npages: u64,
}

impl PageRun {
    pub fn start(self) -> Addr {
        self.first.base()
    }

    pub fn end(self) -> Addr {
        Addr(self.first.base().0 + self.npages * PAGE_SIZE)
    }
}

/// Per-heap allocation state.
#[derive(Clone, Debug, Default)]
struct HeapInfo {
    /// Current bump pointer within the frontier run.
    frontier: u64,
    /// End of the frontier run.
    frontier_end: u64,
    /// Separate bump frontier for scratch (short-lived) data, so whole
    /// scratch pages can be recycled at task completion.
    sfrontier: u64,
    sfrontier_end: u64,
    /// WARD regions currently marked on this heap's pages.
    regions: Vec<(RegionToken, Addr, Addr)>,
    /// Runs to recycle when the owning task completes (short-lived data the
    /// GC would promptly reclaim).
    scratch: Vec<PageRun>,
    /// Non-scratch runs this task itself allocated, re-marked whenever the
    /// task becomes a leaf again after a join (paper §4.1).
    own_runs: Vec<(Addr, Addr)>,
    /// Recycled runs this task may reuse. Entries only ever arrive from
    /// *joined* descendants (via [`HeapManager::merge_into_parent`]), so
    /// reuse always has a fork-join happens-before edge from the old owner
    /// to the new one — any work-stealing replay schedule preserves the
    /// write order on recycled addresses.
    pool: Vec<PageRun>,
}

/// The allocator + heap-hierarchy bookkeeping shared by all tasks.
#[derive(Debug)]
pub(crate) struct HeapManager {
    /// Virtual-address bump pointer (in pages). Fresh addresses are never
    /// reused (modulo recycling), so a page's identity is stable.
    next_page: u64,
    /// Whether the per-heap pools are consulted at all.
    recycle: bool,
    heaps: Vec<HeapInfo>,
    /// Page → heap id that allocated it.
    page_owner: HashMap<PageAddr, usize>,
    /// Union-find over heap ids implementing heap merging at joins.
    uf: Vec<usize>,
    /// Runtime-arena free list of join-cell slots.
    arena_free: Vec<Addr>,
    /// Arena bump state.
    arena_frontier: u64,
    arena_end: u64,
    /// Highest address handed out (for address-range reporting).
    pub high_water: u64,
    pub pages_fresh: u64,
    pub pages_recycled: u64,
}

/// First allocated address: keep page 0 unused so `Addr(0)` never aliases
/// real data.
pub(crate) const BASE_ADDR: u64 = PAGE_SIZE;

/// Spacing of join cells in the arena. 16 bytes puts four cells per cache
/// block — deliberate false sharing, like the packed synchronization data of
/// real runtimes.
const ARENA_SLOT: u64 = 16;

impl HeapManager {
    pub fn new(recycle: bool) -> HeapManager {
        HeapManager {
            next_page: BASE_ADDR / PAGE_SIZE,
            recycle,
            heaps: Vec::new(),
            page_owner: HashMap::new(),
            uf: Vec::new(),
            arena_free: Vec::new(),
            arena_frontier: 0,
            arena_end: 0,
            high_water: BASE_ADDR,
            pages_fresh: 0,
            pages_recycled: 0,
        }
    }

    /// Register a new (empty) heap for a task. Heap ids equal task ids.
    pub fn new_heap(&mut self, task: TaskId) {
        assert_eq!(
            task,
            self.heaps.len(),
            "heaps must be created in task order"
        );
        self.heaps.push(HeapInfo::default());
        self.uf.push(task);
    }

    fn take_run(&mut self, npages: u64, owner: usize) -> PageRun {
        let run = if self.recycle && owner != ARENA_OWNER {
            let pool = &mut self.heaps[owner].pool;
            match pool.iter().rposition(|r| r.npages >= npages) {
                Some(i) => {
                    let mut r = pool[i];
                    if r.npages == npages {
                        pool.remove(i);
                    } else {
                        // Split: keep the tail in the pool.
                        pool[i] = PageRun {
                            first: r.first + npages,
                            npages: r.npages - npages,
                        };
                        r.npages = npages;
                    }
                    self.pages_recycled += npages;
                    r
                }
                None => self.fresh_run(npages),
            }
        } else {
            self.fresh_run(npages)
        };
        for i in 0..npages {
            self.page_owner.insert(run.first + i, owner);
        }
        self.high_water = self.high_water.max(run.end().0);
        run
    }

    fn fresh_run(&mut self, npages: u64) -> PageRun {
        let first = PageAddr(self.next_page);
        self.next_page += npages;
        self.pages_fresh += npages;
        PageRun { first, npages }
    }

    /// Bump-allocate `size` bytes (8-byte aligned) in a task's heap.
    /// Returns the address and, when a new page run had to be opened, that
    /// run (so the caller can WARD-mark it).
    pub fn alloc(&mut self, task: TaskId, size: u64, scratch: bool) -> (Addr, Option<PageRun>) {
        assert!(size > 0, "zero-size allocation");
        let size = size.div_ceil(8) * 8;
        let h = &mut self.heaps[task];
        let end = if scratch {
            h.sfrontier_end
        } else {
            h.frontier_end
        };
        let frontier = if scratch {
            &mut h.sfrontier
        } else {
            &mut h.frontier
        };
        if *frontier + size <= end {
            let addr = Addr(*frontier);
            *frontier += size;
            return (addr, None);
        }
        let npages = size.div_ceil(PAGE_SIZE);
        let run = self.take_run(npages, task);
        let h = &mut self.heaps[task];
        let addr = run.start();
        if scratch {
            h.sfrontier = addr.0 + size;
            h.sfrontier_end = run.end().0;
            h.scratch.push(run);
        } else {
            h.frontier = addr.0 + size;
            h.frontier_end = run.end().0;
        }
        (addr, Some(run))
    }

    /// Allocate a join cell in the runtime arena.
    pub fn alloc_arena(&mut self) -> Addr {
        if let Some(a) = self.arena_free.pop() {
            return a;
        }
        if self.arena_frontier + ARENA_SLOT > self.arena_end {
            let run = self.fresh_run(1);
            for i in 0..run.npages {
                self.page_owner.insert(run.first + i, ARENA_OWNER);
            }
            self.high_water = self.high_water.max(run.end().0);
            self.arena_frontier = run.start().0;
            self.arena_end = run.end().0;
        }
        let a = Addr(self.arena_frontier);
        self.arena_frontier += ARENA_SLOT;
        a
    }

    /// Return a join cell to the arena free list.
    pub fn free_arena(&mut self, addr: Addr) {
        self.arena_free.push(addr);
    }

    /// Remember a run the task allocated for itself (candidate for
    /// re-marking at joins).
    pub fn push_own_run(&mut self, task: TaskId, run: PageRun) {
        self.heaps[task].own_runs.push((run.start(), run.end()));
    }

    /// The runs this task allocated for itself — re-marked when the task
    /// becomes a leaf again after a join (paper §4.1: *all* leaf heaps are
    /// WARD regions, including a parent's heap once its children have merged
    /// back).
    pub fn own_runs(&self, task: TaskId) -> &[(Addr, Addr)] {
        &self.heaps[task].own_runs
    }

    /// Record a WARD region on a heap.
    pub fn push_region(&mut self, task: TaskId, token: RegionToken, start: Addr, end: Addr) {
        self.heaps[task].regions.push((token, start, end));
    }

    /// Take (and deactivate) all of a heap's WARD regions — done at forks and
    /// at task completion (paper §4.2).
    pub fn drain_regions(&mut self, task: TaskId) -> Vec<(RegionToken, Addr, Addr)> {
        std::mem::take(&mut self.heaps[task].regions)
    }

    /// Recycle a completed task's scratch runs into its own pool (which the
    /// parent absorbs at the join).
    pub fn free_scratch(&mut self, task: TaskId) -> u64 {
        let runs = std::mem::take(&mut self.heaps[task].scratch);
        let mut pages = 0;
        for r in &runs {
            pages += r.npages;
        }
        self.heaps[task].pool.extend(runs);
        pages
    }

    /// Merge a completed child heap into its parent (Figure 2's join step).
    ///
    /// # Panics
    ///
    /// Panics (in debug) if the child still has active WARD regions — the
    /// runtime must unmark before merging, or the parent could read stale
    /// W-state data.
    pub fn merge_into_parent(&mut self, child: TaskId, parent: TaskId) {
        debug_assert!(
            self.heaps[child].regions.is_empty(),
            "child heap merged with active WARD regions"
        );
        let child_rep = self.find(child);
        let parent_rep = self.find(parent);
        if child_rep != parent_rep {
            self.uf[child_rep] = parent_rep;
        }
        // The child has joined: its recycled runs become safe for the
        // parent (and for anything the parent forks later).
        let child_pool = std::mem::take(&mut self.heaps[child].pool);
        self.heaps[parent].pool.extend(child_pool);
        // The child's frontier page is abandoned; the parent keeps its own
        // frontier (bump allocators do not merge partial pages).
    }

    /// Union-find lookup with path compression.
    pub fn find(&mut self, heap: usize) -> usize {
        let mut root = heap;
        while self.uf[root] != root {
            root = self.uf[root];
        }
        let mut cur = heap;
        while self.uf[cur] != root {
            let next = self.uf[cur];
            self.uf[cur] = root;
            cur = next;
        }
        root
    }

    /// The (merged) heap that currently owns `page`: `None` for arena pages
    /// and for addresses outside any allocation.
    pub fn owner_of(&mut self, page: PageAddr) -> Option<usize> {
        match self.page_owner.get(&page).copied() {
            None => None,
            Some(ARENA_OWNER) => None,
            Some(h) => Some(self.find(h)),
        }
    }

    /// The raw allocating heap of `page` (no union-find), for recycling
    /// bookkeeping and tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn allocator_of(&self, page: PageAddr) -> Option<usize> {
        self.page_owner.get(&page).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> HeapManager {
        let mut m = HeapManager::new(true);
        m.new_heap(0);
        m
    }

    #[test]
    fn bump_allocations_are_adjacent() {
        let mut m = mgr();
        let (a, run) = m.alloc(0, 16, false);
        assert!(run.is_some());
        let (b, run2) = m.alloc(0, 8, false);
        assert!(run2.is_none(), "same page");
        assert_eq!(b - a, 16);
    }

    #[test]
    fn allocations_are_8_aligned() {
        let mut m = mgr();
        let (_, _) = m.alloc(0, 3, false);
        let (b, _) = m.alloc(0, 8, false);
        assert_eq!(b.0 % 8, 0);
    }

    #[test]
    fn large_alloc_spans_pages() {
        let mut m = mgr();
        let (a, run) = m.alloc(0, 3 * PAGE_SIZE, false);
        let run = run.unwrap();
        assert_eq!(run.npages, 3);
        assert_eq!(run.start(), a);
        assert_eq!(run.end() - run.start(), 3 * PAGE_SIZE);
    }

    #[test]
    fn scratch_pages_recycle_through_the_join() {
        let mut m = mgr();
        m.new_heap(1);
        let (a, _) = m.alloc(1, PAGE_SIZE, true);
        let freed = m.free_scratch(1);
        assert_eq!(freed, 1);
        // A *sibling* must NOT see the freed page (no happens-before edge)…
        m.new_heap(2);
        let (b, _) = m.alloc(2, PAGE_SIZE, false);
        assert_ne!(a, b);
        // …but after the child joins, the parent reuses it.
        m.merge_into_parent(1, 0);
        m.merge_into_parent(2, 0);
        let (c, _) = m.alloc(0, PAGE_SIZE, false);
        assert_eq!(c, a);
        assert_eq!(m.pages_recycled, 1);
        // Ownership transferred to the reusing heap.
        assert_eq!(m.allocator_of(a.page()), Some(0));
    }

    #[test]
    fn pool_split_keeps_remainder() {
        let mut m = mgr();
        m.new_heap(1);
        let (big, _) = m.alloc(1, 4 * PAGE_SIZE, true);
        m.free_scratch(1);
        m.merge_into_parent(1, 0);
        let (one, _) = m.alloc(0, PAGE_SIZE, false);
        assert_eq!(one, big);
        let (two, _) = m.alloc(0, PAGE_SIZE, false);
        assert_eq!(two.0, big.0 + PAGE_SIZE, "split reuses the remainder");
    }

    #[test]
    fn pools_climb_to_grandparents() {
        let mut m = mgr();
        m.new_heap(1);
        m.new_heap(2);
        let (a, _) = m.alloc(2, PAGE_SIZE, true);
        m.free_scratch(2);
        m.merge_into_parent(2, 1);
        m.merge_into_parent(1, 0);
        let (b, _) = m.alloc(0, PAGE_SIZE, false);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_reparents_pages() {
        let mut m = mgr();
        m.new_heap(1);
        let (a, _) = m.alloc(1, 64, false);
        assert_eq!(m.owner_of(a.page()), Some(1));
        m.merge_into_parent(1, 0);
        assert_eq!(m.owner_of(a.page()), Some(0));
    }

    #[test]
    fn nested_merges_resolve_to_root() {
        let mut m = mgr();
        m.new_heap(1);
        m.new_heap(2);
        let (a, _) = m.alloc(2, 64, false);
        m.merge_into_parent(2, 1);
        m.merge_into_parent(1, 0);
        assert_eq!(m.owner_of(a.page()), Some(0));
    }

    #[test]
    fn arena_cells_recycle_lifo() {
        let mut m = mgr();
        let a = m.alloc_arena();
        let b = m.alloc_arena();
        assert_eq!(b - a, ARENA_SLOT);
        m.free_arena(a);
        assert_eq!(m.alloc_arena(), a);
        // Arena pages have no disentanglement owner.
        assert_eq!(m.owner_of(a.page()), None);
    }

    #[test]
    fn regions_drain_once() {
        let mut m = mgr();
        m.push_region(0, 7, Addr(PAGE_SIZE), Addr(2 * PAGE_SIZE));
        let drained = m.drain_regions(0);
        assert_eq!(drained.len(), 1);
        assert!(m.drain_regions(0).is_empty());
    }

    #[test]
    fn fresh_addresses_never_repeat_without_recycling() {
        let mut m = HeapManager::new(false);
        m.new_heap(0);
        m.new_heap(1);
        let (a, _) = m.alloc(1, PAGE_SIZE, true);
        m.free_scratch(1);
        m.new_heap(2);
        let (b, _) = m.alloc(2, PAGE_SIZE, false);
        assert_ne!(a, b, "recycling disabled");
        assert_eq!(m.pages_recycled, 0);
    }
}
