//! Dynamic checking of the memory disciplines the paper relies on.
//!
//! * **Disentanglement** (paper Definition 1): every access must target the
//!   accessing task's own heap or an ancestor's heap. The runtime checks
//!   this on every traced access (in [`CheckMode::Strict`]); programs built
//!   on this runtime are therefore disentangled *by construction or by
//!   crash*, mirroring how MPL guarantees the property at the language
//!   level.
//! * **The WARD property** (paper §3.1): inside an explicitly declared WARD
//!   scope, no cross-task RAW dependence may occur. The checker tracks the
//!   writer of every byte written inside the scope and flags reads by any
//!   other task — a dynamic verifier for condition 1 of the WARD
//!   definition. (Condition 2, WAW apathy, is the program's semantic
//!   declaration and cannot be checked mechanically.)

use crate::trace::{TaskId, TaskTrace};
use std::collections::HashMap;
use warden_mem::Addr;

/// How strictly the runtime checks the memory discipline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckMode {
    /// No checking (fastest tracing).
    Off,
    /// Panic on the first violation (default).
    #[default]
    Strict,
}

/// Whether `anc` is `t` or one of `t`'s ancestors in the spawn tree.
pub(crate) fn is_ancestor_or_self(tasks: &[TaskTrace], anc: TaskId, t: TaskId) -> bool {
    let mut cur = t;
    loop {
        if cur == anc {
            return true;
        }
        match tasks[cur].parent {
            Some(p) => cur = p,
            None => return false,
        }
    }
}

/// Which discipline a declared scope enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ScopeKind {
    /// The WARD property (§3.1): forbid cross-task RAW; WAW is apathetic.
    Ward,
    /// Data-race freedom: forbid *any* cross-task pair with a write (RAW,
    /// WAR and WAW) — the stricter discipline the DRF-based prior work
    /// (§2.3) requires. Disentanglement is broader precisely because WARD
    /// scopes allow what DRF scopes reject.
    Drf,
}

/// State of one active declared scope (see
/// [`TaskCtx::ward_scope`](crate::TaskCtx::ward_scope) and
/// [`TaskCtx::drf_scope`](crate::TaskCtx::drf_scope)).
#[derive(Debug)]
pub(crate) struct WardScopeState {
    /// The discipline checked.
    pub kind: ScopeKind,
    /// Monitored byte range `[start, end)`.
    pub start: Addr,
    pub end: Addr,
    /// Byte → task that wrote it inside the scope.
    pub writers: HashMap<Addr, TaskId>,
    /// Byte → a task that read it inside the scope (DRF scopes only).
    pub readers: HashMap<Addr, TaskId>,
}

impl WardScopeState {
    pub fn new(kind: ScopeKind, start: Addr, end: Addr) -> WardScopeState {
        WardScopeState {
            kind,
            start,
            end,
            writers: HashMap::new(),
            readers: HashMap::new(),
        }
    }

    pub fn covers(&self, addr: Addr) -> bool {
        self.start <= addr && addr < self.end
    }

    /// Record and check a write of `size` bytes by `task`.
    pub fn on_write(&mut self, addr: Addr, size: u64, task: TaskId) -> Result<(), WardViolation> {
        for i in 0..size {
            let a = addr + i;
            if !self.covers(a) {
                continue;
            }
            if self.kind == ScopeKind::Drf {
                if let Some(&writer) = self.writers.get(&a) {
                    if writer != task {
                        return Err(WardViolation {
                            addr: a,
                            writer,
                            reader: task,
                        });
                    }
                }
                if let Some(&reader) = self.readers.get(&a) {
                    if reader != task {
                        return Err(WardViolation {
                            addr: a,
                            writer: task,
                            reader,
                        });
                    }
                }
            }
            self.writers.insert(a, task);
        }
        Ok(())
    }

    /// Record and check a read of `size` bytes by `task`: a byte written
    /// inside the scope by a *different* task is a cross-task RAW —
    /// forbidden by both disciplines.
    pub fn on_read(&mut self, addr: Addr, size: u64, task: TaskId) -> Result<(), WardViolation> {
        for i in 0..size {
            let a = addr + i;
            if !self.covers(a) {
                continue;
            }
            if let Some(&writer) = self.writers.get(&a) {
                if writer != task {
                    return Err(WardViolation {
                        addr: a,
                        writer,
                        reader: task,
                    });
                }
            }
            if self.kind == ScopeKind::Drf {
                self.readers.insert(a, task);
            }
        }
        Ok(())
    }
}

/// A detected cross-task read-after-write inside a WARD scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WardViolation {
    /// Violating byte address.
    pub addr: Addr,
    /// Task that wrote the byte inside the scope.
    pub writer: TaskId,
    /// Task that read it.
    pub reader: TaskId,
}

impl std::fmt::Display for WardViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WARD violation: task {} read byte {} written by concurrent task {} inside an active WARD scope",
            self.reader, self.addr, self.writer
        )
    }
}

impl std::error::Error for WardViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Vec<TaskTrace> {
        (0..n)
            .map(|i| TaskTrace {
                parent: if i == 0 { None } else { Some(i - 1) },
                depth: i as u32,
                events: vec![],
            })
            .collect()
    }

    #[test]
    fn ancestor_chain() {
        let tasks = chain(4);
        assert!(is_ancestor_or_self(&tasks, 0, 3));
        assert!(is_ancestor_or_self(&tasks, 2, 2));
        assert!(!is_ancestor_or_self(&tasks, 3, 0));
    }

    #[test]
    fn siblings_are_not_ancestors() {
        let mut tasks = chain(2);
        tasks.push(TaskTrace {
            parent: Some(0),
            depth: 1,
            events: vec![],
        });
        // Task 1 and task 2 are siblings under task 0.
        assert!(!is_ancestor_or_self(&tasks, 1, 2));
        assert!(!is_ancestor_or_self(&tasks, 2, 1));
        assert!(is_ancestor_or_self(&tasks, 0, 2));
    }

    #[test]
    fn ward_scope_same_task_raw_is_fine() {
        let mut s = WardScopeState::new(ScopeKind::Ward, Addr(100), Addr(200));
        s.on_write(Addr(100), 8, 5).unwrap();
        assert!(s.on_read(Addr(100), 8, 5).is_ok());
    }

    #[test]
    fn ward_scope_cross_task_raw_flagged() {
        let mut s = WardScopeState::new(ScopeKind::Ward, Addr(100), Addr(200));
        s.on_write(Addr(104), 4, 1).unwrap();
        let err = s.on_read(Addr(100), 8, 2).unwrap_err();
        assert_eq!(err.writer, 1);
        assert_eq!(err.reader, 2);
        assert_eq!(err.addr, Addr(104));
    }

    #[test]
    fn ward_scope_ignores_out_of_range() {
        let mut s = WardScopeState::new(ScopeKind::Ward, Addr(100), Addr(200));
        s.on_write(Addr(300), 8, 1).unwrap();
        assert!(s.on_read(Addr(300), 8, 2).is_ok());
        assert!(s.writers.is_empty());
    }

    #[test]
    fn ward_scope_allows_cross_task_waw() {
        let mut s = WardScopeState::new(ScopeKind::Ward, Addr(100), Addr(200));
        s.on_write(Addr(100), 8, 1).unwrap();
        assert!(s.on_write(Addr(100), 8, 2).is_ok(), "WAW apathy");
    }

    #[test]
    fn drf_scope_rejects_cross_task_waw() {
        let mut s = WardScopeState::new(ScopeKind::Drf, Addr(100), Addr(200));
        s.on_write(Addr(100), 8, 1).unwrap();
        assert!(s.on_write(Addr(100), 8, 2).is_err());
    }

    #[test]
    fn drf_scope_rejects_write_after_read() {
        let mut s = WardScopeState::new(ScopeKind::Drf, Addr(100), Addr(200));
        s.on_read(Addr(100), 8, 1).unwrap();
        assert!(s.on_write(Addr(100), 8, 2).is_err());
        // Same-task is fine.
        let mut t = WardScopeState::new(ScopeKind::Drf, Addr(100), Addr(200));
        t.on_read(Addr(100), 8, 1).unwrap();
        assert!(t.on_write(Addr(100), 8, 1).is_ok());
    }

    #[test]
    fn violation_display_names_tasks() {
        let v = WardViolation {
            addr: Addr(7),
            writer: 1,
            reader: 2,
        };
        let msg = v.to_string();
        assert!(msg.contains("task 2") && msg.contains("task 1"));
    }
}
