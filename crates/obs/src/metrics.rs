//! Named counters and log2-bucket histograms with a checkpoint codec.

use std::fmt;
use warden_mem::codec::{CodecError, Decoder, Encoder};

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i` (1..=64)
/// holds values `v` with `2^(i-1) <= v < 2^i` — i.e. 64-bit values bucketed
/// by their highest set bit.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucket histogram of `u64` samples.
///
/// Power-of-two buckets give a constant-size summary with bounded relative
/// error (each bucket spans a 2x range), which is exactly what latency and
/// size distributions need: the interesting signal is "how heavy is the
/// tail", not the third significant digit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket a value lands in: 0 for 0, otherwise `64 - leading_zeros`
    /// (so exact powers of two open a new bucket: 1→1, 2→2, 3→2, 4→3, ...).
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The smallest value bucket `i` can hold (`0` for bucket 0).
    pub fn bucket_lower_bound(i: usize) -> u64 {
        assert!(i < HIST_BUCKETS, "bucket {i} out of range");
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// The largest value bucket `i` can hold.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        assert!(i < HIST_BUCKETS, "bucket {i} out of range");
        if i == 0 {
            0
        } else if i == 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    #[inline]
    pub fn add(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The non-empty buckets as `(bucket index, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (i, c) in other.nonzero_buckets() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Serialize (sparse: only non-empty buckets travel).
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.count);
        enc.put_u64(self.sum);
        enc.put_u64(self.min);
        enc.put_u64(self.max);
        let nz: Vec<(usize, u64)> = self.nonzero_buckets().collect();
        enc.put_usize(nz.len());
        for (i, c) in nz {
            enc.put_u8(i as u8);
            enc.put_u64(c);
        }
    }

    /// Decode a histogram serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Hist, CodecError> {
        let count = dec.take_u64()?;
        let sum = dec.take_u64()?;
        let min = dec.take_u64()?;
        let max = dec.take_u64()?;
        let n = dec.take_count(9)?;
        let mut buckets = [0u64; HIST_BUCKETS];
        let mut last: Option<usize> = None;
        let mut total = 0u64;
        for _ in 0..n {
            let i = dec.take_u8()? as usize;
            if i >= HIST_BUCKETS {
                return Err(CodecError::Invalid {
                    what: "histogram",
                    detail: format!("bucket index {i} out of range"),
                });
            }
            if last.is_some_and(|l| i <= l) {
                return Err(CodecError::Invalid {
                    what: "histogram",
                    detail: format!("bucket indices not strictly ascending at {i}"),
                });
            }
            let c = dec.take_u64()?;
            if c == 0 {
                return Err(CodecError::Invalid {
                    what: "histogram",
                    detail: format!("bucket {i} serialized with a zero count"),
                });
            }
            buckets[i] = c;
            total = total.wrapping_add(c);
            last = Some(i);
        }
        if total != count {
            return Err(CodecError::Invalid {
                what: "histogram",
                detail: format!("bucket counts sum to {total}, header says {count}"),
            });
        }
        Ok(Hist {
            buckets,
            count,
            sum,
            min,
            max,
        })
    }
}

impl fmt::Display for Hist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "(empty)");
        }
        write!(
            f,
            "n={} min={} mean={:.1} max={}",
            self.count,
            self.min,
            self.mean().unwrap_or(0.0),
            self.max
        )?;
        for (i, c) in self.nonzero_buckets() {
            write!(
                f,
                " [{}..{}]={}",
                Hist::bucket_lower_bound(i),
                Hist::bucket_upper_bound(i),
                c
            )?;
        }
        Ok(())
    }
}

/// A level instrument: a value that moves both ways (queue depth, in-flight
/// requests, open connections) with a high watermark.
///
/// Counters only go up and histograms summarize samples; a gauge answers
/// "how full is it *right now*, and how full did it ever get". The serving
/// layer samples its request queue through one of these. A gauge is plain
/// data — callers that share one across threads wrap it in their own lock,
/// the same ownership discipline as the rest of this module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gauge {
    value: u64,
    peak: u64,
    moves: u64,
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge {
            value: 0,
            peak: 0,
            moves: 0,
        }
    }

    /// Set the level to `v`.
    pub fn set(&mut self, v: u64) {
        self.value = v;
        self.peak = self.peak.max(v);
        self.moves += 1;
    }

    /// Raise the level by `n`.
    pub fn add(&mut self, n: u64) {
        self.set(self.value.saturating_add(n));
    }

    /// Lower the level by `n` (saturating at zero — a release without a
    /// matching acquire must not wrap to `u64::MAX`).
    pub fn sub(&mut self, n: u64) {
        self.set(self.value.saturating_sub(n));
    }

    /// The current level.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The highest level ever set.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// How many times the level moved.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Flatten the gauge into `registry` as three counters named
    /// `<name>_current`, `<name>_peak` and `<name>_moves` — the bridge into
    /// the existing registry codec, which snapshots ride through unchanged.
    pub fn export_into(&self, registry: &mut MetricsRegistry, name: &str) {
        registry.set_counter(&format!("{name}_current"), self.value);
        registry.set_counter(&format!("{name}_peak"), self.peak);
        registry.set_counter(&format!("{name}_moves"), self.moves);
    }

    /// Serialize the gauge.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.value);
        enc.put_u64(self.peak);
        enc.put_u64(self.moves);
    }

    /// Decode a gauge serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Gauge, CodecError> {
        let value = dec.take_u64()?;
        let peak = dec.take_u64()?;
        let moves = dec.take_u64()?;
        if peak < value {
            return Err(CodecError::Invalid {
                what: "gauge",
                detail: format!("peak {peak} below the current value {value}"),
            });
        }
        Ok(Gauge { value, peak, moves })
    }
}

impl fmt::Display for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (peak {})", self.value, self.peak)
    }
}

/// A [`Gauge`] whose movements are lock-free: value, peak and move count
/// are atomics, so many threads can raise and lower the level without
/// sharing a mutex.
///
/// The serving layer needs this where a plain [`Gauge`] forces a lock onto
/// a hot path — per-request in-flight tracking, live connection counts,
/// and the result cache's resident-byte accounting (where the *peak* is
/// the value a byte-budget proof wants: it must never exceed the
/// configured budget). The peak is maintained with a compare-exchange
/// maximum, so it is exact even under contention.
#[derive(Debug, Default)]
pub struct AtomicGauge {
    value: std::sync::atomic::AtomicU64,
    peak: std::sync::atomic::AtomicU64,
    moves: std::sync::atomic::AtomicU64,
}

impl AtomicGauge {
    /// A gauge at zero.
    pub fn new() -> AtomicGauge {
        AtomicGauge::default()
    }

    fn raise_peak(&self, candidate: u64) {
        use std::sync::atomic::Ordering;
        self.peak.fetch_max(candidate, Ordering::AcqRel);
    }

    /// Set the level to `v`.
    pub fn set(&self, v: u64) {
        use std::sync::atomic::Ordering;
        self.value.store(v, Ordering::Release);
        self.raise_peak(v);
        self.moves.fetch_add(1, Ordering::Relaxed);
    }

    /// Raise the level by `n` and return the new level.
    pub fn add(&self, n: u64) -> u64 {
        use std::sync::atomic::Ordering;
        let now = self
            .value
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                Some(v.saturating_add(n))
            })
            .expect("fetch_update closure always returns Some")
            .saturating_add(n);
        self.raise_peak(now);
        self.moves.fetch_add(1, Ordering::Relaxed);
        now
    }

    /// Lower the level by `n` (saturating at zero, like [`Gauge::sub`]) and
    /// return the new level.
    pub fn sub(&self, n: u64) -> u64 {
        use std::sync::atomic::Ordering;
        let now = self
            .value
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                Some(v.saturating_sub(n))
            })
            .expect("fetch_update closure always returns Some")
            .saturating_sub(n);
        self.moves.fetch_add(1, Ordering::Relaxed);
        now
    }

    /// The current level.
    pub fn value(&self) -> u64 {
        self.value.load(std::sync::atomic::Ordering::Acquire)
    }

    /// The highest level ever reached.
    pub fn peak(&self) -> u64 {
        self.peak.load(std::sync::atomic::Ordering::Acquire)
    }

    /// How many times the level moved.
    pub fn moves(&self) -> u64 {
        self.moves.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Snapshot into a plain [`Gauge`] (for export or comparison). The
    /// three fields are read independently, so a snapshot taken while other
    /// threads move the level is a *consistent-enough* view: the peak is
    /// always ≥ every value it is snapshotted with.
    pub fn snapshot(&self) -> Gauge {
        let value = self.value();
        let peak = self.peak().max(value);
        Gauge {
            value,
            peak,
            moves: self.moves(),
        }
    }

    /// Flatten into `registry`, exactly like [`Gauge::export_into`].
    pub fn export_into(&self, registry: &mut MetricsRegistry, name: &str) {
        self.snapshot().export_into(registry, name);
    }
}

/// An ordered collection of named counters and histograms.
///
/// The registry is the serialization surface of the observability layer:
/// the sim-side recorder folds its typed state into one of these, it rides
/// inside campaign records through the outcome codec, and the exporters
/// print it. Names are unique; insertion order is preserved (so encode →
/// decode → encode is byte-identical, the property every checkpoint codec
/// in this workspace keeps).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    hists: Vec<(String, Hist)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Set counter `name` to `v` (inserting it if new).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => *slot = v,
            None => self.counters.push((name.to_string(), v)),
        }
    }

    /// Add `v` to counter `name` (inserting it at zero if new).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => *slot += v,
            None => self.counters.push((name.to_string(), v)),
        }
    }

    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Install (or replace) histogram `name`.
    pub fn set_hist(&mut self, name: &str, h: Hist) {
        match self.hists.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => *slot = h,
            None => self.hists.push((name.to_string(), h)),
        }
    }

    /// Histogram `name`, if present.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// All counters in insertion order.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// All histograms in insertion order.
    pub fn hists(&self) -> &[(String, Hist)] {
        &self.hists
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Serialize the registry.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_usize(self.counters.len());
        for (name, v) in &self.counters {
            enc.put_str(name);
            enc.put_u64(*v);
        }
        enc.put_usize(self.hists.len());
        for (name, h) in &self.hists {
            enc.put_str(name);
            h.encode_into(enc);
        }
    }

    /// Decode a registry serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<MetricsRegistry, CodecError> {
        let nc = dec.take_count(9)?;
        let mut counters = Vec::with_capacity(nc);
        for _ in 0..nc {
            let name = dec.take_str()?;
            if counters.iter().any(|(n, _): &(String, u64)| *n == name) {
                return Err(CodecError::Invalid {
                    what: "metrics registry",
                    detail: format!("duplicate counter {name:?}"),
                });
            }
            let v = dec.take_u64()?;
            counters.push((name, v));
        }
        let nh = dec.take_count(33)?;
        let mut hists = Vec::with_capacity(nh);
        for _ in 0..nh {
            let name = dec.take_str()?;
            if hists.iter().any(|(n, _): &(String, Hist)| *n == name) {
                return Err(CodecError::Invalid {
                    what: "metrics registry",
                    detail: format!("duplicate histogram {name:?}"),
                });
            }
            let h = Hist::decode_from(dec)?;
            hists.push((name, h));
        }
        Ok(MetricsRegistry { counters, hists })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_split_on_powers_of_two() {
        // Bucket 0 is exactly {0}; bucket i (i >= 1) is [2^(i-1), 2^i).
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(7), 3);
        assert_eq!(Hist::bucket_of(8), 4);
        for i in 1..64 {
            // Every power of two opens a fresh bucket; its predecessor
            // closes the previous one.
            assert_eq!(Hist::bucket_of(1u64 << i), i + 1, "2^{i}");
            assert_eq!(Hist::bucket_of((1u64 << i) - 1), i, "2^{i}-1");
        }
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            let lo = Hist::bucket_lower_bound(i);
            let hi = Hist::bucket_upper_bound(i);
            assert!(lo <= hi);
            assert_eq!(Hist::bucket_of(lo), i, "lower bound of {i}");
            assert_eq!(Hist::bucket_of(hi), i, "upper bound of {i}");
        }
    }

    #[test]
    fn add_tracks_count_sum_min_max() {
        let mut h = Hist::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        for v in [5u64, 0, 1000, 5] {
            h.add(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.mean(), Some(252.5));
        assert_eq!(h.nonzero_buckets().count(), 3); // {0}, {5,5}, {1000}
    }

    #[test]
    fn merge_equals_bulk_add() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut all = Hist::new();
        for v in [1u64, 2, 3] {
            a.add(v);
            all.add(v);
        }
        for v in [0u64, 900, u64::MAX] {
            b.add(v);
            all.add(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn hist_codec_round_trips() {
        let mut h = Hist::new();
        for v in [0u64, 1, 3, 64, 65, 1 << 40, u64::MAX] {
            h.add(v);
        }
        let mut enc = Encoder::new();
        h.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Hist::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn hist_decode_rejects_inconsistent_payloads() {
        // A bucket count total that disagrees with the header must not pass.
        let mut enc = Encoder::new();
        enc.put_u64(5); // count (lies: bucket says 1)
        enc.put_u64(1); // sum
        enc.put_u64(1); // min
        enc.put_u64(1); // max
        enc.put_usize(1);
        enc.put_u8(1);
        enc.put_u64(1);
        let bytes = enc.into_bytes();
        assert!(matches!(
            Hist::decode_from(&mut Decoder::new(&bytes)),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn gauge_tracks_level_and_peak() {
        let mut g = Gauge::new();
        assert_eq!(g.value(), 0);
        assert_eq!(g.peak(), 0);
        g.add(3);
        g.add(2);
        assert_eq!(g.value(), 5);
        assert_eq!(g.peak(), 5);
        g.sub(4);
        assert_eq!(g.value(), 1);
        assert_eq!(g.peak(), 5, "peak survives the drain");
        g.sub(100);
        assert_eq!(g.value(), 0, "sub saturates at zero");
        g.set(2);
        assert_eq!(g.moves(), 5);
        assert_eq!(g.to_string(), "2 (peak 5)");
    }

    #[test]
    fn gauge_export_flattens_to_counters() {
        let mut g = Gauge::new();
        g.add(7);
        g.sub(3);
        let mut r = MetricsRegistry::new();
        g.export_into(&mut r, "queue_depth");
        assert_eq!(r.counter("queue_depth_current"), Some(4));
        assert_eq!(r.counter("queue_depth_peak"), Some(7));
        assert_eq!(r.counter("queue_depth_moves"), Some(2));
    }

    #[test]
    fn gauge_codec_round_trips_and_rejects_bad_watermarks() {
        let mut g = Gauge::new();
        g.add(9);
        g.sub(2);
        let mut enc = Encoder::new();
        g.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Gauge::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, g);
        // Every strict prefix fails with a typed error.
        for cut in 0..bytes.len() {
            assert!(Gauge::decode_from(&mut Decoder::new(&bytes[..cut])).is_err());
        }
        // A peak below the current value is structurally impossible.
        let mut enc = Encoder::new();
        enc.put_u64(5); // value
        enc.put_u64(3); // peak < value
        enc.put_u64(1); // moves
        assert!(matches!(
            Gauge::decode_from(&mut Decoder::new(enc.bytes())),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn registry_round_trips_and_looks_up() {
        let mut r = MetricsRegistry::new();
        r.set_counter("accesses", 10);
        r.add_counter("accesses", 5);
        r.add_counter("reconciles", 2);
        let mut h = Hist::new();
        h.add(17);
        r.set_hist("miss_latency", h.clone());
        assert_eq!(r.counter("accesses"), Some(15));
        assert_eq!(r.counter("missing"), None);
        assert_eq!(r.hist("miss_latency"), Some(&h));

        let mut enc = Encoder::new();
        r.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = MetricsRegistry::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, r);

        // Canonical re-encode: same bytes.
        let mut enc2 = Encoder::new();
        back.encode_into(&mut enc2);
        assert_eq!(enc2.bytes(), &bytes[..]);
    }

    #[test]
    fn atomic_gauge_tracks_peak_exactly_under_contention() {
        let g = std::sync::Arc::new(AtomicGauge::new());
        // 8 threads each add 5 then sub 5; the peak is whatever simultaneity
        // the scheduler produced, but accounting must balance to zero and
        // the peak must be at least one thread's worth and at most all of
        // them.
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let g = std::sync::Arc::clone(&g);
                std::thread::spawn(move || {
                    let seen = g.add(5);
                    assert!(g.peak() >= seen);
                    std::thread::yield_now();
                    g.sub(5);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.value(), 0);
        assert!(g.peak() >= 5 && g.peak() <= 40, "peak {}", g.peak());
        assert_eq!(g.moves(), 16);

        // sub saturates instead of wrapping, like the plain Gauge.
        g.sub(1);
        assert_eq!(g.value(), 0);

        let snap = g.snapshot();
        assert_eq!(snap.value(), 0);
        assert_eq!(snap.peak(), g.peak());
        let mut reg = MetricsRegistry::new();
        g.export_into(&mut reg, "cache_resident_bytes");
        assert_eq!(reg.counter("cache_resident_bytes_current"), Some(0));
        assert_eq!(reg.counter("cache_resident_bytes_peak"), Some(g.peak()));
    }

    #[test]
    fn registry_truncation_is_typed() {
        let mut r = MetricsRegistry::new();
        r.set_counter("a", 1);
        let mut h = Hist::new();
        h.add(2);
        r.set_hist("b", h);
        let mut enc = Encoder::new();
        r.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            let res = MetricsRegistry::decode_from(&mut dec).and_then(|v| {
                dec.finish()?;
                Ok(v)
            });
            assert!(res.is_err(), "prefix of {cut} bytes decoded");
        }
    }
}
