//! Wall-clock phase-scoped span aggregation.
//!
//! The bench crate's hot-path harness times whole replays with
//! `std::time::Instant`; this module applies the same plumbing *inside* a
//! run: a [`SpanSet`] accumulates `(count, total, max)` wall-time per named
//! phase (directory transactions, reconciliation walks), so enabling
//! observability answers "where did the host time go" without a sampling
//! profiler.
//!
//! Spans measure the *host*, not the simulated machine — they are profiling
//! state, deliberately excluded from checkpoints (a resumed run starts its
//! own measurement) and from any determinism guarantee.

use std::fmt;
use std::time::Instant;

/// Aggregate wall time of one named phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Phase name.
    pub name: String,
    /// Times the phase ran.
    pub count: u64,
    /// Total wall nanoseconds across all runs.
    pub total_ns: u64,
    /// Longest single run in nanoseconds.
    pub max_ns: u64,
}

impl SpanAgg {
    /// Mean nanoseconds per run, `None` when the phase never ran.
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total_ns as f64 / self.count as f64)
    }
}

/// An ordered set of [`SpanAgg`]s, keyed by phase name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanSet {
    spans: Vec<SpanAgg>,
}

impl SpanSet {
    /// An empty set.
    pub fn new() -> SpanSet {
        SpanSet::default()
    }

    /// Record one run of `name` that took `ns` wall nanoseconds.
    pub fn add(&mut self, name: &str, ns: u64) {
        let agg = match self.spans.iter_mut().find(|s| s.name == name) {
            Some(agg) => agg,
            None => {
                self.spans.push(SpanAgg {
                    name: name.to_string(),
                    ..SpanAgg::default()
                });
                self.spans.last_mut().expect("just pushed")
            }
        };
        agg.count += 1;
        agg.total_ns += ns;
        agg.max_ns = agg.max_ns.max(ns);
    }

    /// Time `f` as one run of `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add(
            name,
            t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        );
        r
    }

    /// The aggregate for `name`, if it ever ran.
    pub fn get(&self, name: &str) -> Option<&SpanAgg> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// All aggregates in first-seen order.
    pub fn iter(&self) -> impl Iterator<Item = &SpanAgg> {
        self.spans.iter()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

impl fmt::Display for SpanSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.spans.is_empty() {
            return write!(f, "(no spans)");
        }
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "{:<24} n={:<10} total={:>12}ns mean={:>10.0}ns max={:>10}ns",
                s.name,
                s.count,
                s.total_ns,
                s.mean_ns().unwrap_or(0.0),
                s.max_ns
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_and_tracks_max() {
        let mut set = SpanSet::new();
        set.add("recon", 10);
        set.add("recon", 30);
        set.add("dir", 5);
        let r = set.get("recon").unwrap();
        assert_eq!((r.count, r.total_ns, r.max_ns), (2, 40, 30));
        assert_eq!(r.mean_ns(), Some(20.0));
        assert_eq!(set.iter().count(), 2);
        assert!(set.get("absent").is_none());
    }

    #[test]
    fn time_measures_the_closure() {
        let mut set = SpanSet::new();
        let val = set.time("work", || std::hint::black_box((0..1000u64).sum::<u64>()));
        assert_eq!(val, 499_500);
        assert_eq!(set.get("work").unwrap().count, 1);
    }

    #[test]
    fn display_lists_every_span() {
        let mut set = SpanSet::new();
        assert_eq!(format!("{set}"), "(no spans)");
        set.add("a", 1);
        set.add("b", 2);
        let text = format!("{set}");
        assert!(text.contains('a') && text.contains('b'));
    }
}
