//! Observability primitives shared by the WARDen simulator stack.
//!
//! This crate is deliberately generic — it knows nothing about coherence
//! protocols. It provides three building blocks the higher layers compose:
//!
//! * [`metrics`] — a serializable [`MetricsRegistry`] of named counters and
//!   [`Hist`] log2-bucket histograms (miss latency, reconciliation size,
//!   region lifetime, ...), plus the [`Gauge`] level instrument (queue
//!   depth, in-flight requests) used by the serving layer, with the same
//!   hand-rolled codec conventions as the rest of the workspace (typed
//!   errors, every-prefix truncation safe).
//! * [`trace_event`] — a builder and validator for the Chrome trace-event
//!   JSON format that Perfetto and `chrome://tracing` load directly.
//! * [`span`] — wall-clock phase-scoped span aggregation ([`SpanSet`]),
//!   the same `std::time::Instant` plumbing the bench crate's hot-path
//!   harness uses, aggregated instead of sampled.
//!
//! Only `warden-mem` (for the codec) is a dependency, so any crate in the
//! stack can use these types without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod span;
pub mod trace_event;

pub use metrics::{AtomicGauge, Gauge, Hist, MetricsRegistry};
pub use span::{SpanAgg, SpanSet};
pub use trace_event::{validate_trace, ArgVal, TraceBuilder, TraceError, TraceStats};
