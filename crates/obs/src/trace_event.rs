//! Chrome trace-event JSON: a builder for writing timelines Perfetto and
//! `chrome://tracing` load directly, and a validator CI uses to prove an
//! exported trace is well-formed.
//!
//! The format is the "JSON Object Format" of the Trace Event specification:
//! a top-level object with a `traceEvents` array whose entries carry `name`,
//! `ph` (phase), `ts` (timestamp, microseconds), `pid`/`tid`, an optional
//! `dur` for complete (`"X"`) events and an optional `args` object. The
//! simulator maps simulated cycles onto `ts` one-to-one — absolute units
//! don't matter to the viewers, ordering and duration do.

use std::fmt;

/// An argument value attached to a trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgVal {
    /// An integer argument (counter tracks require numeric args).
    U64(u64),
    /// A string argument.
    Str(String),
}

/// One trace event under construction.
#[derive(Clone, Debug)]
struct Event {
    name: String,
    ph: char,
    ts: u64,
    dur: Option<u64>,
    pid: u32,
    tid: u32,
    args: Vec<(String, ArgVal)>,
    scope: Option<char>,
}

/// Builds a trace-event JSON document.
#[derive(Clone, Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Event>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Number of events queued so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// An instant event (`ph: "i"`, thread scope) at `ts`.
    pub fn instant(
        &mut self,
        name: &str,
        ts: u64,
        pid: u32,
        tid: u32,
        args: Vec<(String, ArgVal)>,
    ) {
        self.events.push(Event {
            name: name.to_string(),
            ph: 'i',
            ts,
            dur: None,
            pid,
            tid,
            args,
            scope: Some('t'),
        });
    }

    /// A complete event (`ph: "X"`) spanning `[ts, ts + dur]`.
    pub fn complete(
        &mut self,
        name: &str,
        ts: u64,
        dur: u64,
        pid: u32,
        tid: u32,
        args: Vec<(String, ArgVal)>,
    ) {
        self.events.push(Event {
            name: name.to_string(),
            ph: 'X',
            ts,
            dur: Some(dur),
            pid,
            tid,
            args,
            scope: None,
        });
    }

    /// A counter sample (`ph: "C"`): every arg becomes one series on the
    /// counter track `name`.
    pub fn counter(&mut self, name: &str, ts: u64, pid: u32, args: Vec<(String, ArgVal)>) {
        self.events.push(Event {
            name: name.to_string(),
            ph: 'C',
            ts,
            dur: None,
            pid,
            tid: 0,
            args,
            scope: None,
        });
    }

    /// A metadata event naming a thread track (`ph: "M"`).
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(Event {
            name: "thread_name".to_string(),
            ph: 'M',
            ts: 0,
            dur: None,
            pid,
            tid,
            args: vec![("name".to_string(), ArgVal::Str(name.to_string()))],
            scope: None,
        });
    }

    /// A metadata event naming a process track (`ph: "M"`).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(Event {
            name: "process_name".to_string(),
            ph: 'M',
            ts: 0,
            dur: None,
            pid,
            tid: 0,
            args: vec![("name".to_string(), ArgVal::Str(name.to_string()))],
            scope: None,
        });
    }

    /// Render the JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("{\"name\":");
            push_json_str(&mut out, &ev.name);
            out.push_str(",\"ph\":\"");
            out.push(ev.ph);
            out.push('"');
            if let Some(s) = ev.scope {
                out.push_str(",\"s\":\"");
                out.push(s);
                out.push('"');
            }
            out.push_str(&format!(",\"ts\":{}", ev.ts));
            if let Some(d) = ev.dur {
                out.push_str(&format!(",\"dur\":{d}"));
            }
            out.push_str(&format!(",\"pid\":{},\"tid\":{}", ev.pid, ev.tid));
            if !ev.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in ev.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    push_json_str(&mut out, k);
                    out.push(':');
                    match v {
                        ArgVal::U64(n) => out.push_str(&n.to_string()),
                        ArgVal::Str(s) => push_json_str(&mut out, s),
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----- validation ---------------------------------------------------------

/// Why a document failed validation.
#[derive(Debug, PartialEq)]
pub enum TraceError {
    /// Not well-formed JSON. The payload names the byte offset and problem.
    Json {
        /// Byte offset of the failure.
        at: usize,
        /// What went wrong.
        detail: String,
    },
    /// Well-formed JSON that violates the trace-event schema.
    Schema {
        /// What went wrong (names the offending event index).
        detail: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Json { at, detail } => write!(f, "bad JSON at byte {at}: {detail}"),
            TraceError::Schema { detail } => write!(f, "trace-event schema violation: {detail}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// What a validated trace contains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// All events.
    pub events: usize,
    /// Complete (`"X"`) span events.
    pub complete: usize,
    /// Instant (`"i"`/`"I"`) events.
    pub instants: usize,
    /// Counter (`"C"`) samples.
    pub counters: usize,
    /// Metadata (`"M"`) events.
    pub metadata: usize,
}

/// A parsed JSON value (just enough structure for schema checks; the
/// literal payloads are never consulted, only their shape).
enum Json {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, detail: impl Into<String>) -> Result<T, TraceError> {
        Err(TraceError::Json {
            at: self.pos,
            detail: detail.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), TraceError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!(
                "expected {:?}, found {:?}",
                b as char,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, TraceError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool),
            Some(b'f') => self.literal("false", Json::Bool),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => self.err(format!("unexpected byte {:?}", b as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, val: Json) -> Result<Json, TraceError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            self.err(format!("bad literal (expected {word})"))
        }
    }

    fn number(&mut self) -> Result<Json, TraceError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => self.err(format!("bad number {text:?}")),
        }
    }

    fn string(&mut self) -> Result<String, TraceError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => out.push(c),
                                // Surrogate halves and bad hex both land
                                // here; a validator only needs to reject
                                // cleanly, not transcode UTF-16.
                                None => return self.err("bad \\u escape"),
                            }
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return self.err("raw control character in string"),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is checked as UTF-8
                    // before parsing begins).
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).expect("checked utf-8");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, TraceError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']' in array"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, TraceError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}' in object"),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, TraceError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data after document");
    }
    Ok(v)
}

/// Validate a trace-event JSON document: well-formed JSON, a `traceEvents`
/// array at the top, and every event carrying the fields its phase requires.
pub fn validate_trace(text: &str) -> Result<TraceStats, TraceError> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| TraceError::Schema {
            detail: "top-level object has no \"traceEvents\" key".to_string(),
        })
        .and_then(|v| match v {
            Json::Arr(items) => Ok(items),
            _ => Err(TraceError::Schema {
                detail: "\"traceEvents\" is not an array".to_string(),
            }),
        })?;
    let mut stats = TraceStats::default();
    for (i, ev) in events.iter().enumerate() {
        let fail = |detail: String| TraceError::Schema {
            detail: format!("event {i}: {detail}"),
        };
        if !matches!(ev, Json::Obj(_)) {
            return Err(fail("not an object".to_string()));
        }
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string \"name\"".to_string()))?;
        if name.is_empty() {
            return Err(fail("empty \"name\"".to_string()));
        }
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string \"ph\"".to_string()))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| fail("missing numeric \"ts\"".to_string()))?;
        if ts < 0.0 {
            return Err(fail(format!("negative ts {ts}")));
        }
        for key in ["pid", "tid"] {
            ev.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| fail(format!("missing numeric {key:?}")))?;
        }
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| fail("complete event missing numeric \"dur\"".to_string()))?;
                if dur < 0.0 {
                    return Err(fail(format!("negative dur {dur}")));
                }
                stats.complete += 1;
            }
            "i" | "I" => stats.instants += 1,
            "C" => {
                let ok = matches!(ev.get("args"), Some(Json::Obj(fields))
                    if !fields.is_empty()
                        && fields.iter().all(|(_, v)| matches!(v, Json::Num(_))));
                if !ok {
                    return Err(fail(
                        "counter event needs a non-empty numeric \"args\" object".to_string(),
                    ));
                }
                stats.counters += 1;
            }
            "M" => stats.metadata += 1,
            "B" | "E" | "b" | "e" | "n" | "s" | "t" | "f" => {}
            other => return Err(fail(format!("unknown phase {other:?}"))),
        }
        stats.events += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arg(k: &str, v: u64) -> (String, ArgVal) {
        (k.to_string(), ArgVal::U64(v))
    }

    #[test]
    fn builder_output_validates() {
        let mut b = TraceBuilder::new();
        b.process_name(0, "socket 0");
        b.thread_name(0, 1, "core 1");
        b.instant("GetS", 100, 0, 1, vec![arg("block", 42)]);
        b.complete("ward-region", 50, 200, 0, 0, vec![arg("id", 7)]);
        b.counter("epoch", 0, 0, vec![arg("accesses", 10), arg("recon", 2)]);
        let json = b.to_json();
        let stats = validate_trace(&json).unwrap();
        assert_eq!(stats.events, 5);
        assert_eq!(stats.complete, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.metadata, 2);
    }

    #[test]
    fn escaping_survives_hostile_names() {
        let mut b = TraceBuilder::new();
        b.instant(
            "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode\u{203d}",
            1,
            0,
            0,
            vec![("k\"ey".to_string(), ArgVal::Str("v\\al".to_string()))],
        );
        let json = b.to_json();
        validate_trace(&json).unwrap();
    }

    #[test]
    fn malformed_json_is_rejected_with_offset() {
        for bad in [
            "",
            "{",
            "{\"traceEvents\":[}",
            "{\"traceEvents\":[]} trailing",
            "{\"traceEvents\":[{\"name\":\"x\" \"ph\":\"i\"}]}",
            "{\"traceEvents\":[1e999]}",
        ] {
            match validate_trace(bad) {
                Err(TraceError::Json { .. }) => {}
                other => panic!("{bad:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn schema_violations_are_rejected() {
        let cases = [
            ("{}", "no traceEvents"),
            ("{\"traceEvents\":{}}", "not an array"),
            (
                "{\"traceEvents\":[{\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0}]}",
                "no name",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"pid\":0,\"tid\":0}]}",
                "no ts",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0,\"pid\":0,\"tid\":0}]}",
                "X without dur",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"?\",\"ts\":0,\"pid\":0,\"tid\":0}]}",
                "unknown phase",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\"tid\":0,\
                 \"args\":{\"v\":\"nan\"}}]}",
                "non-numeric counter",
            ),
        ];
        for (bad, why) in cases {
            match validate_trace(bad) {
                Err(TraceError::Schema { .. }) => {}
                other => panic!("{why}: {other:?}"),
            }
        }
    }

    #[test]
    fn empty_trace_is_valid() {
        let b = TraceBuilder::new();
        assert!(b.is_empty());
        assert_eq!(validate_trace(&b.to_json()).unwrap().events, 0);
    }
}
