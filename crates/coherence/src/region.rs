//! The WARD region store: the directory-side CAM tracking active regions.
//!
//! The paper (§6.1) stores each region as a begin/end pointer pair in a
//! CAM-like structure supporting 1024 simultaneous regions. Functionally a
//! lookup asks "does address A fall inside any active region?"; we answer it
//! with a flat page index (regions are always page-multiples in the MPL
//! runtime) while modelling the *capacity* of the hardware structure: adding
//! a region beyond capacity fails — counted in [`RegionStore::overflows`] —
//! and those addresses simply stay under plain MESI, a safe fallback.
//!
//! Live regions are kept sorted by ascending [`RegionId`], which makes every
//! operation deterministic: when overlapping regions cover the same page and
//! the owner is removed, the page is reassigned to the *lowest* live id
//! covering it, so two identically built stores always agree (a hash-map
//! scan here once broke checkpoint bit-identity).

use warden_mem::codec::{CodecError, Decoder, Encoder};
use warden_mem::{Addr, PageAddr, PageMap, PAGE_SIZE};

/// Identifier of one active WARD region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

/// Outcome of [`RegionStore::add`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddRegion {
    /// Region accepted and active.
    Added(RegionId),
    /// The store is at capacity; the region is *not* tracked and its
    /// addresses remain under baseline coherence.
    Overflow,
}

/// Directory-side storage of active WARD regions.
///
/// # Example
///
/// ```
/// use warden_coherence::{AddRegion, RegionStore};
/// use warden_mem::{Addr, PAGE_SIZE};
///
/// let mut store = RegionStore::new(1024);
/// let id = match store.add(Addr(0), Addr(PAGE_SIZE)) {
///     AddRegion::Added(id) => id,
///     AddRegion::Overflow => unreachable!(),
/// };
/// assert!(store.contains(Addr(100)));
/// store.remove(id);
/// assert!(!store.contains(Addr(100)));
/// ```
#[derive(Clone, Debug)]
pub struct RegionStore {
    capacity: usize,
    next_id: u64,
    /// Live regions as `(id, start, end)`, sorted by ascending id (ids are
    /// allocated monotonically, so `add` appends in order). The sorted
    /// order doubles as the deterministic tie-breaker for overlaps.
    regions: Vec<(RegionId, Addr, Addr)>,
    /// Page → owning region, for O(1) lookups.
    pages: PageMap<RegionId>,
    peak: usize,
    /// Adds rejected at capacity (CAM pressure; those regions silently
    /// stayed under baseline coherence).
    overflows: u64,
    /// Bumped on every successful add/remove, so callers can keep derived
    /// lookup caches (e.g. the per-core region cache) coherent. Starts at 1
    /// and is *not* serialized — caches must be dropped across a restore.
    epoch: u64,
}

impl RegionStore {
    /// Create a store holding at most `capacity` simultaneous regions
    /// (the paper sizes the hardware for 1024).
    pub fn new(capacity: usize) -> RegionStore {
        RegionStore {
            capacity,
            next_id: 0,
            regions: Vec::new(),
            pages: PageMap::new(),
            peak: 0,
            overflows: 0,
            epoch: 1,
        }
    }

    /// Capacity in simultaneous regions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently active regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no region is active.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Peak simultaneous regions observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Adds rejected because the store was at capacity.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Mutation counter: changes whenever the page→region mapping may have
    /// changed. Derived caches are valid only while this is unchanged.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Add a region covering `[start, end)`.
    ///
    /// Bounds must be page-aligned, matching the MPL runtime which marks
    /// whole heap pages. If an address lands in more than one region the
    /// block is simply WARD (paper §6.1); overlapping pages stay owned by
    /// the earlier region for removal purposes.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not page-aligned or the range is empty.
    pub fn add(&mut self, start: Addr, end: Addr) -> AddRegion {
        assert!(
            start.page_offset() == 0 && end.page_offset() == 0,
            "region bounds must be page-aligned"
        );
        assert!(start < end, "region must be non-empty");
        if self.regions.len() == self.capacity {
            self.overflows += 1;
            return AddRegion::Overflow;
        }
        let id = RegionId(self.next_id);
        self.next_id += 1;
        self.regions.push((id, start, end));
        let mut page = start.page();
        while page.base() < end {
            self.pages.or_insert_with(page, || id);
            page = page + 1;
        }
        self.peak = self.peak.max(self.regions.len());
        self.epoch += 1;
        AddRegion::Added(id)
    }

    /// Remove a region, returning its page range for reconciliation.
    /// Removing an unknown (e.g. overflowed) region returns `None`.
    ///
    /// Pages the removed region owned but which other live regions still
    /// cover are reassigned to the lowest live id covering them — the
    /// region list is sorted by id, so the first covering entry wins,
    /// deterministically.
    pub fn remove(&mut self, id: RegionId) -> Option<(Addr, Addr)> {
        let idx = self
            .regions
            .binary_search_by_key(&id, |&(i, _, _)| i)
            .ok()?;
        let (_, start, end) = self.regions.remove(idx);
        let mut page = start.page();
        while page.base() < end {
            if self.pages.get(page) == Some(&id) {
                self.pages.remove(page);
                // Lowest live region also covering this page, if any.
                if let Some(&(other, _, _)) = self
                    .regions
                    .iter()
                    .find(|&&(_, s, e)| s <= page.base() && page.base() < e)
                {
                    self.pages.insert(page, other);
                }
            }
            page = page + 1;
        }
        self.epoch += 1;
        Some((start, end))
    }

    /// Remove the region covering `addr`, if any, returning its id and range.
    pub fn remove_covering(&mut self, addr: Addr) -> Option<(RegionId, Addr, Addr)> {
        let id = *self.pages.get(addr.page())?;
        let (s, e) = self.remove(id)?;
        Some((id, s, e))
    }

    /// The region owning `addr`'s page, if any.
    pub fn region_of(&self, addr: Addr) -> Option<RegionId> {
        self.pages.get(addr.page()).copied()
    }

    /// Whether `addr` is inside any active region.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        self.pages.contains(addr.page())
    }

    /// Whether any address of the given block is inside an active region.
    /// (Blocks never straddle pages, so this is the block's page.)
    #[inline]
    pub fn contains_block(&self, block: warden_mem::BlockAddr) -> bool {
        self.pages.contains(block.page())
    }

    /// Iterate the pages of a byte range (helper for reconciliation walks).
    pub fn pages_of(start: Addr, end: Addr) -> impl Iterator<Item = PageAddr> {
        let first = start.page();
        let n = (end.0 - start.0).div_ceil(PAGE_SIZE);
        (0..n).map(move |i| first + i)
    }

    /// Serialize the complete CAM state (capacity, id allocator, peak,
    /// overflow count, live regions, page index) for a checkpoint. Regions
    /// are kept sorted by id and pages are written sorted, so equal stores
    /// always produce identical bytes. The epoch is derived state and is
    /// not written.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_usize(self.capacity);
        enc.put_u64(self.next_id);
        enc.put_usize(self.peak);
        enc.put_u64(self.overflows);
        enc.put_usize(self.regions.len());
        for &(id, start, end) in &self.regions {
            enc.put_u64(id.0);
            enc.put_u64(start.0);
            enc.put_u64(end.0);
        }
        let mut pages: Vec<(PageAddr, RegionId)> =
            self.pages.iter().map(|(p, &id)| (p, id)).collect();
        pages.sort_by_key(|&(p, _)| p);
        enc.put_usize(pages.len());
        for (page, id) in pages {
            enc.put_u64(page.0);
            enc.put_u64(id.0);
        }
    }

    /// Decode a store serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<RegionStore, CodecError> {
        let capacity = dec.take_usize()?;
        let next_id = dec.take_u64()?;
        let peak = dec.take_usize()?;
        let overflows = dec.take_u64()?;
        let nr = dec.take_count(24)?;
        if nr > capacity {
            return Err(CodecError::Invalid {
                what: "region store",
                detail: format!("{nr} live regions exceed capacity {capacity}"),
            });
        }
        let mut regions: Vec<(RegionId, Addr, Addr)> = Vec::with_capacity(nr);
        for _ in 0..nr {
            let id = RegionId(dec.take_u64()?);
            let start = Addr(dec.take_u64()?);
            let end = Addr(dec.take_u64()?);
            if id.0 >= next_id || start >= end {
                return Err(CodecError::Invalid {
                    what: "region",
                    detail: format!("region {} [{:#x},{:#x}) is malformed", id.0, start.0, end.0),
                });
            }
            if regions.last().is_some_and(|&(prev, _, _)| id <= prev) {
                return Err(CodecError::Invalid {
                    what: "region store",
                    detail: format!("region ids out of order at {}", id.0),
                });
            }
            regions.push((id, start, end));
        }
        let np = dec.take_count(16)?;
        let mut pages = PageMap::new();
        for _ in 0..np {
            let page = PageAddr(dec.take_u64()?);
            let id = RegionId(dec.take_u64()?);
            if regions.binary_search_by_key(&id, |&(i, _, _)| i).is_err() {
                return Err(CodecError::Invalid {
                    what: "region page index",
                    detail: format!("page {:#x} maps to unknown region {}", page.0, id.0),
                });
            }
            pages.insert(page, id);
        }
        Ok(RegionStore {
            capacity,
            next_id,
            regions,
            pages,
            peak,
            overflows,
            epoch: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> Addr {
        Addr(n * PAGE_SIZE)
    }

    fn added(r: AddRegion) -> RegionId {
        match r {
            AddRegion::Added(id) => id,
            AddRegion::Overflow => panic!("unexpected overflow"),
        }
    }

    #[test]
    fn add_contains_remove() {
        let mut s = RegionStore::new(4);
        let id = added(s.add(page(1), page(3)));
        assert!(s.contains(page(1)));
        assert!(s.contains(Addr(page(2).0 + 123)));
        assert!(!s.contains(page(3)));
        assert!(!s.contains(page(0)));
        assert_eq!(s.remove(id), Some((page(1), page(3))));
        assert!(!s.contains(page(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn overflow_at_capacity_is_counted() {
        let mut s = RegionStore::new(2);
        assert!(matches!(s.add(page(0), page(1)), AddRegion::Added(_)));
        assert!(matches!(s.add(page(1), page(2)), AddRegion::Added(_)));
        assert_eq!(s.overflows(), 0);
        assert_eq!(s.add(page(2), page(3)), AddRegion::Overflow);
        assert_eq!(s.add(page(3), page(4)), AddRegion::Overflow);
        assert_eq!(s.len(), 2);
        assert!(!s.contains(page(2)));
        assert_eq!(s.overflows(), 2);
    }

    #[test]
    fn capacity_frees_on_remove() {
        let mut s = RegionStore::new(1);
        let id = added(s.add(page(0), page(1)));
        s.remove(id);
        assert!(matches!(s.add(page(5), page(6)), AddRegion::Added(_)));
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut s = RegionStore::new(8);
        let a = added(s.add(page(0), page(1)));
        s.add(page(1), page(2));
        assert_eq!(s.peak(), 2);
        s.remove(a);
        assert_eq!(s.peak(), 2);
    }

    #[test]
    fn overlapping_regions_keep_page_ward_after_one_removal() {
        let mut s = RegionStore::new(8);
        let a = added(s.add(page(0), page(2)));
        // Second region overlaps page 1.
        s.add(page(1), page(3));
        s.remove(a);
        // Page 1 is still covered by the second region.
        assert!(s.contains(page(1)));
        assert!(!s.contains(page(0)));
    }

    #[test]
    fn overlap_reassignment_picks_lowest_live_id_deterministically() {
        // Three regions all cover page 5; the owner is the first. Removing
        // it must hand the page to the lowest *live* id — and two stores
        // built identically must agree exactly (the old hash-map scan chose
        // an arbitrary covering region per store instance).
        let build = || {
            let mut s = RegionStore::new(8);
            let a = added(s.add(page(5), page(6))); // owner
            let b = added(s.add(page(4), page(7)));
            let c = added(s.add(page(5), page(8)));
            (s, a, b, c)
        };
        let (mut s1, a1, b1, _) = build();
        let (mut s2, a2, b2, _) = build();
        s1.remove(a1);
        s2.remove(a2);
        assert_eq!(s1.region_of(page(5)), Some(b1), "lowest live id wins");
        assert_eq!(s1.region_of(page(5)), s2.region_of(page(5)));
        let encode = |s: &RegionStore| {
            let mut enc = Encoder::new();
            s.encode_into(&mut enc);
            enc.into_bytes()
        };
        assert_eq!(encode(&s1), encode(&s2), "stores must be bit-identical");
        // Removing the new owner promotes the next-lowest covering region.
        s1.remove(b1);
        s2.remove(b2);
        assert_eq!(s1.region_of(page(5)), s2.region_of(page(5)));
        assert!(s1.contains(page(5)), "third region still covers the page");
    }

    #[test]
    fn remove_covering_finds_region() {
        let mut s = RegionStore::new(8);
        s.add(page(4), page(6));
        let (_, start, end) = s.remove_covering(Addr(page(5).0 + 7)).unwrap();
        assert_eq!((start, end), (page(4), page(6)));
        assert!(s.remove_covering(page(4)).is_none());
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_region_panics() {
        RegionStore::new(4).add(Addr(10), Addr(PAGE_SIZE));
    }

    #[test]
    fn epoch_advances_only_on_mutation() {
        let mut s = RegionStore::new(1);
        let e0 = s.epoch();
        assert!(!s.contains(page(0)) && s.epoch() == e0);
        let id = added(s.add(page(0), page(1)));
        let e1 = s.epoch();
        assert_ne!(e1, e0);
        assert_eq!(s.add(page(1), page(2)), AddRegion::Overflow);
        assert_eq!(s.epoch(), e1, "a rejected add changes no mapping");
        s.remove(id);
        assert_ne!(s.epoch(), e1);
    }

    #[test]
    fn codec_roundtrip_preserves_cam_state() {
        let mut s = RegionStore::new(8);
        let a = added(s.add(page(0), page(2)));
        s.add(page(1), page(3));
        s.add(page(10), page(11));
        s.remove(a);
        let mut enc = Encoder::new();
        s.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = RegionStore::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.capacity(), s.capacity());
        assert_eq!(back.len(), s.len());
        assert_eq!(back.peak(), s.peak());
        assert_eq!(back.overflows(), s.overflows());
        assert_eq!(back.next_id, s.next_id);
        assert_eq!(back.contains(page(1)), s.contains(page(1)));
        assert_eq!(back.contains(page(0)), s.contains(page(0)));
        // Re-encoding the decoded store yields identical bytes.
        let mut enc2 = Encoder::new();
        back.encode_into(&mut enc2);
        assert_eq!(enc2.into_bytes(), bytes);
    }

    #[test]
    fn codec_rejects_dangling_page_index() {
        let mut enc = Encoder::new();
        enc.put_u64(4); // capacity
        enc.put_u64(7); // next_id
        enc.put_u64(0); // peak
        enc.put_u64(0); // overflows
        enc.put_u64(0); // no regions
        enc.put_u64(1); // one page entry...
        enc.put_u64(0);
        enc.put_u64(3); // ...pointing at a region that does not exist
        let bytes = enc.into_bytes();
        assert!(RegionStore::decode_from(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn codec_rejects_out_of_order_region_ids() {
        let mut enc = Encoder::new();
        enc.put_u64(4); // capacity
        enc.put_u64(7); // next_id
        enc.put_u64(0); // peak
        enc.put_u64(0); // overflows
        enc.put_u64(2); // two regions, ids descending
        enc.put_u64(5);
        enc.put_u64(0);
        enc.put_u64(PAGE_SIZE);
        enc.put_u64(2);
        enc.put_u64(PAGE_SIZE);
        enc.put_u64(2 * PAGE_SIZE);
        enc.put_u64(0); // no pages
        let bytes = enc.into_bytes();
        assert!(RegionStore::decode_from(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn pages_of_covers_range() {
        let pages: Vec<_> = RegionStore::pages_of(page(2), page(5)).collect();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[0], page(2).page());
        assert_eq!(pages[2], page(4).page());
    }
}
