//! The WARD region store: the directory-side CAM tracking active regions.
//!
//! The paper (§6.1) stores each region as a begin/end pointer pair in a
//! CAM-like structure supporting 1024 simultaneous regions. Functionally a
//! lookup asks "does address A fall inside any active region?"; we answer it
//! with a page-index hash map (regions are always page-multiples in the MPL
//! runtime) while modelling the *capacity* of the hardware structure: adding
//! a region beyond capacity fails, and those addresses simply stay under
//! plain MESI — a silent, safe fallback.

use std::collections::HashMap;
use warden_mem::codec::{CodecError, Decoder, Encoder};
use warden_mem::{Addr, PageAddr, PAGE_SIZE};

/// Identifier of one active WARD region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

/// Outcome of [`RegionStore::add`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddRegion {
    /// Region accepted and active.
    Added(RegionId),
    /// The store is at capacity; the region is *not* tracked and its
    /// addresses remain under baseline coherence.
    Overflow,
}

/// Directory-side storage of active WARD regions.
///
/// # Example
///
/// ```
/// use warden_coherence::{AddRegion, RegionStore};
/// use warden_mem::{Addr, PAGE_SIZE};
///
/// let mut store = RegionStore::new(1024);
/// let id = match store.add(Addr(0), Addr(PAGE_SIZE)) {
///     AddRegion::Added(id) => id,
///     AddRegion::Overflow => unreachable!(),
/// };
/// assert!(store.contains(Addr(100)));
/// store.remove(id);
/// assert!(!store.contains(Addr(100)));
/// ```
#[derive(Clone, Debug)]
pub struct RegionStore {
    capacity: usize,
    next_id: u64,
    /// Live regions: id → (start, end) byte addresses.
    regions: HashMap<RegionId, (Addr, Addr)>,
    /// Page → owning region, for O(1) lookups.
    pages: HashMap<PageAddr, RegionId>,
    peak: usize,
}

impl RegionStore {
    /// Create a store holding at most `capacity` simultaneous regions
    /// (the paper sizes the hardware for 1024).
    pub fn new(capacity: usize) -> RegionStore {
        RegionStore {
            capacity,
            next_id: 0,
            regions: HashMap::new(),
            pages: HashMap::new(),
            peak: 0,
        }
    }

    /// Capacity in simultaneous regions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently active regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no region is active.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Peak simultaneous regions observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Add a region covering `[start, end)`.
    ///
    /// Bounds must be page-aligned, matching the MPL runtime which marks
    /// whole heap pages. If an address lands in more than one region the
    /// block is simply WARD (paper §6.1); overlapping pages stay owned by
    /// the earlier region for removal purposes.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not page-aligned or the range is empty.
    pub fn add(&mut self, start: Addr, end: Addr) -> AddRegion {
        assert!(
            start.page_offset() == 0 && end.page_offset() == 0,
            "region bounds must be page-aligned"
        );
        assert!(start < end, "region must be non-empty");
        if self.regions.len() == self.capacity {
            return AddRegion::Overflow;
        }
        let id = RegionId(self.next_id);
        self.next_id += 1;
        self.regions.insert(id, (start, end));
        let mut page = start.page();
        while page.base() < end {
            self.pages.entry(page).or_insert(id);
            page = page + 1;
        }
        self.peak = self.peak.max(self.regions.len());
        AddRegion::Added(id)
    }

    /// Remove a region, returning its page range for reconciliation.
    /// Removing an unknown (e.g. overflowed) region returns `None`.
    pub fn remove(&mut self, id: RegionId) -> Option<(Addr, Addr)> {
        let (start, end) = self.regions.remove(&id)?;
        let mut page = start.page();
        while page.base() < end {
            if self.pages.get(&page) == Some(&id) {
                self.pages.remove(&page);
                // Another live region may also cover this page.
                if let Some((&other, _)) = self
                    .regions
                    .iter()
                    .find(|(_, &(s, e))| s <= page.base() && page.base() < e)
                {
                    self.pages.insert(page, other);
                }
            }
            page = page + 1;
        }
        Some((start, end))
    }

    /// Remove the region covering `addr`, if any, returning its id and range.
    pub fn remove_covering(&mut self, addr: Addr) -> Option<(RegionId, Addr, Addr)> {
        let id = *self.pages.get(&addr.page())?;
        let (s, e) = self.remove(id)?;
        Some((id, s, e))
    }

    /// Whether `addr` is inside any active region.
    pub fn contains(&self, addr: Addr) -> bool {
        self.pages.contains_key(&addr.page())
    }

    /// Whether any address of the given block is inside an active region.
    /// (Blocks never straddle pages, so this is the block's page.)
    pub fn contains_block(&self, block: warden_mem::BlockAddr) -> bool {
        self.pages.contains_key(&block.page())
    }

    /// Iterate the pages of a byte range (helper for reconciliation walks).
    pub fn pages_of(start: Addr, end: Addr) -> impl Iterator<Item = PageAddr> {
        let first = start.page();
        let n = (end.0 - start.0).div_ceil(PAGE_SIZE);
        (0..n).map(move |i| first + i)
    }

    /// Serialize the complete CAM state (capacity, id allocator, live
    /// regions, page index, peak) for a checkpoint. Maps are written sorted
    /// by key so equal stores always produce identical bytes.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_usize(self.capacity);
        enc.put_u64(self.next_id);
        enc.put_usize(self.peak);
        let mut regions: Vec<(&RegionId, &(Addr, Addr))> = self.regions.iter().collect();
        regions.sort_by_key(|(id, _)| **id);
        enc.put_usize(regions.len());
        for (id, (start, end)) in regions {
            enc.put_u64(id.0);
            enc.put_u64(start.0);
            enc.put_u64(end.0);
        }
        let mut pages: Vec<(&PageAddr, &RegionId)> = self.pages.iter().collect();
        pages.sort_by_key(|(p, _)| **p);
        enc.put_usize(pages.len());
        for (page, id) in pages {
            enc.put_u64(page.0);
            enc.put_u64(id.0);
        }
    }

    /// Decode a store serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<RegionStore, CodecError> {
        let capacity = dec.take_usize()?;
        let next_id = dec.take_u64()?;
        let peak = dec.take_usize()?;
        let nr = dec.take_count(24)?;
        if nr > capacity {
            return Err(CodecError::Invalid {
                what: "region store",
                detail: format!("{nr} live regions exceed capacity {capacity}"),
            });
        }
        let mut regions = HashMap::with_capacity(nr);
        for _ in 0..nr {
            let id = RegionId(dec.take_u64()?);
            let start = Addr(dec.take_u64()?);
            let end = Addr(dec.take_u64()?);
            if id.0 >= next_id || start >= end {
                return Err(CodecError::Invalid {
                    what: "region",
                    detail: format!("region {} [{:#x},{:#x}) is malformed", id.0, start.0, end.0),
                });
            }
            regions.insert(id, (start, end));
        }
        let np = dec.take_count(16)?;
        let mut pages = HashMap::with_capacity(np);
        for _ in 0..np {
            let page = PageAddr(dec.take_u64()?);
            let id = RegionId(dec.take_u64()?);
            if !regions.contains_key(&id) {
                return Err(CodecError::Invalid {
                    what: "region page index",
                    detail: format!("page {:#x} maps to unknown region {}", page.0, id.0),
                });
            }
            pages.insert(page, id);
        }
        Ok(RegionStore {
            capacity,
            next_id,
            regions,
            pages,
            peak,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> Addr {
        Addr(n * PAGE_SIZE)
    }

    #[test]
    fn add_contains_remove() {
        let mut s = RegionStore::new(4);
        let id = match s.add(page(1), page(3)) {
            AddRegion::Added(id) => id,
            AddRegion::Overflow => panic!(),
        };
        assert!(s.contains(page(1)));
        assert!(s.contains(Addr(page(2).0 + 123)));
        assert!(!s.contains(page(3)));
        assert!(!s.contains(page(0)));
        assert_eq!(s.remove(id), Some((page(1), page(3))));
        assert!(!s.contains(page(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn overflow_at_capacity() {
        let mut s = RegionStore::new(2);
        assert!(matches!(s.add(page(0), page(1)), AddRegion::Added(_)));
        assert!(matches!(s.add(page(1), page(2)), AddRegion::Added(_)));
        assert_eq!(s.add(page(2), page(3)), AddRegion::Overflow);
        assert_eq!(s.len(), 2);
        assert!(!s.contains(page(2)));
    }

    #[test]
    fn capacity_frees_on_remove() {
        let mut s = RegionStore::new(1);
        let id = match s.add(page(0), page(1)) {
            AddRegion::Added(id) => id,
            AddRegion::Overflow => panic!(),
        };
        s.remove(id);
        assert!(matches!(s.add(page(5), page(6)), AddRegion::Added(_)));
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut s = RegionStore::new(8);
        let a = match s.add(page(0), page(1)) {
            AddRegion::Added(id) => id,
            _ => panic!(),
        };
        s.add(page(1), page(2));
        assert_eq!(s.peak(), 2);
        s.remove(a);
        assert_eq!(s.peak(), 2);
    }

    #[test]
    fn overlapping_regions_keep_page_ward_after_one_removal() {
        let mut s = RegionStore::new(8);
        let a = match s.add(page(0), page(2)) {
            AddRegion::Added(id) => id,
            _ => panic!(),
        };
        // Second region overlaps page 1.
        s.add(page(1), page(3));
        s.remove(a);
        // Page 1 is still covered by the second region.
        assert!(s.contains(page(1)));
        assert!(!s.contains(page(0)));
    }

    #[test]
    fn remove_covering_finds_region() {
        let mut s = RegionStore::new(8);
        s.add(page(4), page(6));
        let (_, start, end) = s.remove_covering(Addr(page(5).0 + 7)).unwrap();
        assert_eq!((start, end), (page(4), page(6)));
        assert!(s.remove_covering(page(4)).is_none());
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_region_panics() {
        RegionStore::new(4).add(Addr(10), Addr(PAGE_SIZE));
    }

    #[test]
    fn codec_roundtrip_preserves_cam_state() {
        let mut s = RegionStore::new(8);
        let a = match s.add(page(0), page(2)) {
            AddRegion::Added(id) => id,
            _ => panic!(),
        };
        s.add(page(1), page(3));
        s.add(page(10), page(11));
        s.remove(a);
        let mut enc = Encoder::new();
        s.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = RegionStore::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.capacity(), s.capacity());
        assert_eq!(back.len(), s.len());
        assert_eq!(back.peak(), s.peak());
        assert_eq!(back.next_id, s.next_id);
        assert_eq!(back.contains(page(1)), s.contains(page(1)));
        assert_eq!(back.contains(page(0)), s.contains(page(0)));
        // Re-encoding the decoded store yields identical bytes.
        let mut enc2 = Encoder::new();
        back.encode_into(&mut enc2);
        assert_eq!(enc2.into_bytes(), bytes);
    }

    #[test]
    fn codec_rejects_dangling_page_index() {
        let mut enc = Encoder::new();
        enc.put_u64(4); // capacity
        enc.put_u64(7); // next_id
        enc.put_u64(0); // peak
        enc.put_u64(0); // no regions
        enc.put_u64(1); // one page entry...
        enc.put_u64(0);
        enc.put_u64(3); // ...pointing at a region that does not exist
        let bytes = enc.into_bytes();
        assert!(RegionStore::decode_from(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn pages_of_covers_range() {
        let pages: Vec<_> = RegionStore::pages_of(page(2), page(5)).collect();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[0], page(2).page());
        assert_eq!(pages[2], page(4).page());
    }
}
