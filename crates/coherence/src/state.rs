//! Coherence state kept in private caches and the directory.

use crate::CoreId;
use std::fmt;
use warden_mem::{BlockData, WriteMask};

/// Which coherence protocol the system runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// A plain MSI directory protocol (no Exclusive state): every
    /// first-write to a privately read block pays an upgrade. Included as a
    /// secondary baseline to isolate what the E state alone buys on these
    /// workloads.
    Msi,
    /// The baseline directory-based MESI protocol (paper §2.2).
    Mesi,
    /// MESI augmented with the WARD state (paper §5).
    Warden,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Msi => write!(f, "MSI"),
            Protocol::Mesi => write!(f, "MESI"),
            Protocol::Warden => write!(f, "WARDen"),
        }
    }
}

/// The stable states a private-cache line can be in (Invalid = not resident).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrivState {
    /// Dirty exclusive copy.
    Modified,
    /// Clean exclusive copy (may be written without a transaction).
    Exclusive,
    /// Clean shared copy (writes require an upgrade).
    Shared,
}

impl PrivState {
    /// Whether a store can proceed without a directory transaction.
    pub fn writable(self) -> bool {
        matches!(self, PrivState::Modified | PrivState::Exclusive)
    }
}

/// One line in a private cache: coherence state, the real data bytes, and
/// the byte-sector write mask accumulated since fill (paper §6.1's sectored
/// caches — the mask is maintained unconditionally, so the private caches
/// need no WARD-specific modification, matching §5.1).
#[derive(Clone, Debug)]
pub struct PrivLine {
    /// Current MESI state.
    pub state: PrivState,
    /// Data bytes of this copy.
    pub data: BlockData,
    /// Bytes written since this copy was filled.
    pub mask: WriteMask,
}

impl PrivLine {
    /// A freshly filled clean line.
    pub fn filled(state: PrivState, data: BlockData) -> PrivLine {
        PrivLine {
            state,
            data,
            mask: WriteMask::empty(),
        }
    }
}

/// Directory state for one block, stored alongside the LLC line.
///
/// The sharer sets are bitmasks over cores (≤ 64 cores).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirState {
    /// No private copies; the LLC data is the only cached copy.
    Uncached,
    /// Clean copies at the cores in the bitmask; LLC data valid.
    Shared(u64),
    /// A single owner holds the block in M or E; LLC data may be stale.
    Owned(CoreId),
    /// WARD state (paper §5.1): the cores in the bitmask hold copies that
    /// coherence ignores; the LLC data is the reconciliation merge base and
    /// may be stale with respect to any of them.
    Ward(u64),
}

impl DirState {
    /// Bit for one core.
    pub fn bit(core: CoreId) -> u64 {
        1u64 << core
    }

    /// Iterate over the cores present in a sharer bitmask.
    pub fn cores_in(mask: u64) -> impl Iterator<Item = CoreId> {
        (0..64usize).filter(move |c| mask & (1 << c) != 0)
    }
}

/// One LLC line: data, a dirty bit relative to memory, and the co-located
/// directory entry.
#[derive(Clone, Debug)]
pub struct LlcLine {
    /// The LLC's copy of the block.
    pub data: BlockData,
    /// Whether `data` differs from main memory.
    pub dirty: bool,
    /// Directory entry for this block.
    pub dir: DirState,
    /// Set while the block is in W state and a ward copy's dirty sectors
    /// were merged into the LLC while *other* copies remained: the remaining
    /// copies are then incomplete, so reconciliation must invalidate even a
    /// sole survivor instead of downgrading it in place.
    pub ward_partial: bool,
}

impl LlcLine {
    /// A clean line with no private copies.
    pub fn clean(data: BlockData) -> LlcLine {
        LlcLine {
            data,
            dirty: false,
            dir: DirState::Uncached,
            ward_partial: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writable_states() {
        assert!(PrivState::Modified.writable());
        assert!(PrivState::Exclusive.writable());
        assert!(!PrivState::Shared.writable());
    }

    #[test]
    fn cores_in_decodes_bitmask() {
        let mask = DirState::bit(0) | DirState::bit(3) | DirState::bit(63);
        let cores: Vec<_> = DirState::cores_in(mask).collect();
        assert_eq!(cores, vec![0, 3, 63]);
    }

    #[test]
    fn filled_line_is_clean() {
        let l = PrivLine::filled(PrivState::Exclusive, BlockData::zeroed());
        assert!(l.mask.is_empty());
        assert_eq!(l.state, PrivState::Exclusive);
    }

    #[test]
    fn protocol_display() {
        assert_eq!(Protocol::Mesi.to_string(), "MESI");
        assert_eq!(Protocol::Warden.to_string(), "WARDen");
    }
}
