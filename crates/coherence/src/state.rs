//! Coherence state kept in private caches and the directory.

use crate::error::CoherenceError;
use crate::CoreId;
use std::fmt;
use warden_mem::codec::{CodecError, Decoder, Encoder};
use warden_mem::{BlockData, WriteMask};

/// Which coherence protocol the system runs.
///
/// This is the *identity* of a protocol — the stable name and wire tag that
/// checkpoints, serve fingerprints and campaign reports bind to. The
/// behaviour lives behind the [`crate::Protocol`] trait; [`Self::imp`]
/// resolves an id to its registered implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolId {
    /// A plain MSI directory protocol (no Exclusive state): every
    /// first-write to a privately read block pays an upgrade. Included as a
    /// secondary baseline to isolate what the E state alone buys on these
    /// workloads.
    Msi,
    /// The baseline directory-based MESI protocol (paper §2.2).
    Mesi,
    /// MESI augmented with the WARD state (paper §5).
    Warden,
    /// Self-invalidation/self-downgrade ("Mending Fences", arXiv:1611.07372):
    /// every demand access is served without invalidating or downgrading
    /// remote copies, and writes become visible at sync points, where a core
    /// flushes its dirty sectors (self-downgrade) and drops its clean copies
    /// (self-invalidate). Atomics sync, then execute coherently.
    SelfInv,
    /// Directoryless shared-LLC (DLS, arXiv:1206.4753): the private caches
    /// are bypassed entirely, so no private dirty line can exist and every
    /// access is served at the block's home LLC slice — the single coherence
    /// point.
    Dls,
}

impl ProtocolId {
    /// Every registered protocol, in wire-tag order.
    pub const ALL: [ProtocolId; 5] = [
        ProtocolId::Msi,
        ProtocolId::Mesi,
        ProtocolId::Warden,
        ProtocolId::SelfInv,
        ProtocolId::Dls,
    ];

    /// The stable lowercase name (CLI flags, golden-file names, campaign
    /// run ids, report headers).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolId::Msi => "msi",
            ProtocolId::Mesi => "mesi",
            ProtocolId::Warden => "warden",
            ProtocolId::SelfInv => "si",
            ProtocolId::Dls => "dls",
        }
    }

    /// Resolve a name produced by [`Self::name`] (case-insensitive).
    pub fn from_name(name: &str) -> Result<ProtocolId, CoherenceError> {
        let lower = name.to_ascii_lowercase();
        ProtocolId::ALL
            .into_iter()
            .find(|p| p.name() == lower)
            .ok_or_else(|| CoherenceError::UnknownProtocol { name: name.into() })
    }

    /// The stable one-byte wire tag (checkpoint identity, serve
    /// fingerprints, campaign result records).
    pub fn tag(self) -> u8 {
        match self {
            ProtocolId::Msi => 0,
            ProtocolId::Mesi => 1,
            ProtocolId::Warden => 2,
            ProtocolId::SelfInv => 3,
            ProtocolId::Dls => 4,
        }
    }

    /// Resolve a wire tag written by [`Self::tag`]; unknown tags are a
    /// typed decode error, never a panic or a silent default.
    pub fn from_tag(tag: u8) -> Result<ProtocolId, CodecError> {
        ProtocolId::ALL
            .into_iter()
            .find(|p| p.tag() == tag)
            .ok_or(CodecError::BadTag {
                what: "protocol",
                tag: tag as u64,
            })
    }
}

impl fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolId::Msi => write!(f, "MSI"),
            ProtocolId::Mesi => write!(f, "MESI"),
            ProtocolId::Warden => write!(f, "WARDen"),
            ProtocolId::SelfInv => write!(f, "SelfInv"),
            ProtocolId::Dls => write!(f, "DLS"),
        }
    }
}

/// The stable states a private-cache line can be in (Invalid = not resident).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrivState {
    /// Dirty exclusive copy.
    Modified,
    /// Clean exclusive copy (may be written without a transaction).
    Exclusive,
    /// Clean shared copy (writes require an upgrade).
    Shared,
}

impl PrivState {
    /// Whether a store can proceed without a directory transaction.
    pub fn writable(self) -> bool {
        matches!(self, PrivState::Modified | PrivState::Exclusive)
    }
}

/// One line in a private cache: coherence state, the real data bytes, and
/// the byte-sector write mask accumulated since fill (paper §6.1's sectored
/// caches — the mask is maintained unconditionally, so the private caches
/// need no WARD-specific modification, matching §5.1).
#[derive(Clone, Debug)]
pub struct PrivLine {
    /// Current MESI state.
    pub state: PrivState,
    /// Data bytes of this copy.
    pub data: BlockData,
    /// Bytes written since this copy was filled.
    pub mask: WriteMask,
}

impl PrivLine {
    /// A freshly filled clean line.
    pub fn filled(state: PrivState, data: BlockData) -> PrivLine {
        PrivLine {
            state,
            data,
            mask: WriteMask::empty(),
        }
    }

    /// Serialize this line for a checkpoint.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u8(match self.state {
            PrivState::Modified => 0,
            PrivState::Exclusive => 1,
            PrivState::Shared => 2,
        });
        enc.put_raw(self.data.bytes());
        enc.put_u64(self.mask.bits());
    }

    /// Decode a line serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<PrivLine, CodecError> {
        let state = match dec.take_u8()? {
            0 => PrivState::Modified,
            1 => PrivState::Exclusive,
            2 => PrivState::Shared,
            t => {
                return Err(CodecError::BadTag {
                    what: "private cache state",
                    tag: t as u64,
                })
            }
        };
        let data = BlockData::from_bytes(
            dec.take_raw(64)?
                .try_into()
                .expect("take_raw(64) yields 64 bytes"),
        );
        let mask = WriteMask::from_bits(dec.take_u64()?);
        Ok(PrivLine { state, data, mask })
    }
}

/// Directory state for one block, stored alongside the LLC line.
///
/// The sharer sets are bitmasks over cores (≤ 64 cores).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirState {
    /// No private copies; the LLC data is the only cached copy.
    Uncached,
    /// Clean copies at the cores in the bitmask; LLC data valid.
    Shared(u64),
    /// A single owner holds the block in M or E; LLC data may be stale.
    Owned(CoreId),
    /// WARD state (paper §5.1): the cores in the bitmask hold copies that
    /// coherence ignores; the LLC data is the reconciliation merge base and
    /// may be stale with respect to any of them.
    Ward(u64),
}

impl DirState {
    /// Bit for one core.
    pub fn bit(core: CoreId) -> u64 {
        1u64 << core
    }

    /// Iterate over the cores present in a sharer bitmask.
    pub fn cores_in(mask: u64) -> impl Iterator<Item = CoreId> {
        (0..64usize).filter(move |c| mask & (1 << c) != 0)
    }

    /// Serialize this directory entry for a checkpoint.
    pub fn encode_into(&self, enc: &mut Encoder) {
        match *self {
            DirState::Uncached => {
                enc.put_u8(0);
                enc.put_u64(0);
            }
            DirState::Shared(mask) => {
                enc.put_u8(1);
                enc.put_u64(mask);
            }
            DirState::Owned(core) => {
                enc.put_u8(2);
                enc.put_u64(core as u64);
            }
            DirState::Ward(mask) => {
                enc.put_u8(3);
                enc.put_u64(mask);
            }
        }
    }

    /// Decode a directory entry serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<DirState, CodecError> {
        let tag = dec.take_u8()?;
        let payload = dec.take_u64()?;
        Ok(match tag {
            0 => DirState::Uncached,
            1 => DirState::Shared(payload),
            2 => {
                let core = usize::try_from(payload).map_err(|_| CodecError::Invalid {
                    what: "directory owner",
                    detail: format!("core id {payload} out of range"),
                })?;
                DirState::Owned(core)
            }
            3 => DirState::Ward(payload),
            t => {
                return Err(CodecError::BadTag {
                    what: "directory state",
                    tag: t as u64,
                })
            }
        })
    }
}

/// One LLC line: data, a dirty bit relative to memory, and the co-located
/// directory entry.
#[derive(Clone, Debug)]
pub struct LlcLine {
    /// The LLC's copy of the block.
    pub data: BlockData,
    /// Whether `data` differs from main memory.
    pub dirty: bool,
    /// Directory entry for this block.
    pub dir: DirState,
    /// Set while the block is in W state and a ward copy's dirty sectors
    /// were merged into the LLC while *other* copies remained: the remaining
    /// copies are then incomplete, so reconciliation must invalidate even a
    /// sole survivor instead of downgrading it in place.
    pub ward_partial: bool,
}

impl LlcLine {
    /// A clean line with no private copies.
    pub fn clean(data: BlockData) -> LlcLine {
        LlcLine {
            data,
            dirty: false,
            dir: DirState::Uncached,
            ward_partial: false,
        }
    }

    /// Serialize this LLC line (data, dirty bit, directory entry) for a
    /// checkpoint.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_raw(self.data.bytes());
        enc.put_bool(self.dirty);
        self.dir.encode_into(enc);
        enc.put_bool(self.ward_partial);
    }

    /// Decode a line serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<LlcLine, CodecError> {
        let data = BlockData::from_bytes(
            dec.take_raw(64)?
                .try_into()
                .expect("take_raw(64) yields 64 bytes"),
        );
        let dirty = dec.take_bool()?;
        let dir = DirState::decode_from(dec)?;
        let ward_partial = dec.take_bool()?;
        Ok(LlcLine {
            data,
            dirty,
            dir,
            ward_partial,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writable_states() {
        assert!(PrivState::Modified.writable());
        assert!(PrivState::Exclusive.writable());
        assert!(!PrivState::Shared.writable());
    }

    #[test]
    fn cores_in_decodes_bitmask() {
        let mask = DirState::bit(0) | DirState::bit(3) | DirState::bit(63);
        let cores: Vec<_> = DirState::cores_in(mask).collect();
        assert_eq!(cores, vec![0, 3, 63]);
    }

    #[test]
    fn filled_line_is_clean() {
        let l = PrivLine::filled(PrivState::Exclusive, BlockData::zeroed());
        assert!(l.mask.is_empty());
        assert_eq!(l.state, PrivState::Exclusive);
    }

    #[test]
    fn protocol_display() {
        assert_eq!(ProtocolId::Mesi.to_string(), "MESI");
        assert_eq!(ProtocolId::Warden.to_string(), "WARDen");
        assert_eq!(ProtocolId::SelfInv.to_string(), "SelfInv");
        assert_eq!(ProtocolId::Dls.to_string(), "DLS");
    }

    #[test]
    fn protocol_names_round_trip() {
        for p in ProtocolId::ALL {
            assert_eq!(ProtocolId::from_name(p.name()).unwrap(), p);
            assert_eq!(
                ProtocolId::from_name(&p.name().to_ascii_uppercase()).unwrap(),
                p
            );
        }
        match ProtocolId::from_name("moesi") {
            Err(CoherenceError::UnknownProtocol { name }) => assert_eq!(name, "moesi"),
            other => panic!("expected UnknownProtocol, got {other:?}"),
        }
    }

    #[test]
    fn protocol_tags_round_trip_and_reject_unknown() {
        for p in ProtocolId::ALL {
            assert_eq!(ProtocolId::from_tag(p.tag()).unwrap(), p);
        }
        // Tags are frozen: reordering the enum would silently re-bind every
        // existing checkpoint and serve fingerprint.
        assert_eq!(ProtocolId::Msi.tag(), 0);
        assert_eq!(ProtocolId::Mesi.tag(), 1);
        assert_eq!(ProtocolId::Warden.tag(), 2);
        assert_eq!(ProtocolId::SelfInv.tag(), 3);
        assert_eq!(ProtocolId::Dls.tag(), 4);
        match ProtocolId::from_tag(250) {
            Err(CodecError::BadTag { what, tag }) => {
                assert_eq!(what, "protocol");
                assert_eq!(tag, 250);
            }
            other => panic!("expected BadTag, got {other:?}"),
        }
    }
}
