//! Machine topology and latency model.

use std::fmt;

/// Identifies one hardware core (one hardware thread in the paper's terms).
pub type CoreId = usize;

/// Identifies one socket (one LLC slice + directory + memory controller).
pub type SocketId = usize;

/// Core/socket layout of the simulated machine.
///
/// # Example
///
/// ```
/// use warden_coherence::Topology;
/// let t = Topology::new(2, 12);
/// assert_eq!(t.num_cores(), 24);
/// assert_eq!(t.socket_of(13), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Topology {
    num_sockets: usize,
    cores_per_socket: usize,
}

impl Topology {
    /// Create a topology of `num_sockets` sockets with `cores_per_socket`
    /// cores each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or the machine exceeds 64 cores
    /// (the sharer-bitmask width).
    pub fn new(num_sockets: usize, cores_per_socket: usize) -> Topology {
        assert!(num_sockets > 0 && cores_per_socket > 0, "empty machine");
        assert!(
            num_sockets * cores_per_socket <= 64,
            "at most 64 cores supported (sharer bitmask width)"
        );
        Topology {
            num_sockets,
            cores_per_socket,
        }
    }

    /// Number of sockets.
    pub fn num_sockets(self) -> usize {
        self.num_sockets
    }

    /// Cores per socket.
    pub fn cores_per_socket(self) -> usize {
        self.cores_per_socket
    }

    /// Total cores in the machine.
    pub fn num_cores(self) -> usize {
        self.num_sockets * self.cores_per_socket
    }

    /// The socket a core belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn socket_of(self, core: CoreId) -> SocketId {
        assert!(core < self.num_cores(), "core {core} out of range");
        core / self.cores_per_socket
    }

    /// Home socket (directory + LLC slice) of a cache block, interleaved by
    /// block address.
    pub fn home_of(self, block: warden_mem::BlockAddr) -> SocketId {
        (block.0 % self.num_sockets as u64) as usize
    }
}

/// Access latencies in cycles, mirroring the paper's Table 2 plus the
/// cross-socket and memory figures implied by Table 1.
///
/// All figures are one-transaction contributions; the protocol engine
/// composes them per request path (e.g. an L2 miss that must forward to a
/// remote dirty owner pays `l3 + fwd + intersocket × crossings`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// L1 hit latency (paper: 6).
    pub l1: u64,
    /// L2 hit latency (paper: 16).
    pub l2: u64,
    /// L3/LLC + directory access latency (paper: 71).
    pub l3: u64,
    /// Extra latency to probe and retrieve data from another core's private
    /// cache (the forward/intervention hop of Fwd-GetS / Fwd-GetM).
    pub fwd: u64,
    /// One crossing of the inter-socket interconnect.
    pub intersocket: u64,
    /// Main-memory access beyond the LLC (per access).
    pub dram: u64,
    /// Cycles charged to the core executing an Add/Remove-Region instruction.
    pub region_instr: u64,
    /// Cycles charged (to the removing core) per block flushed during
    /// reconciliation; small because reconciliation overlaps with execution
    /// (paper §6.1 estimates it by a cache flush).
    pub reconcile_per_block: u64,
}

impl LatencyModel {
    /// Latencies for the paper's Xeon Gold 6126 model (Table 2), with
    /// forward/inter-socket/DRAM values fitted to Table 1's ping-pong
    /// validation numbers.
    pub fn xeon_gold_6126() -> LatencyModel {
        LatencyModel {
            l1: 6,
            l2: 16,
            l3: 71,
            fwd: 60,
            intersocket: 330,
            dram: 230,
            region_instr: 4,
            reconcile_per_block: 4,
        }
    }

    /// Latencies for a disaggregated two-node machine with a 1 µs remote
    /// access time (paper §7.3): at 3.3 GHz, 1 µs = 3300 cycles for both the
    /// remote-node crossing and the (remote) memory pool.
    pub fn disaggregated() -> LatencyModel {
        LatencyModel {
            intersocket: 3300,
            dram: 3300,
            ..LatencyModel::xeon_gold_6126()
        }
    }

    /// Latencies for a CXL-class memory expander: local caches and DRAM as
    /// on the Xeon model, but the cross-socket link runs over CXL.mem at
    /// roughly 180 ns (~600 cycles at 3.3 GHz) — between the paper's native
    /// NUMA point and its 1 µs disaggregated point (§7.3).
    pub fn cxl() -> LatencyModel {
        LatencyModel {
            intersocket: 600,
            ..LatencyModel::xeon_gold_6126()
        }
    }

    /// Check the model's physical plausibility: non-zero hit latencies
    /// strictly ordered L1 < L2 < L3, with remote figures (DRAM and the
    /// inter-socket crossing) above the L3. The latency composition in the
    /// protocol engine assumes this ordering (e.g. hit classification and
    /// the remote-transaction threshold used by the fault injector).
    pub fn validate(&self) -> Result<(), crate::CoherenceError> {
        let bad = |msg: String| Err(crate::CoherenceError::BadConfig(msg));
        if self.l1 == 0 {
            return bad("l1 latency must be non-zero".into());
        }
        if !(self.l1 < self.l2 && self.l2 < self.l3) {
            return bad(format!(
                "hit latencies must be ordered l1 < l2 < l3, got {}/{}/{}",
                self.l1, self.l2, self.l3
            ));
        }
        if self.dram <= self.l3 {
            return bad(format!(
                "dram latency {} must exceed l3 latency {}",
                self.dram, self.l3
            ));
        }
        if self.intersocket <= self.l3 {
            return bad(format!(
                "intersocket latency {} must exceed l3 latency {}",
                self.intersocket, self.l3
            ));
        }
        Ok(())
    }
}

impl fmt::Display for LatencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1/L2/L3 {}-{}-{} cycles, fwd {}, intersocket {}, dram {}",
            self.l1, self.l2, self.l3, self.fwd, self.intersocket, self.dram
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warden_mem::BlockAddr;

    #[test]
    fn latency_presets_are_valid_and_ordered_by_remoteness() {
        for lat in [
            LatencyModel::xeon_gold_6126(),
            LatencyModel::cxl(),
            LatencyModel::disaggregated(),
        ] {
            lat.validate().unwrap();
        }
        let native = LatencyModel::xeon_gold_6126().intersocket;
        let cxl = LatencyModel::cxl().intersocket;
        let disagg = LatencyModel::disaggregated().intersocket;
        assert!(native < cxl && cxl < disagg);
    }

    #[test]
    fn socket_mapping() {
        let t = Topology::new(2, 12);
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(11), 0);
        assert_eq!(t.socket_of(12), 1);
        assert_eq!(t.socket_of(23), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn socket_of_out_of_range_panics() {
        Topology::new(1, 4).socket_of(4);
    }

    #[test]
    fn home_interleaves_blocks() {
        let t = Topology::new(2, 12);
        assert_eq!(t.home_of(BlockAddr(0)), 0);
        assert_eq!(t.home_of(BlockAddr(1)), 1);
        assert_eq!(t.home_of(BlockAddr(2)), 0);
    }

    #[test]
    fn single_socket_homes_everything_locally() {
        let t = Topology::new(1, 12);
        for b in 0..100 {
            assert_eq!(t.home_of(BlockAddr(b)), 0);
        }
    }

    #[test]
    #[should_panic(expected = "64 cores")]
    fn too_many_cores_rejected() {
        Topology::new(8, 12);
    }

    #[test]
    fn paper_latency_values() {
        let l = LatencyModel::xeon_gold_6126();
        assert_eq!((l.l1, l.l2, l.l3), (6, 16, 71));
        let d = LatencyModel::disaggregated();
        assert_eq!(d.intersocket, 3300);
        assert_eq!(d.l1, 6);
    }
}
