//! Opt-in runtime verification of the protocol's correctness invariants.
//!
//! [`CoherenceSystem::enable_checker`](crate::CoherenceSystem::enable_checker)
//! installs an [`InvariantChecker`] that re-validates the machine's state
//! after every directory transaction (batched at the end of each demand
//! access or region instruction, when all transient state has settled). The
//! checker piggybacks on the same `note_dir` plumbing that feeds the
//! Figure 5 transition log, recording the *full* directory state per
//! transition so it can reason about sharer sets, not just coarse states.
//!
//! Checked invariants:
//!
//! * **SWMR** — outside the W state at most one core holds a writable (M/E)
//!   copy, and a dirty copy's holder is the registered owner.
//! * **Directory agreement** — the directory's sharer/owner sets match the
//!   private caches block-for-block (inclusion, no stale or missing bits).
//! * **W implies region** — a block in the W state lies inside an active
//!   WARD region (stale W entries would silently lose the WARD property).
//! * **Write-mask mergeability** — while a block is W and no partial merge
//!   happened, every copy's *clean* bytes agree with the LLC merge base, so
//!   a mask merge can never lose data; masks are only allowed to overlap
//!   block-for-block (benign WAW), never to disagree silently.
//! * **W-entry sync** — when a block enters W from a dirty single owner,
//!   the owner's written sectors must have been snapshotted into the LLC
//!   (its mask cleared), or pre-region writes could be served stale.
//! * **Dirty-byte conservation** — across a reconciliation, every byte
//!   written by exactly one core survives with that core's value, and every
//!   contested byte resolves to one of the writers' values.
//!
//! Violations are *reported*, not panicked: they accumulate as typed
//! [`InvariantViolation`] values carrying the block, the offending state,
//! and the block's recent directory-transition history.

use crate::state::DirState;
use crate::system::DirKind;
use crate::topo::CoreId;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use warden_mem::codec::{CodecError, Decoder, Encoder};
use warden_mem::BlockAddr;

/// How many recent directory transitions the checker retains per block for
/// violation reports.
const HISTORY_DEPTH: usize = 16;

/// Which invariant a violation broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum InvariantKind {
    /// Multiple writable copies outside the W state.
    Swmr,
    /// Directory sharer/owner sets disagree with the private caches.
    DirAgreement,
    /// A W-state block lies outside every active WARD region.
    WardInRegion,
    /// A W copy's clean bytes diverged from the LLC merge base.
    MaskMergeability,
    /// A block entered W from a dirty owner without an entry sync.
    WardEntrySync,
    /// Reconciliation lost or corrupted dirty bytes.
    DirtyConservation,
    /// A private line survived a self-invalidation sync point (dirty lines
    /// must self-downgrade, clean lines must self-invalidate).
    SyncResidue,
    /// A clean LLC line's data diverged from main memory (a store reached
    /// the LLC without setting the dirty bit).
    CleanLineDivergence,
    /// A protocol that forbids private caching filled a private line.
    PrivateResidency,
}

impl InvariantKind {
    fn tag(self) -> u8 {
        match self {
            InvariantKind::Swmr => 0,
            InvariantKind::DirAgreement => 1,
            InvariantKind::WardInRegion => 2,
            InvariantKind::MaskMergeability => 3,
            InvariantKind::WardEntrySync => 4,
            InvariantKind::DirtyConservation => 5,
            InvariantKind::SyncResidue => 6,
            InvariantKind::CleanLineDivergence => 7,
            InvariantKind::PrivateResidency => 8,
        }
    }

    fn from_tag(tag: u8) -> Result<InvariantKind, CodecError> {
        Ok(match tag {
            0 => InvariantKind::Swmr,
            1 => InvariantKind::DirAgreement,
            2 => InvariantKind::WardInRegion,
            3 => InvariantKind::MaskMergeability,
            4 => InvariantKind::WardEntrySync,
            5 => InvariantKind::DirtyConservation,
            6 => InvariantKind::SyncResidue,
            7 => InvariantKind::CleanLineDivergence,
            8 => InvariantKind::PrivateResidency,
            t => {
                return Err(CodecError::BadTag {
                    what: "invariant kind",
                    tag: t as u64,
                })
            }
        })
    }
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InvariantKind::Swmr => "single-writer/multiple-reader",
            InvariantKind::DirAgreement => "directory-cache agreement",
            InvariantKind::WardInRegion => "W-state inside active region",
            InvariantKind::MaskMergeability => "write-mask mergeability",
            InvariantKind::WardEntrySync => "W-entry sync",
            InvariantKind::DirtyConservation => "dirty-byte conservation",
            InvariantKind::SyncResidue => "sync-point residue",
            InvariantKind::CleanLineDivergence => "clean-line/memory agreement",
            InvariantKind::PrivateResidency => "no-private-caching",
        };
        f.write_str(name)
    }
}

/// One detected invariant violation: which rule broke, where, and the
/// block's recent directory history leading up to it.
#[derive(Clone, Debug)]
pub struct InvariantViolation {
    /// The broken invariant.
    pub kind: InvariantKind,
    /// The block the violation was detected on.
    pub block: BlockAddr,
    /// The core most directly implicated, when one exists.
    pub core: Option<CoreId>,
    /// Human-readable specifics (states, masks, byte offsets).
    pub detail: String,
    /// The block's recent directory transitions, oldest first, ending in
    /// the state the violation was detected under.
    pub history: Vec<DirKind>,
    /// Index of the directory transaction after which the violation was
    /// detected (monotonic per system).
    pub transaction: u64,
}

impl InvariantViolation {
    /// Serialize this violation for a checkpoint or campaign record.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u8(self.kind.tag());
        enc.put_u64(self.block.0);
        match self.core {
            Some(c) => {
                enc.put_bool(true);
                enc.put_u64(c as u64);
            }
            None => enc.put_bool(false),
        }
        enc.put_str(&self.detail);
        enc.put_usize(self.history.len());
        for k in &self.history {
            enc.put_u8(k.tag());
        }
        enc.put_u64(self.transaction);
    }

    /// Decode a violation serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<InvariantViolation, CodecError> {
        let kind = InvariantKind::from_tag(dec.take_u8()?)?;
        let block = BlockAddr(dec.take_u64()?);
        let core = if dec.take_bool()? {
            Some(dec.take_usize()?)
        } else {
            None
        };
        let detail = dec.take_str()?;
        let nh = dec.take_count(1)?;
        let mut history = Vec::with_capacity(nh);
        for _ in 0..nh {
            history.push(DirKind::from_tag(dec.take_u8()?)?);
        }
        let transaction = dec.take_u64()?;
        Ok(InvariantViolation {
            kind,
            block,
            core,
            detail,
            history,
            transaction,
        })
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violated at block {:?} (txn {}): {}",
            self.kind, self.block, self.transaction, self.detail
        )?;
        if let Some(core) = self.core {
            write!(f, " [core {core}]")?;
        }
        write!(f, " history: {:?}", self.history)
    }
}

impl std::error::Error for InvariantViolation {}

/// A deliberate, seeded protocol defect for fault-injection campaigns.
///
/// Mutations weaken the engine in ways that silently corrupt data; they
/// exist so tests can prove the [`InvariantChecker`] detects each one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolMutation {
    /// Skip the dirty-owner snapshot when a block enters the W state
    /// (pre-region writes can then be served stale / lost).
    SkipWardEntrySync,
    /// Drop dirty sectors instead of merging them during reconciliation.
    SkipReconciliationWriteback,
    /// Merge reconciled copies at a coarser sector granularity than the
    /// writes were recorded at, clobbering neighbouring cores' bytes.
    CoarseSectorMerge {
        /// The (incorrect) merge granularity in bytes; must be a power of
        /// two in `2..=64`.
        sector_bytes: u64,
    },
    /// Self-invalidation: keep clean copies resident across a sync point
    /// (dirty sectors still self-downgrade). Later loads can then read
    /// stale data that a sync was supposed to discard.
    SkipSelfInvalidate,
    /// Self-invalidation: drop private lines at a sync point *without*
    /// merging their dirty sectors into the LLC — writes that a sync was
    /// supposed to publish are silently lost.
    SkipSelfDowngrade,
    /// Serve a ward request without registering the requester in the W
    /// copy set; the directory then under-counts copies and reconciliation
    /// misses that core's writes.
    SkipWardRegistration,
    /// DLS: fill a private (clean) copy on a read even though the protocol
    /// forbids private caching — later reads hit it and go stale.
    DlsCachePrivate,
    /// DLS: buffer a store in a private dirty line instead of writing the
    /// home LLC slice — the one place a DLS write must land.
    DlsDirtyPrivate,
    /// DLS: apply a store's bytes to the LLC line without setting its
    /// dirty bit, so an eviction silently discards the write.
    DlsSkipLlcDirty,
}

/// The set of active mutations inside a [`crate::CoherenceSystem`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct MutationSet {
    pub(crate) skip_ward_entry_sync: bool,
    pub(crate) skip_recon_writeback: bool,
    /// `None` = correct byte-granularity merge.
    pub(crate) coarse_merge_sector: Option<u64>,
    pub(crate) skip_self_invalidate: bool,
    pub(crate) skip_self_downgrade: bool,
    pub(crate) skip_ward_registration: bool,
    pub(crate) dls_cache_private: bool,
    pub(crate) dls_dirty_private: bool,
    pub(crate) dls_skip_llc_dirty: bool,
}

impl MutationSet {
    pub(crate) fn apply(&mut self, m: ProtocolMutation) {
        match m {
            ProtocolMutation::SkipWardEntrySync => self.skip_ward_entry_sync = true,
            ProtocolMutation::SkipReconciliationWriteback => self.skip_recon_writeback = true,
            ProtocolMutation::CoarseSectorMerge { sector_bytes } => {
                assert!(
                    sector_bytes.is_power_of_two() && (2..=64).contains(&sector_bytes),
                    "coarse merge sector must be a power of two in 2..=64, got {sector_bytes}"
                );
                self.coarse_merge_sector = Some(sector_bytes);
            }
            ProtocolMutation::SkipSelfInvalidate => self.skip_self_invalidate = true,
            ProtocolMutation::SkipSelfDowngrade => self.skip_self_downgrade = true,
            ProtocolMutation::SkipWardRegistration => self.skip_ward_registration = true,
            ProtocolMutation::DlsCachePrivate => self.dls_cache_private = true,
            ProtocolMutation::DlsDirtyPrivate => self.dls_dirty_private = true,
            ProtocolMutation::DlsSkipLlcDirty => self.dls_skip_llc_dirty = true,
        }
    }

    pub(crate) fn any(&self) -> bool {
        self.skip_ward_entry_sync
            || self.skip_recon_writeback
            || self.coarse_merge_sector.is_some()
            || self.skip_self_invalidate
            || self.skip_self_downgrade
            || self.skip_ward_registration
            || self.dls_cache_private
            || self.dls_dirty_private
            || self.dls_skip_llc_dirty
    }
}

/// Accumulated checker activity, for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckerReport {
    /// Directory transactions observed.
    pub transactions: u64,
    /// Per-block state validations performed.
    pub blocks_checked: u64,
    /// Reconciliations audited for dirty-byte conservation.
    pub reconciliations_audited: u64,
    /// Violations recorded (and still held).
    pub violations: usize,
}

/// The checker's state, owned by a [`crate::CoherenceSystem`].
///
/// All checking logic lives in the system (it needs the caches); this type
/// holds the bookkeeping: the pending transaction queue fed by `note_dir`,
/// the last known full directory state per block, a bounded transition
/// history for reports, and the violations found so far.
#[derive(Clone, Debug, Default)]
pub struct InvariantChecker {
    /// Directory transitions recorded since the last end-of-operation check.
    pub(crate) pending: Vec<(BlockAddr, DirState)>,
    /// Last full directory state seen per block.
    pub(crate) prev: HashMap<BlockAddr, DirState>,
    /// Bounded recent-transition ring per block.
    history: HashMap<BlockAddr, VecDeque<DirKind>>,
    /// Violations found, in detection order.
    pub(crate) violations: Vec<InvariantViolation>,
    /// Monotonic count of directory transactions observed.
    pub(crate) transactions: u64,
    /// Per-block validations performed.
    pub(crate) blocks_checked: u64,
    /// Reconciliations audited.
    pub(crate) reconciliations_audited: u64,
}

impl InvariantChecker {
    /// A fresh checker with no observations.
    pub fn new() -> InvariantChecker {
        InvariantChecker::default()
    }

    /// Record one transition into the bounded per-block history.
    pub(crate) fn note_history(&mut self, block: BlockAddr, kind: DirKind) {
        let ring = self.history.entry(block).or_default();
        if ring.back() != Some(&kind) {
            if ring.len() == HISTORY_DEPTH {
                ring.pop_front();
            }
            ring.push_back(kind);
        }
    }

    /// The recent transition history of a block, oldest first.
    pub(crate) fn history_of(&self, block: BlockAddr) -> Vec<DirKind> {
        self.history
            .get(&block)
            .map(|r| r.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Record a violation.
    pub(crate) fn report(
        &mut self,
        kind: InvariantKind,
        block: BlockAddr,
        core: Option<CoreId>,
        detail: String,
    ) {
        let history = self.history_of(block);
        self.violations.push(InvariantViolation {
            kind,
            block,
            core,
            detail,
            history,
            transaction: self.transactions,
        });
    }

    /// Forget per-block expectations (after a whole-system flush empties
    /// every cache out from under the checker).
    pub(crate) fn reset_state(&mut self) {
        self.pending.clear();
        self.prev.clear();
    }

    /// Activity summary.
    pub fn summary(&self) -> CheckerReport {
        CheckerReport {
            transactions: self.transactions,
            blocks_checked: self.blocks_checked,
            reconciliations_audited: self.reconciliations_audited,
            violations: self.violations.len(),
        }
    }

    /// Serialize the checker's complete bookkeeping for a checkpoint. Maps
    /// are written sorted by block so equal checkers produce identical
    /// bytes. (`pending` is drained at the end of every public coherence
    /// operation, so at instruction boundaries it is normally empty — but it
    /// is serialized regardless for exactness.)
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.transactions);
        enc.put_u64(self.blocks_checked);
        enc.put_u64(self.reconciliations_audited);
        enc.put_usize(self.pending.len());
        for (block, dir) in &self.pending {
            enc.put_u64(block.0);
            dir.encode_into(enc);
        }
        let mut prev: Vec<(&BlockAddr, &DirState)> = self.prev.iter().collect();
        prev.sort_by_key(|(b, _)| **b);
        enc.put_usize(prev.len());
        for (block, dir) in prev {
            enc.put_u64(block.0);
            dir.encode_into(enc);
        }
        let mut history: Vec<(&BlockAddr, &VecDeque<DirKind>)> = self.history.iter().collect();
        history.sort_by_key(|(b, _)| **b);
        enc.put_usize(history.len());
        for (block, ring) in history {
            enc.put_u64(block.0);
            enc.put_usize(ring.len());
            for k in ring {
                enc.put_u8(k.tag());
            }
        }
        enc.put_usize(self.violations.len());
        for v in &self.violations {
            v.encode_into(enc);
        }
    }

    /// Decode a checker serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<InvariantChecker, CodecError> {
        let transactions = dec.take_u64()?;
        let blocks_checked = dec.take_u64()?;
        let reconciliations_audited = dec.take_u64()?;
        let np = dec.take_count(17)?;
        let mut pending = Vec::with_capacity(np);
        for _ in 0..np {
            let block = BlockAddr(dec.take_u64()?);
            pending.push((block, DirState::decode_from(dec)?));
        }
        let npr = dec.take_count(17)?;
        let mut prev = HashMap::with_capacity(npr);
        for _ in 0..npr {
            let block = BlockAddr(dec.take_u64()?);
            prev.insert(block, DirState::decode_from(dec)?);
        }
        let nh = dec.take_count(16)?;
        let mut history = HashMap::with_capacity(nh);
        for _ in 0..nh {
            let block = BlockAddr(dec.take_u64()?);
            let n = dec.take_count(1)?;
            if n > HISTORY_DEPTH {
                return Err(CodecError::Invalid {
                    what: "checker history ring",
                    detail: format!("{n} entries exceed depth {HISTORY_DEPTH}"),
                });
            }
            let mut ring = VecDeque::with_capacity(n);
            for _ in 0..n {
                ring.push_back(DirKind::from_tag(dec.take_u8()?)?);
            }
            history.insert(block, ring);
        }
        let nv = dec.take_count(8)?;
        let mut violations = Vec::with_capacity(nv);
        for _ in 0..nv {
            violations.push(InvariantViolation::decode_from(dec)?);
        }
        Ok(InvariantChecker {
            pending,
            prev,
            history,
            violations,
            transactions,
            blocks_checked,
            reconciliations_audited,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_is_bounded_and_deduplicated() {
        let mut c = InvariantChecker::new();
        let b = BlockAddr(7);
        for _ in 0..3 {
            c.note_history(b, DirKind::Shared);
        }
        assert_eq!(c.history_of(b), vec![DirKind::Shared]);
        for i in 0..(2 * HISTORY_DEPTH) {
            let k = if i % 2 == 0 {
                DirKind::Owned
            } else {
                DirKind::Ward
            };
            c.note_history(b, k);
        }
        assert_eq!(c.history_of(b).len(), HISTORY_DEPTH);
    }

    #[test]
    fn violation_display_names_block_and_invariant() {
        let mut c = InvariantChecker::new();
        c.note_history(BlockAddr(3), DirKind::Ward);
        c.report(
            InvariantKind::WardInRegion,
            BlockAddr(3),
            Some(1),
            "no active region covers the block".into(),
        );
        let v = &c.violations[0];
        let s = v.to_string();
        assert!(s.contains("W-state inside active region"), "{s}");
        assert!(s.contains("BlockAddr(3)") || s.contains("block"), "{s}");
        assert!(s.contains("Ward"), "{s}");
        assert_eq!(c.summary().violations, 1);
    }

    #[test]
    fn mutation_set_applies() {
        let mut m = MutationSet::default();
        assert!(!m.any());
        m.apply(ProtocolMutation::SkipWardEntrySync);
        m.apply(ProtocolMutation::CoarseSectorMerge { sector_bytes: 8 });
        assert!(m.skip_ward_entry_sync);
        assert_eq!(m.coarse_merge_sector, Some(8));
        assert!(m.any());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn coarse_merge_rejects_bad_granularity() {
        MutationSet::default().apply(ProtocolMutation::CoarseSectorMerge { sector_bytes: 3 });
    }
}
