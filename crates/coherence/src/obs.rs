//! Typed protocol events emitted by the coherence engine.
//!
//! Every directory transaction — and nothing on the private-cache hit path —
//! can emit one [`ProtocolEvent`] describing what the protocol did: which
//! request arrived, what directory state it found, whether the W state served
//! it, what a reconciliation merged. The events are the raw material for the
//! observability layer in `warden-sim` (cycle-stamped timelines, per-epoch
//! summaries, Perfetto export); the coherence crate itself only defines the
//! vocabulary and a checkpoint codec for it.
//!
//! Emission is opt-in ([`crate::CoherenceSystem::enable_obs`]) and costs one
//! `Option` check per directory transaction when disabled — the L1/L2 hit
//! fast path never consults it.

use crate::system::DirKind;
use crate::topo::CoreId;
use warden_mem::codec::{CodecError, Decoder, Encoder};
use warden_mem::{Addr, BlockAddr};

/// One observable protocol action, in directory order.
///
/// Events carry no timestamps: the coherence engine has no clock. The
/// simulation engine drains the buffer after every access and stamps each
/// event with the issuing core's cycle counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// A read miss reached the directory.
    GetS {
        /// The requesting core.
        core: CoreId,
        /// The target block.
        block: BlockAddr,
        /// The directory state the request found.
        dir: DirKind,
        /// Whether the W state served it (a WARD-region hit).
        ward: bool,
    },
    /// A write miss or upgrade reached the directory.
    GetM {
        /// The requesting core.
        core: CoreId,
        /// The target block.
        block: BlockAddr,
        /// The directory state the request found.
        dir: DirKind,
        /// Whether the W state admitted it without invalidations.
        ward: bool,
        /// Whether this was a coherent S→M in-place upgrade.
        upgrade: bool,
    },
    /// A dirty owner's written sectors were snapshotted into the LLC as the
    /// block entered the W state (the sound-entry intervention).
    WardEntrySync {
        /// The block entering W.
        block: BlockAddr,
        /// The dirty owner that was snapshotted.
        owner: CoreId,
    },
    /// An atomic RMW hit a W block and forced a single-block reconciliation
    /// (the coherent escape).
    RmwEscape {
        /// The core issuing the atomic.
        core: CoreId,
        /// The reconciled block.
        block: BlockAddr,
    },
    /// One block was reconciled (write-mask merge at the LLC).
    Reconcile {
        /// The reconciled block.
        block: BlockAddr,
        /// How many private copies existed.
        holders: u32,
        /// Copies whose dirty sectors merged into the LLC.
        writebacks: u32,
        /// Clean copies dropped without data movement.
        drops: u32,
    },
    /// An Add-Region instruction was accepted.
    RegionAdd {
        /// The region id the store assigned.
        id: u64,
        /// Inclusive page-aligned start address.
        start: Addr,
        /// Exclusive page-aligned end address.
        end: Addr,
    },
    /// An Add-Region instruction overflowed the region store (the range
    /// falls back to baseline coherence).
    RegionOverflow {
        /// Inclusive page-aligned start address.
        start: Addr,
        /// Exclusive page-aligned end address.
        end: Addr,
    },
    /// A Remove-Region instruction completed.
    RegionRemove {
        /// The removed region's id.
        id: u64,
        /// Dirty blocks the reconciliation walk visited.
        blocks: u64,
    },
    /// A private L2 victim left the hierarchy.
    PrivEviction {
        /// The evicting core.
        core: CoreId,
        /// The victim block.
        block: BlockAddr,
        /// Whether dirty data travelled to the LLC.
        writeback: bool,
    },
    /// An inclusive LLC victim was evicted.
    LlcEviction {
        /// The victim block.
        block: BlockAddr,
        /// Whether the line was dirty and written to memory.
        writeback: bool,
    },
}

/// A protocol-specific classification of a [`ProtocolEvent`], assigned by
/// [`crate::Protocol::classify`]. The same wire event classifies
/// differently under different protocols: a ward-served GetS is WARD-region
/// machinery under WARDen but the ordinary demand path under
/// self-invalidation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventClass {
    /// Ordinary demand traffic (misses, upgrades).
    Demand,
    /// WARD-state machinery (ward serves, entry syncs, reconciliations).
    Ward,
    /// Sync-point machinery (self-downgrade/self-invalidate flushes,
    /// atomics escaping to coherence).
    Sync,
    /// Region-instruction bookkeeping.
    Region,
    /// Capacity evictions at any level.
    Eviction,
}

impl EventClass {
    /// Short stable name (metrics counters, report rows).
    pub fn name(self) -> &'static str {
        match self {
            EventClass::Demand => "demand",
            EventClass::Ward => "ward",
            EventClass::Sync => "sync",
            EventClass::Region => "region",
            EventClass::Eviction => "eviction",
        }
    }
}

impl ProtocolEvent {
    /// Short stable name, used as the Perfetto event name and in summaries.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolEvent::GetS { ward: true, .. } => "GetS.ward",
            ProtocolEvent::GetS { .. } => "GetS",
            ProtocolEvent::GetM { ward: true, .. } => "GetM.ward",
            ProtocolEvent::GetM { upgrade: true, .. } => "GetM.upgrade",
            ProtocolEvent::GetM { .. } => "GetM",
            ProtocolEvent::WardEntrySync { .. } => "WardEntrySync",
            ProtocolEvent::RmwEscape { .. } => "RmwEscape",
            ProtocolEvent::Reconcile { .. } => "Reconcile",
            ProtocolEvent::RegionAdd { .. } => "RegionAdd",
            ProtocolEvent::RegionOverflow { .. } => "RegionOverflow",
            ProtocolEvent::RegionRemove { .. } => "RegionRemove",
            ProtocolEvent::PrivEviction { .. } => "PrivEviction",
            ProtocolEvent::LlcEviction { .. } => "LlcEviction",
        }
    }

    /// The core the event is attributed to, if it has one (region and LLC
    /// events are directory-side and carry none).
    pub fn core(&self) -> Option<CoreId> {
        match *self {
            ProtocolEvent::GetS { core, .. }
            | ProtocolEvent::GetM { core, .. }
            | ProtocolEvent::RmwEscape { core, .. }
            | ProtocolEvent::PrivEviction { core, .. } => Some(core),
            ProtocolEvent::WardEntrySync { owner, .. } => Some(owner),
            _ => None,
        }
    }

    /// Serialize one event (tag byte + fields).
    pub fn encode_into(&self, enc: &mut Encoder) {
        match *self {
            ProtocolEvent::GetS {
                core,
                block,
                dir,
                ward,
            } => {
                enc.put_u8(0);
                enc.put_usize(core);
                enc.put_u64(block.0);
                enc.put_u8(dir.tag());
                enc.put_bool(ward);
            }
            ProtocolEvent::GetM {
                core,
                block,
                dir,
                ward,
                upgrade,
            } => {
                enc.put_u8(1);
                enc.put_usize(core);
                enc.put_u64(block.0);
                enc.put_u8(dir.tag());
                enc.put_bool(ward);
                enc.put_bool(upgrade);
            }
            ProtocolEvent::WardEntrySync { block, owner } => {
                enc.put_u8(2);
                enc.put_u64(block.0);
                enc.put_usize(owner);
            }
            ProtocolEvent::RmwEscape { core, block } => {
                enc.put_u8(3);
                enc.put_usize(core);
                enc.put_u64(block.0);
            }
            ProtocolEvent::Reconcile {
                block,
                holders,
                writebacks,
                drops,
            } => {
                enc.put_u8(4);
                enc.put_u64(block.0);
                enc.put_u32(holders);
                enc.put_u32(writebacks);
                enc.put_u32(drops);
            }
            ProtocolEvent::RegionAdd { id, start, end } => {
                enc.put_u8(5);
                enc.put_u64(id);
                enc.put_u64(start.0);
                enc.put_u64(end.0);
            }
            ProtocolEvent::RegionOverflow { start, end } => {
                enc.put_u8(6);
                enc.put_u64(start.0);
                enc.put_u64(end.0);
            }
            ProtocolEvent::RegionRemove { id, blocks } => {
                enc.put_u8(7);
                enc.put_u64(id);
                enc.put_u64(blocks);
            }
            ProtocolEvent::PrivEviction {
                core,
                block,
                writeback,
            } => {
                enc.put_u8(8);
                enc.put_usize(core);
                enc.put_u64(block.0);
                enc.put_bool(writeback);
            }
            ProtocolEvent::LlcEviction { block, writeback } => {
                enc.put_u8(9);
                enc.put_u64(block.0);
                enc.put_bool(writeback);
            }
        }
    }

    /// Decode one event serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<ProtocolEvent, CodecError> {
        Ok(match dec.take_u8()? {
            0 => ProtocolEvent::GetS {
                core: dec.take_usize()?,
                block: BlockAddr(dec.take_u64()?),
                dir: DirKind::from_tag(dec.take_u8()?)?,
                ward: dec.take_bool()?,
            },
            1 => ProtocolEvent::GetM {
                core: dec.take_usize()?,
                block: BlockAddr(dec.take_u64()?),
                dir: DirKind::from_tag(dec.take_u8()?)?,
                ward: dec.take_bool()?,
                upgrade: dec.take_bool()?,
            },
            2 => ProtocolEvent::WardEntrySync {
                block: BlockAddr(dec.take_u64()?),
                owner: dec.take_usize()?,
            },
            3 => ProtocolEvent::RmwEscape {
                core: dec.take_usize()?,
                block: BlockAddr(dec.take_u64()?),
            },
            4 => ProtocolEvent::Reconcile {
                block: BlockAddr(dec.take_u64()?),
                holders: dec.take_u32()?,
                writebacks: dec.take_u32()?,
                drops: dec.take_u32()?,
            },
            5 => ProtocolEvent::RegionAdd {
                id: dec.take_u64()?,
                start: Addr(dec.take_u64()?),
                end: Addr(dec.take_u64()?),
            },
            6 => ProtocolEvent::RegionOverflow {
                start: Addr(dec.take_u64()?),
                end: Addr(dec.take_u64()?),
            },
            7 => ProtocolEvent::RegionRemove {
                id: dec.take_u64()?,
                blocks: dec.take_u64()?,
            },
            8 => ProtocolEvent::PrivEviction {
                core: dec.take_usize()?,
                block: BlockAddr(dec.take_u64()?),
                writeback: dec.take_bool()?,
            },
            9 => ProtocolEvent::LlcEviction {
                block: BlockAddr(dec.take_u64()?),
                writeback: dec.take_bool()?,
            },
            tag => {
                return Err(CodecError::BadTag {
                    what: "protocol event",
                    tag: tag as u64,
                })
            }
        })
    }
}

/// Serialize a whole event buffer (length-prefixed).
pub fn encode_events(events: &[ProtocolEvent], enc: &mut Encoder) {
    enc.put_usize(events.len());
    for ev in events {
        ev.encode_into(enc);
    }
}

/// Decode a buffer serialized by [`encode_events`].
pub fn decode_events(dec: &mut Decoder<'_>) -> Result<Vec<ProtocolEvent>, CodecError> {
    // Smallest event is a tag plus one varint-free field pair; 2 bytes is a
    // safe floor that still bounds a hostile length prefix.
    let n = dec.take_count(2)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(ProtocolEvent::decode_from(dec)?);
    }
    Ok(out)
}

/// A consumer of protocol events. The engine's buffer is the canonical
/// implementation; tests use it to script expectations.
pub trait EventSink {
    /// Accept one event.
    fn accept(&mut self, ev: ProtocolEvent);
}

impl EventSink for Vec<ProtocolEvent> {
    fn accept(&mut self, ev: ProtocolEvent) {
        self.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ProtocolEvent> {
        vec![
            ProtocolEvent::GetS {
                core: 3,
                block: BlockAddr(42),
                dir: DirKind::Shared,
                ward: false,
            },
            ProtocolEvent::GetM {
                core: 1,
                block: BlockAddr(7),
                dir: DirKind::Owned,
                ward: true,
                upgrade: false,
            },
            ProtocolEvent::WardEntrySync {
                block: BlockAddr(9),
                owner: 2,
            },
            ProtocolEvent::RmwEscape {
                core: 0,
                block: BlockAddr(1),
            },
            ProtocolEvent::Reconcile {
                block: BlockAddr(5),
                holders: 4,
                writebacks: 3,
                drops: 1,
            },
            ProtocolEvent::RegionAdd {
                id: 11,
                start: Addr(0x1000),
                end: Addr(0x3000),
            },
            ProtocolEvent::RegionOverflow {
                start: Addr(0x4000),
                end: Addr(0x5000),
            },
            ProtocolEvent::RegionRemove { id: 11, blocks: 17 },
            ProtocolEvent::PrivEviction {
                core: 5,
                block: BlockAddr(99),
                writeback: true,
            },
            ProtocolEvent::LlcEviction {
                block: BlockAddr(100),
                writeback: false,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        let events = samples();
        let mut enc = Encoder::new();
        encode_events(&events, &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = decode_events(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn every_prefix_truncation_is_a_typed_error() {
        let events = samples();
        let mut enc = Encoder::new();
        encode_events(&events, &mut enc);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            let r = decode_events(&mut dec).and_then(|v| dec.finish().map(|()| v));
            assert!(r.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut enc = Encoder::new();
        enc.put_u8(250);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        match ProtocolEvent::decode_from(&mut dec) {
            Err(CodecError::BadTag { what, tag }) => {
                assert_eq!(what, "protocol event");
                assert_eq!(tag, 250);
            }
            other => panic!("expected BadTag, got {other:?}"),
        }
    }

    #[test]
    fn names_and_cores_are_stable() {
        for ev in samples() {
            assert!(!ev.name().is_empty());
        }
        let ev = ProtocolEvent::GetS {
            core: 3,
            block: BlockAddr(42),
            dir: DirKind::Uncached,
            ward: true,
        };
        assert_eq!(ev.name(), "GetS.ward");
        assert_eq!(ev.core(), Some(3));
        assert_eq!(
            ProtocolEvent::LlcEviction {
                block: BlockAddr(1),
                writeback: true
            }
            .core(),
            None
        );
    }

    #[test]
    fn vec_is_an_event_sink() {
        let mut sink: Vec<ProtocolEvent> = Vec::new();
        sink.accept(ProtocolEvent::RmwEscape {
            core: 1,
            block: BlockAddr(2),
        });
        assert_eq!(sink.len(), 1);
    }
}
