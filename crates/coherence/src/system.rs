//! The coherence engine: private caches, per-socket LLC slices with a
//! co-located directory, the baseline MESI protocol, and the WARDen
//! extension (W state + reconciliation).
//!
//! The engine is *access-atomic*: each demand access runs to completion and
//! returns the cycles it would take; the timing simulator interleaves cores
//! between accesses. Real data bytes travel with every block so that tests
//! can compare final memory images across protocols.

use crate::check::{
    CheckerReport, InvariantChecker, InvariantKind, InvariantViolation, MutationSet,
    ProtocolMutation,
};
use crate::error::CoherenceError;
use crate::obs::{decode_events, encode_events, EventClass, ProtocolEvent};
use crate::region::{AddRegion, RegionId, RegionStore};
use crate::state::{DirState, LlcLine, PrivLine, PrivState, ProtocolId};
use crate::stats::CoherenceStats;
use crate::topo::{CoreId, LatencyModel, SocketId, Topology};
use warden_mem::{
    Addr, BlockAddr, BlockData, CacheArray, CacheGeometry, Memory, PageAddr, Slot, WriteMask,
    BLOCK_SIZE, PAGE_SIZE,
};

/// Cache geometries for the simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Private L1 data cache.
    pub l1: CacheGeometry,
    /// Private L2.
    pub l2: CacheGeometry,
    /// Shared LLC, one slice per socket.
    pub llc_slice: CacheGeometry,
    /// Simultaneous WARD regions the directory can track (paper: 1024).
    pub region_capacity: usize,
    /// Write-mask granularity in bytes (paper §6.1 uses byte sectoring, 1,
    /// "to match the smallest granularity in software"). Coarser sectors
    /// (8 = word, 64 = whole block) are cheaper in area but turn adjacent
    /// sub-sector writes by different cores into true-sharing conflicts —
    /// the ablation benches demonstrate the resulting data loss.
    pub sector_bytes: u64,
}

impl CacheConfig {
    /// The paper's Table 2 configuration: 32 KiB 8-way L1, 256 KiB 8-way L2,
    /// 2.5 MiB/core 20-way LLC.
    pub fn paper(cores_per_socket: usize) -> CacheConfig {
        CacheConfig {
            l1: CacheGeometry::new(32 * 1024, 8),
            l2: CacheGeometry::new(256 * 1024, 8),
            llc_slice: CacheGeometry::new(2_621_440 * cores_per_socket as u64, 20),
            region_capacity: 1024,
            sector_bytes: 1,
        }
    }

    /// A deliberately tiny configuration for unit tests that want to force
    /// evictions quickly.
    pub fn tiny() -> CacheConfig {
        CacheConfig {
            l1: CacheGeometry::new(512, 2),  // 8 blocks
            l2: CacheGeometry::new(1024, 2), // 16 blocks
            llc_slice: CacheGeometry::new(4096, 4),
            region_capacity: 16,
            sector_bytes: 1,
        }
    }

    /// Check the configuration's internal consistency: the inclusive L1 must
    /// fit inside the L2, the directory must track at least one region, and
    /// the sector granularity must be a power of two no larger than a block.
    /// (Geometry well-formedness — non-zero ways and sets, whole-set sizes —
    /// is enforced by [`CacheGeometry::new`] itself.)
    pub fn validate(&self) -> Result<(), CoherenceError> {
        if self.l1.num_blocks() > self.l2.num_blocks() {
            return Err(CoherenceError::BadConfig(format!(
                "inclusive L1 ({} blocks) larger than its L2 ({} blocks)",
                self.l1.num_blocks(),
                self.l2.num_blocks()
            )));
        }
        if self.region_capacity == 0 {
            return Err(CoherenceError::BadConfig(
                "region capacity must be at least 1".into(),
            ));
        }
        if self.sector_bytes == 0
            || !self.sector_bytes.is_power_of_two()
            || self.sector_bytes > BLOCK_SIZE
        {
            return Err(CoherenceError::BadConfig(format!(
                "sector granularity {} must be a power of two in 1..={BLOCK_SIZE}",
                self.sector_bytes
            )));
        }
        Ok(())
    }
}

/// The kind of a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load; blocks the core for the returned latency.
    Load,
    /// A store; retires through the store buffer.
    Store,
    /// An atomic read-modify-write; blocks like a load and is always
    /// performed coherently, even inside WARD regions (see
    /// [`CoherenceSystem::rmw`]).
    Rmw,
}

/// Which private-hierarchy level served a lane-local access.
///
/// This is the boundary of the engine's lane partition (see
/// `warden-sim`'s `lanes` module): accesses that resolve entirely inside
/// one core's private hierarchy are *lane-local* — they touch no
/// directory set, no LLC slice and no other core's cache, so event lanes
/// may order them freely between the directory transactions the merge
/// serializes. Everything that falls through to the directory is a
/// *merge-mediated* transaction and executes in canonical
/// `(clock, core, seq)` order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalHit {
    /// Served by the L1 presence filter at `lat.l1`.
    L1,
    /// Served by the private L2 at `lat.l2` (the L1 is refilled).
    L2,
}

/// One core's private cache hierarchy. The L1 is a presence/recency filter
/// over the authoritative L2 lines (inclusive), which keeps a single copy of
/// coherence state per core while still classifying L1 vs L2 hit latency.
#[derive(Clone, Debug)]
struct PrivateCache {
    l1: CacheArray<()>,
    l2: CacheArray<PrivLine>,
}

impl PrivateCache {
    fn new(cfg: &CacheConfig) -> PrivateCache {
        PrivateCache {
            l1: CacheArray::new(cfg.l1),
            l2: CacheArray::new(cfg.l2),
        }
    }

    /// How many cache levels currently hold `block` (for per-cache
    /// invalidation/downgrade counting).
    fn levels(&self, block: BlockAddr) -> u64 {
        match (self.l2.peek(block).is_some(), self.l1.peek(block).is_some()) {
            (true, true) => 2,
            (true, false) => 1,
            (false, _) => 0,
        }
    }

    /// The lane-local half of a load: serve `block` from the private
    /// hierarchy if present, refilling the L1 on an L2 hit. Returns `None`
    /// — with the hierarchy untouched — when the access needs a directory
    /// transaction.
    fn try_local_load(&mut self, block: BlockAddr) -> Option<LocalHit> {
        if self.l1.get(block).is_some() {
            debug_assert!(self.l2.peek(block).is_some());
            return Some(LocalHit::L1);
        }
        if self.l2.get(block).is_some() {
            self.l1.insert(block, ());
            return Some(LocalHit::L2);
        }
        None
    }

    /// The lane-local half of a store: apply `val` in place when the L2
    /// holds `block` in a writable (M/E/W) state, marking the written
    /// sectors dirty and promoting the line in the L1. Returns `None` when
    /// the write needs a directory transaction (miss, or a read-only copy
    /// needing an upgrade — the latter still refreshes the line's L2
    /// recency, exactly as the historical inline path did).
    fn try_local_store(
        &mut self,
        block: BlockAddr,
        offset: u64,
        val: WriteVal<'_>,
        sector_bytes: u64,
    ) -> Option<LocalHit> {
        let l1_slot = self.l1.locate(block);
        let line = self.l2.get_mut(block)?;
        if !line.state.writable() {
            return None;
        }
        line.state = PrivState::Modified;
        val.apply(&mut line.data, offset);
        let (ms, ml) = sector_range(sector_bytes, offset, val.len());
        line.mask.set_range(ms, ml);
        if let Some(slot) = l1_slot {
            self.l1.touch(slot); // LRU promote, no rescan
            return Some(LocalHit::L1);
        }
        self.l1.insert(block, ());
        Some(LocalHit::L2)
    }
}

/// The full coherence system for one machine.
///
/// # Example
///
/// ```
/// use warden_coherence::{CacheConfig, CoherenceSystem, LatencyModel, ProtocolId, Topology};
/// use warden_mem::Addr;
///
/// let mut sys = CoherenceSystem::new(
///     Topology::new(1, 2),
///     LatencyModel::xeon_gold_6126(),
///     CacheConfig::paper(2),
///     ProtocolId::Mesi,
/// );
/// let t_miss = sys.load(0, Addr(0x1000), 8);
/// let t_hit = sys.load(0, Addr(0x1000), 8);
/// assert!(t_hit < t_miss);
/// ```
#[derive(Clone, Debug)]
pub struct CoherenceSystem {
    topo: Topology,
    lat: LatencyModel,
    protocol: ProtocolId,
    cores: Vec<PrivateCache>,
    llcs: Vec<CacheArray<LlcLine>>,
    regions: RegionStore,
    memory: Memory,
    stats: CoherenceStats,
    /// Per-page bitmask of blocks whose directory state is Owned or Ward —
    /// the blocks a Remove-Region walk must visit. Keeps reconciliation cost
    /// proportional to dirty blocks rather than region size. Flat-indexed
    /// by page ([`warden_mem::PageMap`]): `note_dir` runs on essentially
    /// every directory transition.
    dir_pages: warden_mem::PageMap<u64>,
    /// Per-core last-page region-lookup cache (the core-side region CAM of
    /// paper §6.2): each entry memoizes "was my last page WARD?" and is
    /// revalidated against the region store's epoch. Derived state — never
    /// serialized, reset on restore.
    region_cache: Vec<RegionCache>,
    /// Reusable page buffer for reconciliation walks (avoids a fresh
    /// allocation per forced walk).
    scratch_pages: Vec<PageAddr>,
    /// Write-mask sector granularity in bytes (see [`CacheConfig`]).
    sector_bytes: u64,
    /// Optional directory-transition recorder (see [`Self::enable_dir_log`]).
    dir_log: Option<Vec<(BlockAddr, DirKind)>>,
    /// Optional invariant checker (see [`Self::enable_checker`]).
    check: Option<InvariantChecker>,
    /// Optional protocol-event buffer (see [`Self::enable_obs`]). Drained by
    /// the simulation engine after every access; directory transactions pay
    /// one `Option` check when disabled, the L1/L2 hit path pays nothing.
    obs: Option<Vec<ProtocolEvent>>,
    /// Injected protocol defects (see [`Self::inject_mutation`]).
    mutations: MutationSet,
}

/// One core's memoized region lookup: valid while `epoch` matches the
/// region store's mutation epoch (store epochs start at 1, so the default
/// entry never validates).
#[derive(Clone, Copy, Debug, Default)]
struct RegionCache {
    epoch: u64,
    page: warden_mem::PageAddr,
    ward: bool,
}

/// The `[start, len)` byte range a write of `len` bytes at `offset` marks in
/// a sectored write mask of granularity `g`.
fn sector_range(g: u64, offset: u64, len: u64) -> (u64, u64) {
    let start = (offset / g) * g;
    let end = ((offset + len).div_ceil(g) * g).min(BLOCK_SIZE);
    (start, end - start)
}

/// The value a write-type access applies once the block is held coherently.
///
/// Public because it is the store payload vocabulary of the
/// [`crate::Protocol`] trait; constructed only inside the crate.
#[derive(Clone, Copy, Debug)]
pub enum WriteVal<'a> {
    /// Store these bytes.
    Bytes(&'a [u8]),
    /// Atomically add `delta` to the `size`-byte little-endian integer in
    /// place (fetch-and-add: the result depends on the value the machine
    /// holds when the atomic executes).
    Add {
        /// The addend.
        delta: u64,
        /// Operand width in bytes (`1..=8`).
        size: u64,
    },
}

impl WriteVal<'_> {
    fn len(&self) -> u64 {
        match self {
            WriteVal::Bytes(b) => b.len() as u64,
            WriteVal::Add { size, .. } => *size,
        }
    }

    fn apply(&self, data: &mut BlockData, offset: u64) {
        match self {
            WriteVal::Bytes(b) => data.write(offset, b),
            WriteVal::Add { delta, size } => {
                let mut bytes = [0u8; 8];
                data.read(offset, &mut bytes[..*size as usize]);
                let cur = u64::from_le_bytes(bytes);
                let new = cur.wrapping_add(*delta).to_le_bytes();
                data.write(offset, &new[..*size as usize]);
            }
        }
    }
}

/// The coarse directory state of a block, as recorded by the transition log
/// (the observable states of the paper's Figure 5 FSA; E and M are both
/// `Owned` at the directory — the split lives in the owner's private cache).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DirKind {
    /// No private copies.
    Uncached,
    /// Clean copies tracked in the sharer set.
    Shared,
    /// A single exclusive owner (E or M privately).
    Owned,
    /// The WARD state.
    Ward,
}

/// Which occurrences of the W directory state a protocol's invariant set
/// accepts (see [`CoherenceSystem::check_block_coherent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WardPolicy {
    /// W-state blocks must lie inside an active WARD region (MESI-family
    /// protocols: W can only appear through the region machinery, so for
    /// them the check also proves W never appears at all).
    InRegion,
    /// The W state is the protocol's ordinary serve state (self-inv).
    Anywhere,
}

impl From<DirState> for DirKind {
    fn from(d: DirState) -> DirKind {
        match d {
            DirState::Uncached => DirKind::Uncached,
            DirState::Shared(_) => DirKind::Shared,
            DirState::Owned(_) => DirKind::Owned,
            DirState::Ward(_) => DirKind::Ward,
        }
    }
}

impl DirKind {
    /// Stable one-byte encoding for checkpoints.
    pub(crate) fn tag(self) -> u8 {
        match self {
            DirKind::Uncached => 0,
            DirKind::Shared => 1,
            DirKind::Owned => 2,
            DirKind::Ward => 3,
        }
    }

    /// Inverse of [`Self::tag`].
    pub(crate) fn from_tag(tag: u8) -> Result<DirKind, warden_mem::codec::CodecError> {
        Ok(match tag {
            0 => DirKind::Uncached,
            1 => DirKind::Shared,
            2 => DirKind::Owned,
            3 => DirKind::Ward,
            t => {
                return Err(warden_mem::codec::CodecError::BadTag {
                    what: "directory kind",
                    tag: t as u64,
                })
            }
        })
    }
}

impl CoherenceSystem {
    /// Build a system with cold caches and zeroed memory.
    pub fn new(
        topo: Topology,
        lat: LatencyModel,
        cfg: CacheConfig,
        protocol: ProtocolId,
    ) -> CoherenceSystem {
        CoherenceSystem {
            topo,
            lat,
            protocol,
            cores: (0..topo.num_cores())
                .map(|_| PrivateCache::new(&cfg))
                .collect(),
            llcs: (0..topo.num_sockets())
                .map(|_| CacheArray::new(cfg.llc_slice))
                .collect(),
            regions: RegionStore::new(cfg.region_capacity),
            memory: Memory::new(),
            stats: CoherenceStats::new(),
            dir_pages: warden_mem::PageMap::new(),
            region_cache: vec![RegionCache::default(); topo.num_cores()],
            scratch_pages: Vec::new(),
            sector_bytes: cfg.sector_bytes,
            dir_log: None,
            check: None,
            obs: None,
            mutations: MutationSet::default(),
        }
    }

    /// Start buffering typed protocol events (see [`ProtocolEvent`]). The
    /// buffer has no timestamps of its own; callers drain it with
    /// [`Self::drain_events`] after each access and stamp the events with
    /// their own clock.
    pub fn enable_obs(&mut self) {
        self.obs = Some(Vec::new());
    }

    /// Whether [`Self::enable_obs`] ran.
    pub fn obs_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Move the buffered protocol events since the last drain into `out`
    /// (appending; `out` is not cleared). No-op when observability is off.
    pub fn drain_events(&mut self, out: &mut Vec<ProtocolEvent>) {
        if let Some(buf) = &mut self.obs {
            out.append(buf);
        }
    }

    /// Push one event onto the buffer, when enabled.
    #[inline]
    fn emit(&mut self, ev: ProtocolEvent) {
        if let Some(buf) = &mut self.obs {
            buf.push(ev);
        }
    }

    /// Start recording every directory-state transition (for the Figure 5
    /// conformance tests). Each entry is `(block, new state)`; repeated
    /// same-state entries are collapsed per block by [`Self::dir_history`].
    pub fn enable_dir_log(&mut self) {
        self.dir_log = Some(Vec::new());
    }

    /// The raw transition log (empty unless [`Self::enable_dir_log`] ran).
    pub fn dir_log(&self) -> &[(BlockAddr, DirKind)] {
        self.dir_log.as_deref().unwrap_or(&[])
    }

    /// The deduplicated state history of one block: the sequence of distinct
    /// directory states it moved through, starting from `Uncached`.
    pub fn dir_history(&self, block: BlockAddr) -> Vec<DirKind> {
        let mut out = vec![DirKind::Uncached];
        for &(b, k) in self.dir_log() {
            if b == block && *out.last().expect("non-empty") != k {
                out.push(k);
            }
        }
        out
    }

    /// Record a block's new directory state in the per-page dirty index
    /// (and the transition log / invariant checker, when enabled).
    fn note_dir(&mut self, block: BlockAddr, dir: DirState) {
        if let Some(log) = &mut self.dir_log {
            log.push((block, DirKind::from(dir)));
        }
        if let Some(chk) = &mut self.check {
            chk.pending.push((block, dir));
        }
        let page = block.page();
        let bit = 1u64 << (block.0 % warden_mem::PageAddr::blocks_per_page());
        match dir {
            DirState::Owned(_) | DirState::Ward(_) => {
                *self.dir_pages.or_insert_with(page, || 0) |= bit;
            }
            DirState::Uncached | DirState::Shared(_) => {
                if let Some(mask) = self.dir_pages.get_mut(page) {
                    *mask &= !bit;
                    if *mask == 0 {
                        self.dir_pages.remove(page);
                    }
                }
            }
        }
    }

    // ----- invariant checking -------------------------------------------

    /// Install the opt-in [`InvariantChecker`]: after every directory
    /// transaction (batched at the end of each access or region
    /// instruction, once transient state has settled) the touched blocks
    /// are re-validated against the protocol's invariants. Violations
    /// accumulate as typed [`InvariantViolation`] values — query them with
    /// [`Self::violations`] / [`Self::take_violations`] — instead of
    /// panicking mid-simulation.
    pub fn enable_checker(&mut self) {
        if self.check.is_none() {
            self.check = Some(InvariantChecker::new());
        }
    }

    /// Whether [`Self::enable_checker`] has run.
    pub fn checker_enabled(&self) -> bool {
        self.check.is_some()
    }

    /// Invariant violations detected so far (empty when the checker is
    /// disabled or the machine is healthy).
    pub fn violations(&self) -> &[InvariantViolation] {
        self.check.as_ref().map_or(&[], |c| c.violations.as_slice())
    }

    /// Drain the recorded violations, leaving the checker running.
    pub fn take_violations(&mut self) -> Vec<InvariantViolation> {
        self.check
            .as_mut()
            .map(|c| std::mem::take(&mut c.violations))
            .unwrap_or_default()
    }

    /// Checker activity counters, when the checker is enabled.
    pub fn checker_summary(&self) -> Option<CheckerReport> {
        self.check.as_ref().map(|c| c.summary())
    }

    /// Inject a deliberate protocol defect (fault-injection campaigns; see
    /// [`ProtocolMutation`]). The defect stays active for the system's
    /// lifetime. Mutated systems corrupt data by design — pair them with
    /// [`Self::enable_checker`] to prove the defect is caught.
    pub fn inject_mutation(&mut self, m: ProtocolMutation) {
        self.mutations.apply(m);
    }

    /// Whether any protocol mutation is active.
    pub fn has_mutations(&self) -> bool {
        self.mutations.any()
    }

    /// Validate and settle all directory transactions recorded since the
    /// last check. Called at the end of every public mutating operation;
    /// a no-op unless the checker is enabled.
    fn run_checks(&mut self) {
        // Fast exit before the `take`: moving the whole checker out and back
        // is a struct-sized memcpy, and this runs after *every* access.
        if self.check.is_none() {
            return;
        }
        let Some(mut chk) = self.check.take() else {
            return;
        };
        if !chk.pending.is_empty() {
            let pending = std::mem::take(&mut chk.pending);
            let mut touched: Vec<BlockAddr> = Vec::with_capacity(pending.len());
            for (block, dir) in pending {
                chk.transactions += 1;
                chk.note_history(block, DirKind::from(dir));
                let prev = chk.prev.insert(block, dir);
                // Edge invariant: entering W from a single owner requires
                // the entry sync to have snapshotted (and cleared) the
                // owner's dirty sectors, or pre-region writes are stale in
                // the LLC merge base.
                if let (Some(DirState::Owned(o)), DirState::Ward(copies)) = (prev, dir) {
                    if copies & DirState::bit(o) != 0 {
                        if let Some(line) = self.cores[o].l2.peek(block) {
                            if !line.mask.is_empty() {
                                chk.report(
                                    InvariantKind::WardEntrySync,
                                    block,
                                    Some(o),
                                    format!(
                                        "entered W from dirty owner {o} without an entry \
                                         sync; un-synced sectors {:?}",
                                        line.mask
                                    ),
                                );
                            }
                        }
                    }
                }
                touched.push(block);
            }
            touched.sort_unstable();
            touched.dedup();
            let imp = self.protocol.imp();
            for block in touched {
                imp.check_block(self, &mut chk, block);
            }
        }
        self.check = Some(chk);
    }

    /// Validate one block's settled state against the coherent (MESI-family
    /// and ward) invariant set: SWMR, directory agreement, the configured
    /// W-state policy, and write-mask mergeability. The shared body behind
    /// [`Protocol::check_block`] for every protocol with private caches.
    pub(crate) fn check_block_coherent(
        &self,
        chk: &mut InvariantChecker,
        block: BlockAddr,
        ward_policy: WardPolicy,
    ) {
        chk.blocks_checked += 1;
        let home = self.topo.home_of(block);
        let line = self.llcs[home].peek(block);
        let dir = line.map(|l| l.dir);
        let holders: Vec<(CoreId, PrivState, WriteMask)> = self
            .cores
            .iter()
            .enumerate()
            .filter_map(|(c, pc)| pc.l2.peek(block).map(|l| (c, l.state, l.mask)))
            .collect();
        let holder_bits = holders
            .iter()
            .fold(0u64, |acc, &(c, ..)| acc | DirState::bit(c));
        let holder_cores: Vec<CoreId> = holders.iter().map(|h| h.0).collect();

        // A copy that is not Modified must be clean relative to its fill.
        for &(c, state, mask) in &holders {
            if state != PrivState::Modified && !mask.is_empty() {
                chk.report(
                    InvariantKind::Swmr,
                    block,
                    Some(c),
                    format!("core {c} holds a {state:?} copy with non-empty write mask {mask:?}"),
                );
            }
        }
        // SWMR outside the W state.
        if !matches!(dir, Some(DirState::Ward(_))) {
            let writable: Vec<CoreId> = holders
                .iter()
                .filter(|h| h.1.writable())
                .map(|h| h.0)
                .collect();
            if writable.len() > 1 {
                chk.report(
                    InvariantKind::Swmr,
                    block,
                    Some(writable[1]),
                    format!("cores {writable:?} hold writable copies simultaneously outside W"),
                );
            }
        }

        match dir {
            None | Some(DirState::Uncached) => {
                if holder_bits != 0 {
                    chk.report(
                        InvariantKind::DirAgreement,
                        block,
                        holder_cores.first().copied(),
                        format!("directory has no sharers but cores {holder_cores:?} hold copies"),
                    );
                }
            }
            Some(DirState::Owned(o)) => {
                if holder_bits != DirState::bit(o) {
                    chk.report(
                        InvariantKind::DirAgreement,
                        block,
                        Some(o),
                        format!("directory owner is {o} but copies live at cores {holder_cores:?}"),
                    );
                } else if let Some(&(_, state, _)) = holders.first() {
                    if !state.writable() {
                        chk.report(
                            InvariantKind::DirAgreement,
                            block,
                            Some(o),
                            format!("registered owner {o} holds a {state:?} copy, expected M/E"),
                        );
                    }
                }
            }
            Some(DirState::Shared(s)) => {
                if holder_bits != s {
                    chk.report(
                        InvariantKind::DirAgreement,
                        block,
                        holder_cores.first().copied(),
                        format!(
                            "directory sharer set {:?} disagrees with actual copies at {:?}",
                            DirState::cores_in(s).collect::<Vec<_>>(),
                            holder_cores
                        ),
                    );
                }
                for &(c, state, _) in &holders {
                    if state != PrivState::Shared {
                        chk.report(
                            InvariantKind::DirAgreement,
                            block,
                            Some(c),
                            format!("sharer {c} holds a {state:?} copy, expected Shared"),
                        );
                    }
                }
            }
            Some(DirState::Ward(copies)) => {
                if holder_bits != copies {
                    chk.report(
                        InvariantKind::DirAgreement,
                        block,
                        holder_cores.first().copied(),
                        format!(
                            "W copy set {:?} disagrees with actual copies at {:?}",
                            DirState::cores_in(copies).collect::<Vec<_>>(),
                            holder_cores
                        ),
                    );
                }
                if ward_policy == WardPolicy::InRegion && !self.regions.contains_block(block) {
                    chk.report(
                        InvariantKind::WardInRegion,
                        block,
                        None,
                        "W-state block lies outside every active WARD region".to_string(),
                    );
                }
                // Mergeability: with no partial merge recorded, every
                // copy's clean bytes must agree with the LLC merge base —
                // otherwise a mask merge would lose data silently.
                let l = line.expect("a directory entry implies an LLC line");
                if !l.ward_partial {
                    for (c, pc) in self.cores.iter().enumerate() {
                        let Some(p) = pc.l2.peek(block) else { continue };
                        if let Some(b) = p
                            .mask
                            .complement()
                            .iter_offsets()
                            .find(|&b| p.data.bytes()[b as usize] != l.data.bytes()[b as usize])
                        {
                            chk.report(
                                InvariantKind::MaskMergeability,
                                block,
                                Some(c),
                                format!(
                                    "core {c}'s clean byte {b} diverged from the LLC merge \
                                     base (copy {:#04x}, base {:#04x}) with no partial merge \
                                     recorded",
                                    p.data.bytes()[b as usize],
                                    l.data.bytes()[b as usize]
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Validate one block under the DLS invariant set: no private copies
    /// anywhere, a directory that never leaves `Uncached`, and clean LLC
    /// lines that agree with main memory (every store must set the dirty
    /// bit at the single coherence point).
    pub(crate) fn check_block_dls(&self, chk: &mut InvariantChecker, block: BlockAddr) {
        chk.blocks_checked += 1;
        for (c, pc) in self.cores.iter().enumerate() {
            if pc.l2.peek(block).is_some() || pc.l1.peek(block).is_some() {
                chk.report(
                    InvariantKind::PrivateResidency,
                    block,
                    Some(c),
                    format!("core {c} holds a private copy under a directoryless protocol"),
                );
            }
        }
        let home = self.topo.home_of(block);
        if let Some(l) = self.llcs[home].peek(block) {
            if l.dir != DirState::Uncached {
                chk.report(
                    InvariantKind::DirAgreement,
                    block,
                    None,
                    format!(
                        "directoryless protocol recorded directory state {:?}",
                        DirKind::from(l.dir)
                    ),
                );
            }
            if !l.dirty {
                let mem = self.memory.read_block(block);
                if let Some(b) =
                    (0..BLOCK_SIZE).find(|&b| l.data.bytes()[b as usize] != mem.bytes()[b as usize])
                {
                    chk.report(
                        InvariantKind::CleanLineDivergence,
                        block,
                        None,
                        format!(
                            "clean LLC line byte {b} diverged from memory (LLC {:#04x}, \
                             memory {:#04x}) — a store skipped the dirty bit",
                            l.data.bytes()[b as usize],
                            mem.bytes()[b as usize]
                        ),
                    );
                }
            }
        }
    }

    /// The id of the protocol this system runs.
    pub fn protocol(&self) -> ProtocolId {
        self.protocol
    }

    /// Whether the running protocol honours region instructions (see
    /// [`Protocol::uses_regions`]); the replay engine consults this instead
    /// of matching on protocol ids.
    pub fn uses_regions(&self) -> bool {
        self.protocol.imp().uses_regions()
    }

    /// Classify a protocol event the way the running protocol reports it
    /// (see [`Protocol::classify`]).
    pub fn classify_event(&self, ev: &ProtocolEvent) -> EventClass {
        self.protocol.imp().classify(ev)
    }

    /// The machine topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The latency model in effect.
    pub fn latency_model(&self) -> LatencyModel {
        self.lat
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &CoherenceStats {
        &self.stats
    }

    /// Peak simultaneous WARD regions observed.
    pub fn region_peak(&self) -> usize {
        self.regions.peak()
    }

    /// The backing memory (only coherent after [`Self::flush_all`]).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Take the backing memory out of the system, leaving an empty one
    /// behind. Intended for end-of-run accounting after [`Self::flush_all`]:
    /// moving the final multi-megabyte image is free where cloning it is
    /// not. The system is incoherent afterwards and should be discarded.
    pub fn take_memory(&mut self) -> Memory {
        std::mem::replace(&mut self.memory, Memory::new())
    }

    /// Install initial memory contents (e.g. preloaded benchmark inputs).
    ///
    /// # Panics
    ///
    /// Panics if any cache already holds data — initial contents must be set
    /// before the first access.
    pub fn set_memory(&mut self, memory: Memory) {
        assert!(
            self.cores.iter().all(|c| c.l2.is_empty()) && self.llcs.iter().all(|l| l.is_empty()),
            "set_memory requires cold caches"
        );
        self.memory = memory;
    }

    // ----- checkpoint serialization -------------------------------------

    /// Serialize the system's complete mutable state: every private cache
    /// (including LRU order and ticks — eviction order must replay
    /// identically), the LLC slices with their co-located directory entries,
    /// the region CAM, the memory image, the stats counters, the dirty-page
    /// index, the optional transition log, the optional invariant checker
    /// and the optional protocol-event buffer.
    ///
    /// Configuration (topology, latencies, geometries, protocol, injected
    /// mutations) is *not* serialized; [`Self::restore_state`] is called on a
    /// freshly constructed system carrying the same configuration, and the
    /// caller binds config identity via fingerprints at the framing layer.
    pub fn encode_state(&self, enc: &mut warden_mem::codec::Encoder) {
        enc.put_usize(self.cores.len());
        for core in &self.cores {
            core.l1.encode_with(enc, |_, ()| {});
            core.l2.encode_with(enc, |e, line| line.encode_into(e));
        }
        enc.put_usize(self.llcs.len());
        for llc in &self.llcs {
            llc.encode_with(enc, |e, line| line.encode_into(e));
        }
        self.regions.encode_into(enc);
        self.memory.encode_into(enc);
        self.stats.encode_into(enc);
        let mut dir_pages: Vec<(PageAddr, u64)> =
            self.dir_pages.iter().map(|(p, &m)| (p, m)).collect();
        dir_pages.sort_by_key(|&(p, _)| p);
        enc.put_usize(dir_pages.len());
        for (page, mask) in dir_pages {
            enc.put_u64(page.0);
            enc.put_u64(mask);
        }
        match &self.dir_log {
            Some(log) => {
                enc.put_bool(true);
                enc.put_usize(log.len());
                for (block, kind) in log {
                    enc.put_u64(block.0);
                    enc.put_u8(kind.tag());
                }
            }
            None => enc.put_bool(false),
        }
        match &self.check {
            Some(chk) => {
                enc.put_bool(true);
                chk.encode_into(enc);
            }
            None => enc.put_bool(false),
        }
        match &self.obs {
            Some(buf) => {
                enc.put_bool(true);
                // The engine drains the buffer after every access, so at a
                // checkpoint boundary this is normally empty — but any
                // undrained events must survive a restore.
                encode_events(buf, enc);
            }
            None => enc.put_bool(false),
        }
    }

    /// Restore state serialized by [`Self::encode_state`] into this system,
    /// which must have been constructed with the same configuration
    /// (topology, geometries, protocol). Counts and geometries are
    /// re-validated; on mismatch the system is left unchanged.
    pub fn restore_state(
        &mut self,
        dec: &mut warden_mem::codec::Decoder<'_>,
    ) -> Result<(), warden_mem::codec::CodecError> {
        use warden_mem::codec::CodecError;
        let ncores = dec.take_usize()?;
        if ncores != self.cores.len() {
            return Err(CodecError::Invalid {
                what: "coherence snapshot",
                detail: format!(
                    "{ncores} cores in snapshot, system has {}",
                    self.cores.len()
                ),
            });
        }
        let mut cores = Vec::with_capacity(ncores);
        for core in &self.cores {
            let l1 = CacheArray::decode_with(core.l1.geometry(), dec, |_| Ok(()))?;
            let l2 = CacheArray::decode_with(core.l2.geometry(), dec, PrivLine::decode_from)?;
            cores.push(PrivateCache { l1, l2 });
        }
        let nllcs = dec.take_usize()?;
        if nllcs != self.llcs.len() {
            return Err(CodecError::Invalid {
                what: "coherence snapshot",
                detail: format!(
                    "{nllcs} LLC slices in snapshot, system has {}",
                    self.llcs.len()
                ),
            });
        }
        let mut llcs = Vec::with_capacity(nllcs);
        for llc in &self.llcs {
            llcs.push(CacheArray::decode_with(
                llc.geometry(),
                dec,
                LlcLine::decode_from,
            )?);
        }
        let regions = RegionStore::decode_from(dec)?;
        if regions.capacity() != self.regions.capacity() {
            return Err(CodecError::Invalid {
                what: "coherence snapshot",
                detail: format!(
                    "region capacity {} in snapshot, system has {}",
                    regions.capacity(),
                    self.regions.capacity()
                ),
            });
        }
        let memory = Memory::decode_from(dec)?;
        let stats = CoherenceStats::decode_from(dec)?;
        let ndp = dec.take_count(16)?;
        let mut dir_pages = warden_mem::PageMap::new();
        for _ in 0..ndp {
            let page = PageAddr(dec.take_u64()?);
            let mask = dec.take_u64()?;
            if mask == 0 {
                return Err(CodecError::Invalid {
                    what: "dirty-page index",
                    detail: format!("page {:#x} carries an empty mask", page.0),
                });
            }
            dir_pages.insert(page, mask);
        }
        let dir_log = if dec.take_bool()? {
            let n = dec.take_count(9)?;
            let mut log = Vec::with_capacity(n);
            for _ in 0..n {
                let block = BlockAddr(dec.take_u64()?);
                log.push((block, DirKind::from_tag(dec.take_u8()?)?));
            }
            Some(log)
        } else {
            None
        };
        let check = if dec.take_bool()? {
            Some(InvariantChecker::decode_from(dec)?)
        } else {
            None
        };
        let obs = if dec.take_bool()? {
            Some(decode_events(dec)?)
        } else {
            None
        };
        self.cores = cores;
        self.llcs = llcs;
        self.regions = regions;
        self.memory = memory;
        self.stats = stats;
        self.dir_pages = dir_pages;
        self.dir_log = dir_log;
        self.check = check;
        self.obs = obs;
        // The per-core region caches are derived from the replaced store;
        // the defaults never validate against any epoch, forcing re-lookup.
        self.region_cache.fill(RegionCache::default());
        Ok(())
    }

    // ----- message accounting -------------------------------------------

    fn ctrl_msg(&mut self, a: SocketId, b: SocketId) {
        if a == b {
            self.stats.ctrl_intra += 1;
        } else {
            self.stats.ctrl_inter += 1;
        }
    }

    fn data_msg(&mut self, a: SocketId, b: SocketId) {
        if a == b {
            self.stats.data_intra += 1;
        } else {
            self.stats.data_inter += 1;
        }
    }

    fn xs(&self, a: SocketId, b: SocketId) -> u64 {
        u64::from(a != b) * self.lat.intersocket
    }

    // ----- private-cache plumbing ---------------------------------------

    /// Remove a block from a core's L1+L2, returning the L2 line.
    fn invalidate_priv(&mut self, core: CoreId, block: BlockAddr) -> Option<PrivLine> {
        self.cores[core].l1.invalidate(block);
        self.cores[core].l2.invalidate(block)
    }

    /// [`Self::invalidate_priv`] fused with the per-level hit count the
    /// stats charge (what `levels()` before the removal would have said) —
    /// one pass over each cache instead of a count pass plus a removal pass.
    fn invalidate_priv_counted(
        &mut self,
        core: CoreId,
        block: BlockAddr,
    ) -> (u64, Option<PrivLine>) {
        let in_l1 = self.cores[core].l1.invalidate(block).is_some();
        let line = self.cores[core].l2.invalidate(block);
        let levels = match (line.is_some(), in_l1) {
            (true, true) => 2,
            (true, false) => 1,
            (false, _) => 0,
        };
        (levels, line)
    }

    /// Install a line in a core's private hierarchy, handling the L2 victim.
    fn fill_private(&mut self, core: CoreId, block: BlockAddr, line: PrivLine) {
        if let Some(victim) = self.cores[core].l2.insert(block, line) {
            self.cores[core].l1.invalidate(victim.block);
            self.handle_priv_eviction(core, victim.block, victim.payload);
        }
        // L1 victims are silent: the L1 is a filter over the L2.
        self.cores[core].l1.insert(block, ());
    }

    /// A private L2 victim leaves the hierarchy: tell the directory, and
    /// write back dirty data.
    fn handle_priv_eviction(&mut self, core: CoreId, block: BlockAddr, line: PrivLine) {
        let home = self.topo.home_of(block);
        let csock = self.topo.socket_of(core);
        let Some(llc) = self.llcs[home].peek_mut(block) else {
            // Inclusion means this should not happen; tolerate by writing
            // dirty data straight to memory.
            debug_assert!(self.mutations.any(), "private copy without LLC line");
            if !line.mask.is_empty() {
                let mut blk = self.memory.read_block(block);
                blk.merge_from(&line.data, line.mask);
                self.memory.write_block(block, &blk);
                self.stats.dram_writes += 1;
            }
            return;
        };
        let mut wrote = false;
        let mut new_dir: Option<DirState> = None;
        match llc.dir {
            DirState::Owned(o) if o == core => {
                if line.state == PrivState::Modified {
                    llc.data = line.data;
                    llc.dirty = true;
                    wrote = true;
                }
                llc.dir = DirState::Uncached;
                new_dir = Some(DirState::Uncached);
            }
            DirState::Shared(s) => {
                let rest = s & !DirState::bit(core);
                llc.dir = if rest == 0 {
                    DirState::Uncached
                } else {
                    DirState::Shared(rest)
                };
            }
            DirState::Ward(copies) => {
                let rest = copies & !DirState::bit(core);
                if !line.mask.is_empty() {
                    llc.data.merge_from(&line.data, line.mask);
                    llc.dirty = true;
                    wrote = true;
                    if rest != 0 {
                        // The remaining copies now lack this copy's writes.
                        llc.ward_partial = true;
                    }
                }
                // Once every ward copy is gone the block leaves W "for free"
                // (reconciliation overlapped with eviction, paper §5.3).
                let nd = if rest == 0 {
                    llc.ward_partial = false;
                    DirState::Uncached
                } else {
                    DirState::Ward(rest)
                };
                llc.dir = nd;
                new_dir = Some(nd);
            }
            DirState::Uncached | DirState::Owned(_) => {
                debug_assert!(self.mutations.any(), "directory out of sync on eviction");
            }
        }
        if let Some(d) = new_dir {
            self.note_dir(block, d);
        }
        if wrote {
            self.stats.writebacks += 1;
            self.data_msg(csock, home);
        } else {
            self.ctrl_msg(csock, home);
        }
        self.emit(ProtocolEvent::PrivEviction {
            core,
            block,
            writeback: wrote,
        });
    }

    // ----- LLC plumbing ---------------------------------------------------

    /// Make sure the home LLC slice holds `block`, fetching from memory on a
    /// miss. Adds any memory latency to `*t`. Returns the line's [`Slot`] so
    /// the caller can finish the transaction without re-scanning the set —
    /// valid because no directory transaction inserts or removes another
    /// line in the home slice between here and its final state write.
    fn llc_ensure(&mut self, home: SocketId, block: BlockAddr, t: &mut u64) -> Slot {
        if let Some(slot) = self.llcs[home].get_slot(block) {
            self.stats.llc_hits += 1;
            return slot;
        }
        self.stats.llc_misses += 1;
        self.stats.dram_reads += 1;
        *t += self.lat.dram;
        let data = self.memory.read_block(block);
        let victim = self.llcs[home].insert(block, LlcLine::clean(data));
        if let Some(v) = victim {
            self.handle_llc_eviction(home, v.block, v.payload);
        }
        self.llcs[home].locate(block).expect("just inserted")
    }

    /// An (inclusive) LLC victim: pull and invalidate all private copies,
    /// then write back to memory if dirty.
    fn handle_llc_eviction(&mut self, home: SocketId, block: BlockAddr, mut line: LlcLine) {
        self.stats.llc_evictions += 1;
        self.note_dir(block, DirState::Uncached);
        match line.dir {
            DirState::Uncached => {}
            DirState::Owned(o) => {
                let (levels, invalidated) = self.invalidate_priv_counted(o, block);
                self.stats.inclusion_invalidations += levels;
                self.ctrl_msg(home, self.topo.socket_of(o));
                if let Some(p) = invalidated {
                    if p.state == PrivState::Modified {
                        line.data = p.data;
                        line.dirty = true;
                        self.data_msg(self.topo.socket_of(o), home);
                    }
                }
            }
            DirState::Shared(s) => {
                for o in DirState::cores_in(s) {
                    let (levels, _) = self.invalidate_priv_counted(o, block);
                    self.stats.inclusion_invalidations += levels;
                    self.ctrl_msg(home, self.topo.socket_of(o));
                }
            }
            DirState::Ward(copies) => {
                for o in DirState::cores_in(copies) {
                    let (levels, invalidated) = self.invalidate_priv_counted(o, block);
                    self.stats.inclusion_invalidations += levels;
                    self.ctrl_msg(home, self.topo.socket_of(o));
                    if let Some(p) = invalidated {
                        if !p.mask.is_empty() {
                            line.data.merge_from(&p.data, p.mask);
                            line.dirty = true;
                            self.data_msg(self.topo.socket_of(o), home);
                        }
                    }
                }
            }
        }
        if line.dirty {
            self.memory.write_block(block, &line.data);
            self.stats.llc_writebacks += 1;
            self.stats.dram_writes += 1;
        }
        self.emit(ProtocolEvent::LlcEviction {
            block,
            writeback: line.dirty,
        });
    }

    // ----- demand accesses ------------------------------------------------

    /// Perform a demand access of the given kind. Returns the latency in
    /// cycles. Stores return their full completion latency; the timing
    /// simulator models the store buffer that hides it.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a cache-block boundary or `core` is out
    /// of range.
    pub fn access(&mut self, core: CoreId, kind: AccessKind, addr: Addr, data: &[u8]) -> u64 {
        match kind {
            AccessKind::Load => self.load(core, addr, data.len() as u64),
            AccessKind::Store => self.store(core, addr, data),
            AccessKind::Rmw => self.rmw(core, addr, data),
        }
    }

    // ----- fallible API ---------------------------------------------------
    //
    // The panicking entry points above stay the convenient API for trusted
    // callers; the `try_*` variants below reject malformed operations with a
    // typed [`CoherenceError`] instead of unwinding, for callers handling
    // untrusted input (decoded traces, fuzzers, fault injectors).

    /// Validate the core id and access geometry shared by the `try_*`
    /// entry points.
    fn validate_access(&self, core: CoreId, addr: Addr, len: u64) -> Result<(), CoherenceError> {
        if core >= self.cores.len() {
            return Err(CoherenceError::CoreOutOfRange {
                core,
                num_cores: self.cores.len(),
            });
        }
        if addr.block_offset() + len > BLOCK_SIZE {
            return Err(CoherenceError::CrossesBlockBoundary { addr, size: len });
        }
        Ok(())
    }

    /// Fallible [`Self::load`].
    pub fn try_load(&mut self, core: CoreId, addr: Addr, size: u64) -> Result<u64, CoherenceError> {
        self.validate_access(core, addr, size)?;
        Ok(self.load(core, addr, size))
    }

    /// Fallible [`Self::store`].
    pub fn try_store(
        &mut self,
        core: CoreId,
        addr: Addr,
        data: &[u8],
    ) -> Result<u64, CoherenceError> {
        if data.is_empty() {
            return Err(CoherenceError::EmptyAccess { addr });
        }
        self.validate_access(core, addr, data.len() as u64)?;
        Ok(self.store(core, addr, data))
    }

    /// Fallible [`Self::rmw`].
    pub fn try_rmw(
        &mut self,
        core: CoreId,
        addr: Addr,
        data: &[u8],
    ) -> Result<u64, CoherenceError> {
        if data.is_empty() {
            return Err(CoherenceError::EmptyAccess { addr });
        }
        self.validate_access(core, addr, data.len() as u64)?;
        Ok(self.rmw(core, addr, data))
    }

    /// Fallible [`Self::rmw_add`].
    pub fn try_rmw_add(
        &mut self,
        core: CoreId,
        addr: Addr,
        size: u64,
        delta: u64,
    ) -> Result<u64, CoherenceError> {
        if !(1..=8).contains(&size) {
            return Err(CoherenceError::BadRmwSize { size });
        }
        self.validate_access(core, addr, size)?;
        Ok(self.rmw_add(core, addr, size, delta))
    }

    /// Fallible [`Self::access`].
    pub fn try_access(
        &mut self,
        core: CoreId,
        kind: AccessKind,
        addr: Addr,
        data: &[u8],
    ) -> Result<u64, CoherenceError> {
        match kind {
            AccessKind::Load => self.try_load(core, addr, data.len() as u64),
            AccessKind::Store => self.try_store(core, addr, data),
            AccessKind::Rmw => self.try_rmw(core, addr, data),
        }
    }

    /// Fallible [`Self::add_region`] — rejects unaligned or empty bounds
    /// instead of panicking. `Ok(None)` still means the safe MESI fallback
    /// (non-WARDen protocol or directory CAM overflow).
    pub fn try_add_region(
        &mut self,
        start: Addr,
        end: Addr,
    ) -> Result<Option<RegionId>, CoherenceError> {
        if !start.0.is_multiple_of(PAGE_SIZE) || !end.0.is_multiple_of(PAGE_SIZE) {
            return Err(CoherenceError::UnalignedRegion { start, end });
        }
        if start >= end {
            return Err(CoherenceError::EmptyRegion { start, end });
        }
        Ok(self.add_region(start, end))
    }

    /// Fallible [`Self::set_memory`].
    pub fn try_set_memory(&mut self, memory: Memory) -> Result<(), CoherenceError> {
        let cold =
            self.cores.iter().all(|c| c.l2.is_empty()) && self.llcs.iter().all(|l| l.is_empty());
        if !cold {
            return Err(CoherenceError::CachesNotCold);
        }
        self.memory = memory;
        Ok(())
    }

    /// Classify — without mutating any state — whether a demand access by
    /// `core` at `addr` would be served lane-locally by the private
    /// hierarchy, and at which level.
    ///
    /// This is the partition predicate of the sharded engine's event
    /// lanes: `Some(_)` accesses touch only `core`'s own L1/L2 (no
    /// directory set, no LLC slice, no other core), `None` accesses are
    /// directory transactions that the deterministic merge must serialize
    /// in canonical `(clock, core, seq)` order. RMWs always classify as
    /// `None`: they are performed coherently even on a private copy (the
    /// region store is consulted first), so they are never lane-local.
    ///
    /// The prediction is exact for the machine's *current* state: a
    /// subsequent directory transaction may of course invalidate the copy
    /// it relies on, which is precisely why lanes may only run local
    /// accesses between merge points.
    pub fn classify_private(&self, core: CoreId, kind: AccessKind, addr: Addr) -> Option<LocalHit> {
        let block = addr.block();
        let pc = &self.cores[core];
        match kind {
            AccessKind::Load => {
                if pc.l1.peek(block).is_some() {
                    Some(LocalHit::L1)
                } else if pc.l2.peek(block).is_some() {
                    Some(LocalHit::L2)
                } else {
                    None
                }
            }
            AccessKind::Store => match pc.l2.peek(block) {
                Some(line) if line.state.writable() => {
                    if pc.l1.peek(block).is_some() {
                        Some(LocalHit::L1)
                    } else {
                        Some(LocalHit::L2)
                    }
                }
                _ => None,
            },
            AccessKind::Rmw => None,
        }
    }

    /// A load of `size` bytes at `addr`. Returns latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a block boundary.
    pub fn load(&mut self, core: CoreId, addr: Addr, size: u64) -> u64 {
        assert!(
            addr.block_offset() + size <= BLOCK_SIZE,
            "load at {addr} size {size} crosses a block boundary"
        );
        self.stats.loads += 1;
        let t = self.load_inner(core, addr.block());
        self.run_checks();
        t
    }

    fn load_inner(&mut self, core: CoreId, block: BlockAddr) -> u64 {
        // Lane-local fast path: private hierarchy only.
        match self.cores[core].try_local_load(block) {
            Some(LocalHit::L1) => {
                self.stats.l1_hits += 1;
                self.lat.l1
            }
            Some(LocalHit::L2) => {
                self.stats.l2_hits += 1;
                self.lat.l2
            }
            // Merge-mediated directory transaction, served by the protocol.
            None => self.protocol.imp().get_shared(self, core, block),
        }
    }

    /// A store of `data` at `addr`. Returns the completion latency in
    /// cycles (typically hidden by the store buffer).
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a block boundary or `data` is empty.
    pub fn store(&mut self, core: CoreId, addr: Addr, data: &[u8]) -> u64 {
        assert!(!data.is_empty(), "empty store");
        assert!(
            addr.block_offset() + data.len() as u64 <= BLOCK_SIZE,
            "store at {addr} crosses a block boundary"
        );
        self.stats.stores += 1;
        let t = self.store_path(core, addr, WriteVal::Bytes(data));
        self.run_checks();
        t
    }

    pub(crate) fn store_path(&mut self, core: CoreId, addr: Addr, val: WriteVal<'_>) -> u64 {
        let block = addr.block();
        let offset = addr.block_offset();
        let sector_bytes = self.sector_bytes;
        // Lane-local fast path: writable hit in the private hierarchy.
        match self.cores[core].try_local_store(block, offset, val, sector_bytes) {
            Some(LocalHit::L1) => {
                self.stats.l1_hits += 1;
                self.lat.l1
            }
            Some(LocalHit::L2) => {
                self.stats.l2_hits += 1;
                self.lat.l2
            }
            // Merge-mediated directory transaction, served by the protocol.
            None => self
                .protocol
                .imp()
                .get_modified(self, core, block, offset, val, false),
        }
    }

    /// An atomic read-modify-write writing `data` at `addr`.
    ///
    /// RMWs are always performed *coherently*: if the target block is in the
    /// W state the directory first reconciles that single block on demand (a
    /// "coherent escape"), because an atomic operating on stale W-state data
    /// would break synchronization. This mirrors how real sync variables in
    /// MPL live outside the marked heap pages.
    pub fn rmw(&mut self, core: CoreId, addr: Addr, data: &[u8]) -> u64 {
        assert!(!data.is_empty(), "empty rmw");
        let t = self.rmw_inner(core, addr, WriteVal::Bytes(data));
        self.run_checks();
        t
    }

    /// An atomic fetch-and-add of `delta` to the `size`-byte little-endian
    /// integer at `addr` (applied to the value the machine currently holds,
    /// so shared counters converge under any interleaving).
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a block boundary or `size` is not in
    /// `1..=8`.
    pub fn rmw_add(&mut self, core: CoreId, addr: Addr, size: u64, delta: u64) -> u64 {
        assert!((1..=8).contains(&size), "rmw_add size {size}");
        let t = self.rmw_inner(core, addr, WriteVal::Add { delta, size });
        self.run_checks();
        t
    }

    fn rmw_inner(&mut self, core: CoreId, addr: Addr, val: WriteVal<'_>) -> u64 {
        assert!(
            addr.block_offset() + val.len() <= BLOCK_SIZE,
            "rmw at {addr} crosses a block boundary"
        );
        self.stats.rmws += 1;
        self.protocol.imp().rmw(self, core, addr, val)
    }

    /// WARDen's atomic path (behind [`Protocol::rmw`]): an RMW inside an
    /// active region escapes the W state coherently — the block is
    /// reconciled on demand first — because an atomic operating on stale
    /// W-state data would break synchronization. This mirrors how real sync
    /// variables in MPL live outside the marked heap pages.
    pub(crate) fn ward_rmw(&mut self, core: CoreId, addr: Addr, val: WriteVal<'_>) -> u64 {
        let block = addr.block();
        let in_ward_region = self.in_ward_region(core, block);
        if in_ward_region {
            let home = self.topo.home_of(block);
            match self.llcs[home].peek(block).map(|l| l.dir) {
                // This core is already the sole coherent owner: the atomic
                // executes on its M/E copy like any store.
                Some(DirState::Owned(o)) if o == core => {
                    return self.store_path(core, addr, val);
                }
                Some(DirState::Ward(_)) => {
                    self.stats.ward_rmw_escapes += 1;
                    self.emit(ProtocolEvent::RmwEscape { core, block });
                    self.reconcile_block(home, block);
                }
                _ => {}
            }
            // Fall through to a coherent GetM, never entering W.
            return self.dir_get_modified(core, block, addr.block_offset(), val, false);
        }
        self.store_path(core, addr, val)
    }

    /// Self-invalidation's atomic path (behind [`Protocol::rmw`]): an
    /// atomic is itself a sync point, so the issuing core first
    /// self-downgrades and self-invalidates, then executes the RMW
    /// coherently — reconciling the target block out of the W state when
    /// other cores still hold ward copies of it.
    pub(crate) fn si_rmw(&mut self, core: CoreId, addr: Addr, val: WriteVal<'_>) -> u64 {
        let mut t = self.si_sync(core);
        let block = addr.block();
        let home = self.topo.home_of(block);
        if let Some(DirState::Ward(_)) = self.llcs[home].peek(block).map(|l| l.dir) {
            self.stats.ward_rmw_escapes += 1;
            self.emit(ProtocolEvent::RmwEscape { core, block });
            self.reconcile_block(home, block);
        }
        t += self.dir_get_modified(core, block, addr.block_offset(), val, false);
        t
    }

    /// A self-invalidation sync point (behind [`Protocol::task_sync`] and
    /// the first half of [`Self::si_rmw`]): drain `core`'s private
    /// hierarchy in canonical order through the eviction path, so dirty
    /// sectors self-downgrade (write-mask merge at the LLC) and clean
    /// copies self-invalidate. Returns the latency to charge the core.
    pub(crate) fn si_sync(&mut self, core: CoreId) -> u64 {
        let blocks: Vec<BlockAddr> = self.cores[core].l2.iter().map(|(b, _)| b).collect();
        let mut flushed = 0u64;
        for block in blocks {
            if self.mutations.skip_self_invalidate {
                // Mutation: only dirty lines leave (self-downgrade without
                // self-invalidate) — clean residue survives the sync.
                let dirty = self.cores[core]
                    .l2
                    .peek(block)
                    .is_some_and(|l| !l.mask.is_empty());
                if !dirty {
                    continue;
                }
            }
            let Some(line) = self.invalidate_priv(core, block) else {
                continue;
            };
            flushed += 1;
            if self.mutations.skip_self_downgrade {
                // Mutation: the line vanishes without publishing its dirty
                // sectors (and without telling the directory).
                continue;
            }
            self.handle_priv_eviction(core, block, line);
        }
        // The protocol's sync-point invariant: nothing may survive.
        if let Some(mut chk) = self.check.take() {
            let residue: Vec<BlockAddr> = self.cores[core].l2.iter().map(|(b, _)| b).collect();
            for block in residue {
                chk.report(
                    InvariantKind::SyncResidue,
                    block,
                    Some(core),
                    format!("core {core} kept a private line across a sync point"),
                );
            }
            self.check = Some(chk);
        }
        flushed * self.lat.reconcile_per_block
    }

    /// DLS read path (behind [`Protocol::get_shared`]): served entirely at
    /// the block's home LLC slice; nothing is filled privately.
    pub(crate) fn dls_get_shared(&mut self, core: CoreId, block: BlockAddr) -> u64 {
        let home = self.topo.home_of(block);
        let csock = self.topo.socket_of(core);
        let mut t = self.lat.l3 + self.xs(csock, home);
        self.ctrl_msg(csock, home);
        self.stats.dir_lookups += 1;
        let slot = self.llc_ensure(home, block, &mut t);
        let (dir, data) = {
            let l = self.llcs[home].at(slot);
            (l.dir, l.data)
        };
        self.emit(ProtocolEvent::GetS {
            core,
            block,
            dir: dir.into(),
            ward: false,
        });
        // The directory never leaves Uncached; the note feeds the
        // invariant checker's per-access validation of this block.
        self.note_dir(block, DirState::Uncached);
        self.data_msg(home, csock);
        if self.mutations.dls_cache_private {
            // Mutation: illegally fill a private copy; later reads hit it
            // and never see other cores' LLC writes.
            self.fill_private(core, block, PrivLine::filled(PrivState::Shared, data));
        }
        t
    }

    /// DLS write path (behind [`Protocol::get_modified`] and
    /// [`Protocol::rmw`]): the store's bytes are applied to the home LLC
    /// line — the single coherence point — and marked dirty.
    pub(crate) fn dls_get_modified(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        offset: u64,
        val: WriteVal<'_>,
    ) -> u64 {
        let home = self.topo.home_of(block);
        let csock = self.topo.socket_of(core);
        let mut t = self.lat.l3 + self.xs(csock, home);
        self.ctrl_msg(csock, home);
        self.stats.dir_lookups += 1;
        let slot = self.llc_ensure(home, block, &mut t);
        let dir = self.llcs[home].at(slot).dir;
        self.emit(ProtocolEvent::GetM {
            core,
            block,
            dir: dir.into(),
            ward: false,
            upgrade: false,
        });
        self.note_dir(block, DirState::Uncached);
        self.data_msg(csock, home);
        if self.mutations.dls_dirty_private {
            // Mutation: buffer the write in a private dirty line instead of
            // the LLC — the one place a DLS write must land.
            let data = self.llcs[home].at(slot).data;
            let mut line = PrivLine::filled(PrivState::Modified, data);
            val.apply(&mut line.data, offset);
            let (ms, ml) = sector_range(self.sector_bytes, offset, val.len());
            line.mask.set_range(ms, ml);
            self.fill_private(core, block, line);
            return t;
        }
        let skip_dirty = self.mutations.dls_skip_llc_dirty;
        let line = self.llcs[home].at_mut(slot);
        val.apply(&mut line.data, offset);
        if !skip_dirty {
            line.dirty = true;
        }
        t
    }

    /// A sync point reached by `core` (task boundary, work acquisition, a
    /// just-published fork). Dispatches to [`Protocol::task_sync`]; eager
    /// protocols return 0 and touch nothing, so calling this is free for
    /// them. Returns the latency to charge the core.
    pub fn task_sync(&mut self, core: CoreId) -> u64 {
        let t = self.protocol.imp().task_sync(self, core);
        if t != 0 {
            self.run_checks();
        }
        t
    }

    /// The `size`-byte little-endian value `core` would observe at `addr`
    /// right now, without disturbing any state: its private copy if it
    /// holds one, else the home LLC line, else memory. Diagnostic — the
    /// cross-protocol differential tests compare per-core observed-value
    /// sequences on data-race-free traces with this.
    pub fn observe(&self, core: CoreId, addr: Addr, size: u64) -> u64 {
        assert!(
            (1..=8).contains(&size) && addr.block_offset() + size <= BLOCK_SIZE,
            "observe at {addr} size {size}"
        );
        let block = addr.block();
        let data = if let Some(line) = self.cores[core].l2.peek(block) {
            line.data
        } else if let Some(line) = self.llcs[self.topo.home_of(block)].peek(block) {
            line.data
        } else {
            self.memory.read_block(block)
        };
        let off = addr.block_offset() as usize;
        let mut le = [0u8; 8];
        le[..size as usize].copy_from_slice(&data.bytes()[off..off + size as usize]);
        u64::from_le_bytes(le)
    }

    /// Full-block write (used by the runtime for freshly allocated pages).
    /// Semantically a store of 64 bytes.
    pub fn store_block(&mut self, core: CoreId, block: BlockAddr, data: &BlockData) -> u64 {
        self.stats.stores += 1;
        let t = self.store_path(core, block.base(), WriteVal::Bytes(data.bytes()));
        self.run_checks();
        t
    }

    // ----- GetS -----------------------------------------------------------

    /// Handle a read miss at the directory. `ward_now` is the protocol's
    /// decision to serve this access with WARD semantics (no invalidations,
    /// merge on reconcile); `grant_exclusive` selects MESI's E-on-unshared
    /// optimization over plain MSI's Shared grant.
    pub(crate) fn dir_get_shared(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        ward_now: bool,
        grant_exclusive: bool,
    ) -> u64 {
        let home = self.topo.home_of(block);
        let csock = self.topo.socket_of(core);
        let mut t = self.lat.l3 + self.xs(csock, home);
        self.ctrl_msg(csock, home);
        self.stats.dir_lookups += 1;
        let slot = self.llc_ensure(home, block, &mut t);

        let (dir, llc_data) = {
            let l = self.llcs[home].at(slot);
            (l.dir, l.data)
        };
        self.emit(ProtocolEvent::GetS {
            core,
            block,
            dir: dir.into(),
            ward: ward_now,
        });

        if ward_now {
            // WARDen §5.1: serve from the shared cache, return an exclusive
            // copy, and do not disturb any other copy. Entering W from a
            // dirty owner first snapshots the owner's sectors into the LLC
            // (one intervention per region epoch), so data written *before*
            // the region began is never served stale; writes after entry
            // are covered by the WARD property.
            let copies = match dir {
                DirState::Ward(c) => c,
                DirState::Uncached => {
                    self.stats.ward_transitions += 1;
                    0
                }
                DirState::Owned(o) => {
                    self.stats.ward_transitions += 1;
                    t += self.ward_entry_sync(home, block, o, core);
                    DirState::bit(o)
                }
                DirState::Shared(s) => {
                    self.stats.ward_transitions += 1;
                    s
                }
            };
            self.stats.ward_serves += 1;
            // Mutation hook: serve the ward copy without registering the
            // requester in the sharer set — its later dirty sectors are
            // invisible to reconciliation.
            let new = if self.mutations.skip_ward_registration {
                copies
            } else {
                copies | DirState::bit(core)
            };
            let line = self.llcs[home].at_mut(slot);
            line.dir = DirState::Ward(new);
            let data = line.data;
            self.note_dir(block, DirState::Ward(new));
            self.data_msg(home, csock);
            self.fill_private(core, block, PrivLine::filled(PrivState::Exclusive, data));
            return t;
        }

        match dir {
            DirState::Ward(_) => {
                // Region is gone but the block is still W (possible with
                // overlapping regions): reconcile, then retry coherently.
                self.reconcile_block(home, block);
                let line = self.llcs[home].at_mut(slot);
                line.dir = DirState::Owned(core);
                let data = line.data;
                self.note_dir(block, DirState::Owned(core));
                self.data_msg(home, csock);
                self.fill_private(core, block, PrivLine::filled(PrivState::Exclusive, data));
                t
            }
            DirState::Uncached => {
                // MESI/WARDen grant Exclusive on an unshared read; plain MSI
                // has no E state and grants Shared.
                let (dir, fill) = if !grant_exclusive {
                    (DirState::Shared(DirState::bit(core)), PrivState::Shared)
                } else {
                    (DirState::Owned(core), PrivState::Exclusive)
                };
                self.llcs[home].at_mut(slot).dir = dir;
                self.note_dir(block, dir);
                self.data_msg(home, csock);
                self.fill_private(core, block, PrivLine::filled(fill, llc_data));
                t
            }
            DirState::Shared(s) => {
                self.llcs[home].at_mut(slot).dir = DirState::Shared(s | DirState::bit(core));
                self.note_dir(block, DirState::Shared(0));
                self.data_msg(home, csock);
                self.fill_private(core, block, PrivLine::filled(PrivState::Shared, llc_data));
                t
            }
            DirState::Owned(o) => {
                debug_assert_ne!(o, core, "owner missed its own block");
                let osock = self.topo.socket_of(o);
                // Fwd-GetS: intervention at the owner, who downgrades.
                self.stats.fwd_gets += 1;
                self.ctrl_msg(home, osock);
                t += self.lat.fwd + self.xs(home, osock) + self.xs(osock, csock);
                let mut data = llc_data;
                let in_l1 = u64::from(self.cores[o].l1.peek(block).is_some());
                if let Some(l2_slot) = self.cores[o].l2.locate(block) {
                    self.stats.downgrades += 1 + in_l1;
                    let line = self.cores[o].l2.at_mut(l2_slot);
                    if line.state == PrivState::Modified {
                        data = line.data;
                        line.mask = warden_mem::WriteMask::empty();
                    }
                    line.state = PrivState::Shared;
                }
                // Dirty data goes both to the requestor and back to the LLC.
                let wrote_back = {
                    let llc = self.llcs[home].at_mut(slot);
                    let changed = data != llc.data;
                    if changed {
                        llc.data = data;
                        llc.dirty = true;
                    }
                    llc.dir = DirState::Shared(DirState::bit(o) | DirState::bit(core));
                    changed
                };
                self.note_dir(block, DirState::Shared(0));
                if wrote_back {
                    self.data_msg(osock, home);
                }
                self.data_msg(osock, csock);
                self.fill_private(core, block, PrivLine::filled(PrivState::Shared, data));
                t
            }
        }
    }

    // ----- GetM -----------------------------------------------------------

    /// Handle a write miss/upgrade at the directory. `ward_now` is the
    /// protocol's decision to serve this write with WARD semantics (the
    /// eager protocols always pass `false`, as does any RMW escape).
    pub(crate) fn dir_get_modified(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        offset: u64,
        val: WriteVal<'_>,
        ward_now: bool,
    ) -> u64 {
        let home = self.topo.home_of(block);
        let csock = self.topo.socket_of(core);
        let mut t = self.lat.l3 + self.xs(csock, home);
        self.ctrl_msg(csock, home);
        self.stats.dir_lookups += 1;
        let slot = self.llc_ensure(home, block, &mut t);

        let (dir, llc_data) = {
            let l = self.llcs[home].at(slot);
            (l.dir, l.data)
        };
        self.emit(ProtocolEvent::GetM {
            core,
            block,
            dir: dir.into(),
            ward: ward_now,
            upgrade: !ward_now
                && matches!(dir, DirState::Shared(s) if s & DirState::bit(core) != 0),
        });

        if ward_now {
            let copies = match dir {
                DirState::Ward(c) => c,
                DirState::Uncached => {
                    self.stats.ward_transitions += 1;
                    0
                }
                DirState::Owned(o) => {
                    self.stats.ward_transitions += 1;
                    t += self.ward_entry_sync(home, block, o, core);
                    DirState::bit(o)
                }
                DirState::Shared(s) => {
                    self.stats.ward_transitions += 1;
                    for o in DirState::cores_in(s) {
                        if o != core {
                            self.stats.ward_avoided_inv += self.cores[o].levels(block);
                        }
                    }
                    s
                }
            };
            self.stats.ward_serves += 1;
            // Mutation hook: serve the ward copy without registering the
            // requester in the sharer set — its later dirty sectors are
            // invisible to reconciliation.
            let new = if self.mutations.skip_ward_registration {
                copies
            } else {
                copies | DirState::bit(core)
            };
            let line = self.llcs[home].at_mut(slot);
            line.dir = DirState::Ward(new);
            let fresh = line.data;
            self.note_dir(block, DirState::Ward(new));
            // The requester may already hold an S copy (upgrade-in-region):
            // write in place; otherwise fill from the LLC.
            let g = self.sector_bytes;
            if let Some(line) = self.cores[core].l2.peek_mut(block) {
                line.state = PrivState::Modified;
                val.apply(&mut line.data, offset);
                let (ms, ml) = sector_range(g, offset, val.len());
                line.mask.set_range(ms, ml);
                self.cores[core].l1.insert(block, ());
            } else {
                self.data_msg(home, csock);
                let mut line = PrivLine::filled(PrivState::Modified, fresh);
                val.apply(&mut line.data, offset);
                let (ms, ml) = sector_range(g, offset, val.len());
                line.mask.set_range(ms, ml);
                self.fill_private(core, block, line);
            }
            return t;
        }

        match dir {
            DirState::Ward(_) => {
                // Stale W entry outside any active region: reconcile first.
                // The retry below re-runs the whole directory transaction
                // (another LLC lookup and dir_lookup); the counter keeps the
                // cache-level accounting identity exact.
                self.stats.ward_stale_retries += 1;
                self.reconcile_block(home, block);
                self.dir_get_modified(core, block, offset, val, ward_now)
            }
            DirState::Uncached => {
                self.llcs[home].at_mut(slot).dir = DirState::Owned(core);
                self.note_dir(block, DirState::Owned(core));
                self.data_msg(home, csock);
                let mut line = PrivLine::filled(PrivState::Modified, llc_data);
                val.apply(&mut line.data, offset);
                let (ms, ml) = sector_range(self.sector_bytes, offset, val.len());
                line.mask.set_range(ms, ml);
                self.fill_private(core, block, line);
                t
            }
            DirState::Shared(s) => {
                let others = s & !DirState::bit(core);
                let mut max_cross = 0;
                for o in DirState::cores_in(others) {
                    let osock = self.topo.socket_of(o);
                    let (levels, _) = self.invalidate_priv_counted(o, block);
                    self.stats.invalidations += levels;
                    self.stats.inv_msgs += 1;
                    self.ctrl_msg(home, osock);
                    self.ctrl_msg(osock, home); // Inv-Ack
                    max_cross = max_cross.max(self.xs(home, osock));
                }
                if others != 0 {
                    t += self.lat.fwd + max_cross;
                }
                self.llcs[home].at_mut(slot).dir = DirState::Owned(core);
                self.note_dir(block, DirState::Owned(core));
                if s & DirState::bit(core) != 0 {
                    // Upgrade in place (S→M), data already present.
                    self.stats.upgrades += 1;
                    let g = self.sector_bytes;
                    let line = self.cores[core].l2.peek_mut(block).expect("S copy present");
                    line.state = PrivState::Modified;
                    val.apply(&mut line.data, offset);
                    let (ms, ml) = sector_range(g, offset, val.len());
                    line.mask.set_range(ms, ml);
                    self.cores[core].l1.insert(block, ());
                } else {
                    self.data_msg(home, csock);
                    let mut line = PrivLine::filled(PrivState::Modified, llc_data);
                    val.apply(&mut line.data, offset);
                    let (ms, ml) = sector_range(self.sector_bytes, offset, val.len());
                    line.mask.set_range(ms, ml);
                    self.fill_private(core, block, line);
                }
                t
            }
            DirState::Owned(o) => {
                debug_assert_ne!(o, core, "owner missed its own writable block");
                let osock = self.topo.socket_of(o);
                self.stats.fwd_getm += 1;
                self.ctrl_msg(home, osock);
                t += self.lat.fwd + self.xs(home, osock) + self.xs(osock, csock);
                let mut fill = llc_data;
                let mut was_dirty = false;
                let (levels, invalidated) = self.invalidate_priv_counted(o, block);
                self.stats.invalidations += levels;
                if let Some(p) = invalidated {
                    if p.state == PrivState::Modified {
                        fill = p.data;
                        was_dirty = true;
                    }
                }
                self.data_msg(osock, csock);
                {
                    // Keep the invariant that a private fill always matches
                    // the LLC copy: dirty ownership transfers also refresh
                    // the LLC (so every line's write mask describes exactly
                    // its dirtiness relative to the LLC).
                    let llc = self.llcs[home].at_mut(slot);
                    if was_dirty {
                        llc.data = fill;
                        llc.dirty = true;
                    }
                    llc.dir = DirState::Owned(core);
                }
                self.note_dir(block, DirState::Owned(core));
                if was_dirty {
                    self.data_msg(osock, home);
                }
                let mut line = PrivLine::filled(PrivState::Modified, fill);
                val.apply(&mut line.data, offset);
                let (ms, ml) = sector_range(self.sector_bytes, offset, val.len());
                line.mask.set_range(ms, ml);
                self.fill_private(core, block, line);
                t
            }
        }
    }

    /// Snapshot a dirty owner's written sectors into the LLC as a block
    /// enters the W state (the sound-entry intervention). The owner keeps
    /// its copy and state; the LLC becomes the valid merge base for data
    /// written before the region began. Returns the latency contribution
    /// (zero when the owner had written nothing).
    fn ward_entry_sync(
        &mut self,
        home: SocketId,
        block: BlockAddr,
        owner: CoreId,
        requester: CoreId,
    ) -> u64 {
        if self.mutations.skip_ward_entry_sync {
            // Injected defect: leave the owner's dirty sectors out of the
            // LLC merge base (and its mask uncleared).
            return 0;
        }
        let osock = self.topo.socket_of(owner);
        let Some(line) = self.cores[owner].l2.peek_mut(block) else {
            // Unreachable in a correct protocol; a seeded mutation (e.g. a
            // skipped self-downgrade) can desynchronize the directory, and
            // then the invariant checker — not this assert — must flag it.
            debug_assert!(self.mutations.any(), "owner without private copy");
            return 0;
        };
        if line.mask.is_empty() {
            return 0; // clean E copy: LLC already valid
        }
        let (data, mask) = (line.data, line.mask);
        // The copy is clean relative to the LLC after the snapshot: clear
        // its mask so a later eviction/reconciliation cannot re-merge these
        // (by then possibly stale) sectors over newer in-region writes.
        line.mask = warden_mem::WriteMask::empty();
        {
            let llc = self.llcs[home].peek_mut(block).expect("present");
            llc.data.merge_from(&data, mask);
            llc.dirty = true;
        }
        self.stats.ward_entry_syncs += 1;
        self.emit(ProtocolEvent::WardEntrySync { block, owner });
        self.ctrl_msg(home, osock);
        self.data_msg(osock, home);
        if owner == requester {
            0
        } else {
            self.lat.fwd + self.xs(home, osock)
        }
    }

    // ----- WARD regions and reconciliation ---------------------------------

    /// Execute an Add-Region instruction. Returns the region id if the
    /// directory accepted it (`None` under MESI or on capacity overflow —
    /// both are safe fallbacks to baseline coherence).
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not page-aligned.
    pub fn add_region(&mut self, start: Addr, end: Addr) -> Option<RegionId> {
        if !self.uses_regions() {
            return None;
        }
        self.stats.region_adds += 1;
        let id = match self.regions.add(start, end) {
            AddRegion::Added(id) => {
                self.stats.region_peak = self.stats.region_peak.max(self.regions.len() as u64);
                self.emit(ProtocolEvent::RegionAdd {
                    id: id.0,
                    start,
                    end,
                });
                Some(id)
            }
            AddRegion::Overflow => {
                self.stats.region_overflows += 1;
                self.emit(ProtocolEvent::RegionOverflow { start, end });
                debug_assert_eq!(
                    self.stats.region_overflows,
                    self.regions.overflows(),
                    "every rejected add flows through here, so the stat and \
                     the store's own pressure counter must agree"
                );
                None
            }
        };
        self.run_checks();
        id
    }

    /// Whether `block` lies in an active WARD region, answered through
    /// `core`'s cached last-page lookup (the paper's core-side region CAM,
    /// §6.2): spatial locality makes consecutive accesses hit the same
    /// page, so most queries never reach the store.
    #[inline]
    pub(crate) fn in_ward_region(&mut self, core: CoreId, block: BlockAddr) -> bool {
        if !self.uses_regions() {
            return false;
        }
        let page = block.page();
        let epoch = self.regions.epoch();
        let entry = &mut self.region_cache[core];
        if entry.epoch == epoch && entry.page == page {
            return entry.ward;
        }
        let ward = self.regions.contains_block(block);
        *entry = RegionCache { epoch, page, ward };
        ward
    }

    /// Execute a Remove-Region instruction: deactivate the region and
    /// reconcile all of its blocks (paper §5.2, §6.1 — every WARD block is
    /// flushed from the private caches and merged by write mask at the LLC).
    ///
    /// Returns the latency to charge the removing core.
    pub fn remove_region(&mut self, id: RegionId) -> u64 {
        if !self.uses_regions() {
            return 0;
        }
        self.stats.region_removes += 1;
        let Some((start, end)) = self.regions.remove(id) else {
            return self.lat.region_instr;
        };
        let mut processed = 0;
        for page in RegionStore::pages_of(start, end) {
            // If an overlapping region still covers this page, its blocks
            // stay W and will be reconciled when that region ends.
            if self.regions.contains(page.base()) {
                continue;
            }
            // Visit only blocks the dirty index says have an Owned/Ward
            // directory entry.
            let Some(mask) = self.dir_pages.get(page).copied() else {
                continue;
            };
            let first = page.first_block();
            for i in DirState::cores_in(mask) {
                let block = first + i as u64;
                let home = self.topo.home_of(block);
                self.reconcile_block(home, block);
                processed += 1;
            }
        }
        self.emit(ProtocolEvent::RegionRemove {
            id: id.0,
            blocks: processed,
        });
        self.run_checks();
        self.lat.region_instr + processed * self.lat.reconcile_per_block
    }

    /// Force a mid-run reconciliation of every block with an Owned or Ward
    /// directory entry whose address lies in `[start, end)`, bringing the
    /// range to baseline MESI state without ending any region (blocks still
    /// inside an active region simply re-enter W on their next access).
    /// Semantically transparent — all dirty sectors merge into the LLC — so
    /// the fault injector uses it to stress reconciliation mid-region.
    /// Returns the latency such a forced walk would charge.
    pub fn force_reconcile(&mut self, start: Addr, end: Addr) -> u64 {
        let mut pages = std::mem::take(&mut self.scratch_pages);
        pages.clear();
        pages.extend(
            self.dir_pages
                .iter()
                .map(|(p, _)| p)
                .filter(|p| p.base() < end && p.base() + PAGE_SIZE > start),
        );
        pages.sort_unstable();
        let mut processed = 0;
        for &page in &pages {
            let Some(mask) = self.dir_pages.get(page).copied() else {
                continue;
            };
            let first = page.first_block();
            for i in DirState::cores_in(mask) {
                let block = first + i as u64;
                let base = block.base();
                if base < start || base >= end {
                    continue;
                }
                let home = self.topo.home_of(block);
                self.reconcile_block(home, block);
                processed += 1;
            }
        }
        pages.clear();
        self.scratch_pages = pages;
        self.run_checks();
        self.lat.region_instr + processed * self.lat.reconcile_per_block
    }

    /// Reconcile one block, bringing it to a proper MESI state (paper §5.2):
    ///
    /// * **No sharing** (one private copy, complete data): the copy's dirty
    ///   sectors are written back and the copy stays cached, downgraded to a
    ///   clean Shared state — the holder keeps hitting locally, and later
    ///   readers are served by the LLC without consulting it. (The paper
    ///   converts to Exclusive; we use Shared so the survivor can never be
    ///   silently modified, which keeps LLC data authoritative.)
    /// * **False/true sharing** (multiple copies): every copy's written
    ///   sectors merge into the LLC and all copies are invalidated — the
    ///   copies are mutually incomplete, so none may survive. False-sharing
    ///   masks are disjoint (order-independent merge); true-WAW conflicts
    ///   resolve deterministically in core order, the stand-in for the
    ///   paper's "whichever block is processed last by the LLC".
    fn reconcile_block(&mut self, home: SocketId, block: BlockAddr) {
        // Conservation audit: snapshot every dirty copy's bytes before the
        // merge, verify the LLC afterwards (checker enabled only).
        let audit: Option<Vec<(CoreId, BlockData, WriteMask)>> = if self.check.is_some() {
            let writers = match self.llcs[home].peek(block).map(|l| l.dir) {
                Some(DirState::Owned(o)) => vec![o],
                Some(DirState::Ward(c)) => DirState::cores_in(c).collect(),
                _ => Vec::new(),
            };
            Some(
                writers
                    .into_iter()
                    .filter_map(|c| {
                        self.cores[c]
                            .l2
                            .peek(block)
                            .filter(|p| !p.mask.is_empty())
                            .map(|p| (c, p.data, p.mask))
                    })
                    .collect(),
            )
        } else {
            None
        };
        self.reconcile_block_inner(home, block);
        if let Some(writers) = audit {
            self.audit_reconciliation(block, home, &writers);
        }
    }

    /// Verify dirty-byte conservation after a reconciliation: every byte
    /// written by exactly one core survives with that core's value, and a
    /// contested byte resolves to one of the writers' values.
    fn audit_reconciliation(
        &mut self,
        block: BlockAddr,
        home: SocketId,
        writers: &[(CoreId, BlockData, WriteMask)],
    ) {
        let Some(mut chk) = self.check.take() else {
            return;
        };
        chk.reconciliations_audited += 1;
        if let Some(l) = self.llcs[home].peek(block) {
            for b in 0..BLOCK_SIZE {
                let got = l.data.bytes()[b as usize];
                let vals: Vec<(CoreId, u8)> = writers
                    .iter()
                    .filter(|(_, _, m)| m.covers(b))
                    .map(|(c, d, _)| (*c, d.bytes()[b as usize]))
                    .collect();
                match vals.as_slice() {
                    [] => {}
                    [(c, v)] if got != *v => {
                        chk.report(
                            InvariantKind::DirtyConservation,
                            block,
                            Some(*c),
                            format!(
                                "byte {b} written solely by core {c} (value {v:#04x}) was not \
                                 conserved: LLC holds {got:#04x} after reconciliation"
                            ),
                        );
                        break;
                    }
                    [..] if vals.len() > 1 && !vals.iter().any(|&(_, v)| v == got) => {
                        chk.report(
                            InvariantKind::DirtyConservation,
                            block,
                            vals.first().map(|&(c, _)| c),
                            format!(
                                "contested byte {b} resolved to {got:#04x}, a value none of \
                                 the writing cores {:?} produced",
                                vals.iter().map(|&(c, _)| c).collect::<Vec<_>>()
                            ),
                        );
                        break;
                    }
                    _ => {}
                }
            }
        }
        self.check = Some(chk);
    }

    /// The mask a reconciliation actually merges for one copy — the true
    /// mask unless a fault-injection mutation distorts it. `None` means the
    /// copy's dirty sectors are dropped entirely.
    fn recon_merge_mask(&self, mask: WriteMask) -> Option<WriteMask> {
        if self.mutations.skip_recon_writeback {
            return None;
        }
        Some(match self.mutations.coarse_merge_sector {
            Some(g) => mask.expand_to_sectors(g),
            None => mask,
        })
    }

    fn reconcile_block_inner(&mut self, home: SocketId, block: BlockAddr) {
        let Some((dir, partial)) = self.llcs[home].peek(block).map(|l| (l.dir, l.ward_partial))
        else {
            return;
        };
        // Copy holders into a stack buffer (≤ 64 cores by construction —
        // the sharer bitmask is a u64): reconciliation runs once per dirty
        // block on every region removal, so no per-block allocation.
        let mut holder_buf = [0 as CoreId; 64];
        let holders: &[CoreId] = match dir {
            DirState::Uncached => return,
            DirState::Owned(o) => {
                holder_buf[0] = o;
                &holder_buf[..1]
            }
            // Clean shared copies are already coherent and complete:
            // reconciliation has nothing to do.
            DirState::Shared(_) => return,
            DirState::Ward(c) => {
                let mut n = 0;
                for o in DirState::cores_in(c) {
                    holder_buf[n] = o;
                    n += 1;
                }
                &holder_buf[..n]
            }
        };
        if holders.is_empty() {
            self.llcs[home].peek_mut(block).expect("present").dir = DirState::Uncached;
            self.note_dir(block, DirState::Uncached);
            return;
        }
        self.stats.recon_blocks += 1;
        let (wb0, dp0) = (self.stats.recon_writebacks, self.stats.recon_drops);
        let nholders = holders.len() as u32;
        if holders.len() == 1 && !partial {
            // No sharing: write back in place, keep the copy.
            let o = holders[0];
            let osock = self.topo.socket_of(o);
            let mut wrote = false;
            let mut nd = DirState::Uncached;
            if let Some(p) = self.cores[o].l2.peek_mut(block) {
                let (data, mask) = (p.data, p.mask);
                p.state = PrivState::Shared;
                p.mask = warden_mem::WriteMask::empty();
                let merge = if mask.is_empty() {
                    None
                } else {
                    self.recon_merge_mask(mask)
                };
                let llc = self.llcs[home].peek_mut(block).expect("present");
                if let Some(m) = merge {
                    llc.data.merge_from(&data, m);
                    llc.dirty = true;
                    wrote = true;
                }
                llc.dir = DirState::Shared(DirState::bit(o));
                llc.ward_partial = false;
                nd = DirState::Shared(0);
            } else {
                debug_assert!(
                    self.mutations.any(),
                    "directory holder without private copy"
                );
                let llc = self.llcs[home].peek_mut(block).expect("present");
                llc.dir = DirState::Uncached;
                llc.ward_partial = false;
            }
            self.note_dir(block, nd);
            if wrote {
                self.stats.recon_writebacks += 1;
                self.data_msg(osock, home);
            } else {
                self.stats.recon_drops += 1;
                self.ctrl_msg(osock, home);
            }
            self.emit(ProtocolEvent::Reconcile {
                block,
                holders: nholders,
                writebacks: (self.stats.recon_writebacks - wb0) as u32,
                drops: (self.stats.recon_drops - dp0) as u32,
            });
            return;
        }
        for &o in holders {
            let osock = self.topo.socket_of(o);
            if let Some(p) = self.invalidate_priv(o, block) {
                let merge = if p.mask.is_empty() {
                    None
                } else {
                    self.recon_merge_mask(p.mask)
                };
                if let Some(m) = merge {
                    {
                        let llc = self.llcs[home].peek_mut(block).expect("present");
                        llc.data.merge_from(&p.data, m);
                        llc.dirty = true;
                    }
                    self.stats.recon_writebacks += 1;
                    self.data_msg(osock, home);
                } else {
                    self.stats.recon_drops += 1;
                    self.ctrl_msg(osock, home);
                }
            }
        }
        let llc = self.llcs[home].peek_mut(block).expect("present");
        llc.dir = DirState::Uncached;
        llc.ward_partial = false;
        self.note_dir(block, DirState::Uncached);
        self.emit(ProtocolEvent::Reconcile {
            block,
            holders: nholders,
            writebacks: (self.stats.recon_writebacks - wb0) as u32,
            drops: (self.stats.recon_drops - dp0) as u32,
        });
    }

    // ----- whole-system flush ----------------------------------------------

    /// Flush every cache to memory, leaving all caches empty and `memory()`
    /// holding the final coherent image.
    ///
    /// The drain is charged to the statistics (write-back data messages and
    /// DRAM writes): dirty data eventually leaves the caches in any real
    /// run, so charging the drain keeps traffic comparisons between
    /// protocols symmetric — a protocol that flushed early (WARDen's
    /// reconciliation) is not billed twice relative to one that kept dirty
    /// lines resident to the end.
    pub fn flush_all(&mut self) {
        self.dir_pages.clear();
        // The drain below bypasses `note_dir`; drop the checker's per-block
        // expectations so the next transitions are not judged against a
        // pre-flush world.
        if let Some(chk) = &mut self.check {
            chk.reset_state();
        }
        // Private caches first (core order = deterministic WAW resolution).
        // Split borrows let each drained line settle inside the drain
        // callback itself — no intermediate line buffer (whole-LLC copies
        // used to dominate end-of-run time on large images).
        let topo = self.topo;
        for core in 0..self.cores.len() {
            let csock = topo.socket_of(core);
            self.cores[core].l1.drain_all(|_, _| {});
            let llcs = &mut self.llcs;
            let memory = &mut self.memory;
            let stats = &mut self.stats;
            self.cores[core].l2.drain_all(|block, line| {
                let home = topo.home_of(block);
                if let Some(llc) = llcs[home].peek_mut(block) {
                    let mut wrote = false;
                    if !line.mask.is_empty() {
                        llc.data.merge_from(&line.data, line.mask);
                        llc.dirty = true;
                        wrote = true;
                    }
                    llc.dir = DirState::Uncached;
                    if wrote {
                        stats.writebacks += 1;
                        if csock == home {
                            stats.data_intra += 1;
                        } else {
                            stats.data_inter += 1;
                        }
                    }
                } else if !line.mask.is_empty() {
                    let mut blk = memory.read_block(block);
                    blk.merge_from(&line.data, line.mask);
                    memory.write_block(block, &blk);
                    stats.writebacks += 1;
                    stats.dram_writes += 1;
                }
            });
        }
        let memory = &mut self.memory;
        let stats = &mut self.stats;
        for llc in &mut self.llcs {
            llc.drain_all(|block, line| {
                if line.dirty {
                    memory.write_block(block, &line.data);
                    stats.llc_writebacks += 1;
                    stats.dram_writes += 1;
                }
            });
        }
    }

    /// The final memory image this system would produce, without disturbing
    /// the live system (clones, then flushes the clone).
    pub fn final_memory_image(&self) -> Memory {
        let mut clone = self.clone();
        clone.flush_all();
        clone.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(protocol: ProtocolId) -> CoherenceSystem {
        CoherenceSystem::new(
            Topology::new(2, 2),
            LatencyModel::xeon_gold_6126(),
            CacheConfig::paper(2),
            protocol,
        )
    }

    fn page(n: u64) -> Addr {
        Addr(n * warden_mem::PAGE_SIZE)
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        // Drive two identical WARDen systems through a prefix of work, then
        // snapshot one, restore it into a cold system, and run the same
        // suffix on all three (original, donor, restored): every observable
        // — stats, region peak, final image — must match.
        let prefix = |s: &mut CoherenceSystem| {
            s.enable_checker();
            s.store(0, page(1), &1u64.to_le_bytes());
            s.add_region(page(1), page(3));
            s.store(1, Addr(page(1).0 + 8), &2u64.to_le_bytes());
            s.store(2, Addr(page(2).0 + 16), &3u64.to_le_bytes());
            s.load(3, page(1), 8);
        };
        let suffix = |s: &mut CoherenceSystem| {
            s.store(3, Addr(page(1).0 + 24), &4u64.to_le_bytes());
            // Region ids are allocated deterministically; the prefix's only
            // region is id 0 in both systems.
            s.remove_region(RegionId(0));
            s.store(0, page(4), &5u64.to_le_bytes());
            s.load(1, page(4), 8);
        };

        let mut a = sys(ProtocolId::Warden);
        prefix(&mut a);
        let mut enc = warden_mem::codec::Encoder::new();
        a.encode_state(&mut enc);
        let bytes = enc.into_bytes();

        let mut b = sys(ProtocolId::Warden);
        let mut dec = warden_mem::codec::Decoder::new(&bytes);
        b.restore_state(&mut dec).unwrap();
        dec.finish().unwrap();

        // Restored state re-encodes to identical bytes.
        let mut enc2 = warden_mem::codec::Encoder::new();
        b.encode_state(&mut enc2);
        assert_eq!(enc2.into_bytes(), bytes);

        suffix(&mut a);
        suffix(&mut b);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.region_peak(), b.region_peak());
        assert_eq!(
            a.final_memory_image().digest(),
            b.final_memory_image().digest()
        );
        assert!(a.take_violations().is_empty());
        assert!(b.take_violations().is_empty());
    }

    #[test]
    fn restore_rejects_mismatched_configuration() {
        let mut a = sys(ProtocolId::Warden);
        a.store(0, Addr(64), &9u64.to_le_bytes());
        let mut enc = warden_mem::codec::Encoder::new();
        a.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        // Different core count.
        let mut wrong = CoherenceSystem::new(
            Topology::new(1, 2),
            LatencyModel::xeon_gold_6126(),
            CacheConfig::paper(2),
            ProtocolId::Warden,
        );
        let mut dec = warden_mem::codec::Decoder::new(&bytes);
        assert!(wrong.restore_state(&mut dec).is_err());
        // Different cache geometry.
        let mut wrong2 = CoherenceSystem::new(
            Topology::new(2, 2),
            LatencyModel::xeon_gold_6126(),
            CacheConfig::tiny(),
            ProtocolId::Warden,
        );
        let mut dec2 = warden_mem::codec::Decoder::new(&bytes);
        assert!(wrong2.restore_state(&mut dec2).is_err());
    }

    #[test]
    fn load_miss_then_hits() {
        let mut s = sys(ProtocolId::Mesi);
        let a = Addr(0x4000);
        let miss = s.load(0, a, 8);
        assert!(miss >= s.latency_model().l3);
        assert_eq!(s.load(0, a, 8), s.latency_model().l1);
        assert_eq!(s.stats().l1_hits, 1);
        assert_eq!(s.stats().llc_misses, 1);
    }

    #[test]
    fn store_data_reaches_final_image() {
        let mut s = sys(ProtocolId::Mesi);
        s.store(0, Addr(0x100), &7u64.to_le_bytes());
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(Addr(0x100)), 7);
    }

    #[test]
    fn mesi_read_sharing_downgrades_owner() {
        let mut s = sys(ProtocolId::Mesi);
        let a = Addr(0x200);
        s.store(0, a, &1u64.to_le_bytes()); // core 0 owns M
        let before = s.stats().downgrades;
        s.load(1, a, 8); // forces a downgrade
        assert!(s.stats().downgrades > before);
        assert_eq!(s.stats().fwd_gets, 1);
        // Both now read cheaply.
        assert_eq!(s.load(0, a, 8), s.latency_model().l1);
        assert_eq!(s.load(1, a, 8), s.latency_model().l1);
    }

    #[test]
    fn mesi_write_invalidates_sharers() {
        let mut s = sys(ProtocolId::Mesi);
        let a = Addr(0x300);
        s.load(0, a, 8);
        s.load(1, a, 8); // both share
        let before = s.stats().invalidations;
        s.store(2, a, &9u64.to_le_bytes());
        assert!(s.stats().invalidations > before);
        // Sharers lost their copies: next loads miss past L2.
        let t = s.load(0, a, 8);
        assert!(t >= s.latency_model().l3);
    }

    #[test]
    fn mesi_upgrade_in_place() {
        let mut s = sys(ProtocolId::Mesi);
        let a = Addr(0x400);
        s.load(0, a, 8);
        s.load(1, a, 8);
        s.store(0, a, &5u64.to_le_bytes()); // upgrade, invalidating core 1
        assert_eq!(s.stats().upgrades, 1);
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(a), 5);
    }

    #[test]
    fn dirty_transfer_between_cores_carries_data() {
        let mut s = sys(ProtocolId::Mesi);
        let a = Addr(0x500);
        s.store(0, a, &0xAAu64.to_le_bytes());
        // Core 1 writes a different byte of the same block.
        s.store(1, a + 8, &0xBBu64.to_le_bytes());
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(a), 0xAA);
        assert_eq!(img.read_u64(a + 8), 0xBB);
    }

    #[test]
    fn ward_region_suppresses_invalidations() {
        let mut s = sys(ProtocolId::Warden);
        let a = page(4);
        s.add_region(a, page(5)).expect("region accepted");
        // Two cores write the same block repeatedly: no inv, no downgrades.
        for i in 0..10u64 {
            s.store(0, a, &i.to_le_bytes());
            s.store(1, a + 8, &i.to_le_bytes());
        }
        assert_eq!(s.stats().invalidations, 0);
        assert_eq!(s.stats().downgrades, 0);
        assert!(s.stats().ward_serves >= 2);
    }

    #[test]
    fn ward_reconciliation_merges_false_sharing() {
        let mut s = sys(ProtocolId::Warden);
        let a = page(4);
        let id = s.add_region(a, page(5)).unwrap();
        s.store(0, a, &1u64.to_le_bytes());
        s.store(1, a + 8, &2u64.to_le_bytes());
        s.store(2, a + 16, &3u64.to_le_bytes());
        let lat = s.remove_region(id);
        assert!(lat > 0);
        assert!(s.stats().recon_blocks >= 1);
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(a), 1);
        assert_eq!(img.read_u64(a + 8), 2);
        assert_eq!(img.read_u64(a + 16), 3);
    }

    #[test]
    fn ward_same_value_waw_matches_mesi_image() {
        // The prime-sieve pattern: racing writes of the same value.
        let mut w = sys(ProtocolId::Warden);
        let mut m = sys(ProtocolId::Mesi);
        let a = page(4);
        let id = w.add_region(a, page(5)).unwrap();
        for core in 0..4 {
            w.store(core, a + 24, &[1]);
            m.store(core, a + 24, &[1]);
        }
        w.remove_region(id);
        let wi = w.final_memory_image();
        let mi = m.final_memory_image();
        assert_eq!(
            wi.first_difference(&mi, a, warden_mem::PAGE_SIZE),
            None,
            "benign WAW must reconcile to the same image"
        );
    }

    #[test]
    fn ward_read_after_reconcile_sees_writes() {
        let mut s = sys(ProtocolId::Warden);
        let a = page(6);
        let id = s.add_region(a, page(7)).unwrap();
        s.store(0, a, &11u64.to_le_bytes());
        s.store(1, a + 8, &22u64.to_le_bytes());
        s.remove_region(id);
        // A third core now reads coherently.
        s.load(2, a, 8);
        s.load(2, a + 8, 8);
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(a), 11);
        assert_eq!(img.read_u64(a + 8), 22);
    }

    #[test]
    fn rmw_in_ward_region_escapes_coherently() {
        let mut s = sys(ProtocolId::Warden);
        let a = page(8);
        let _id = s.add_region(a, page(9)).unwrap();
        s.store(0, a, &1u64.to_le_bytes()); // enters W
        s.store(1, a, &2u64.to_le_bytes()); // second ward copy
        s.rmw(2, a, &3u64.to_le_bytes());
        assert_eq!(s.stats().ward_rmw_escapes, 1);
        // After the escape the block is coherent: core 2 owns it M.
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(a), 3);
    }

    #[test]
    fn mesi_ignores_region_instructions() {
        let mut s = sys(ProtocolId::Mesi);
        assert!(s.add_region(page(1), page(2)).is_none());
        assert_eq!(s.stats().region_adds, 0);
    }

    #[test]
    fn region_overflow_falls_back_to_mesi() {
        let mut s = CoherenceSystem::new(
            Topology::new(1, 2),
            LatencyModel::xeon_gold_6126(),
            CacheConfig {
                region_capacity: 1,
                ..CacheConfig::paper(2)
            },
            ProtocolId::Warden,
        );
        assert!(s.add_region(page(0), page(1)).is_some());
        assert!(s.add_region(page(1), page(2)).is_none());
        assert_eq!(s.stats().region_overflows, 1);
        // Accesses to the overflowed page behave like MESI.
        let a = page(1);
        s.store(0, a, &1u64.to_le_bytes());
        let before = s.stats().downgrades;
        s.load(1, a, 8);
        assert!(s.stats().downgrades > before);
    }

    #[test]
    fn reconciliation_flushes_sole_owner_to_llc() {
        // §5.3: the fork-path optimization — after a region is removed,
        // another core's read is served by the LLC without a downgrade.
        let mut s = sys(ProtocolId::Warden);
        let a = page(10);
        let id = s.add_region(a, page(11)).unwrap();
        s.store(0, a, &42u64.to_le_bytes());
        s.remove_region(id);
        let dg = s.stats().downgrades;
        let t = s.load(1, a, 8);
        assert_eq!(s.stats().downgrades, dg, "no downgrade after flush");
        // Served by LLC, no forward hop.
        assert!(t <= s.latency_model().l3 + s.latency_model().intersocket);
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(a), 42);
    }

    #[test]
    fn cross_socket_latency_higher_than_local() {
        let mut s = sys(ProtocolId::Mesi);
        // Find a block homed on socket 0 and one homed on socket 1.
        let local = Addr(0); // block 0 -> home 0
        let remote = Addr(64); // block 1 -> home 1
        let t_local = s.load(0, local, 8); // core 0 is on socket 0
        let t_remote = s.load(0, remote, 8);
        assert!(t_remote > t_local);
        assert_eq!(t_remote - t_local, s.latency_model().intersocket);
    }

    #[test]
    fn private_eviction_writes_back_dirty_data() {
        let mut s = CoherenceSystem::new(
            Topology::new(1, 1),
            LatencyModel::xeon_gold_6126(),
            CacheConfig::tiny(),
            ProtocolId::Mesi,
        );
        // Touch enough distinct blocks to overflow the tiny L2 (16 blocks).
        for i in 0..64u64 {
            s.store(0, Addr(i * BLOCK_SIZE), &i.to_le_bytes());
        }
        assert!(s.stats().writebacks > 0);
        let img = s.final_memory_image();
        for i in 0..64u64 {
            assert_eq!(img.read_u64(Addr(i * BLOCK_SIZE)), i, "block {i}");
        }
    }

    #[test]
    fn llc_eviction_preserves_data_via_inclusion() {
        let mut s = CoherenceSystem::new(
            Topology::new(1, 1),
            LatencyModel::xeon_gold_6126(),
            CacheConfig::tiny(), // LLC holds 64 blocks
            ProtocolId::Mesi,
        );
        for i in 0..256u64 {
            s.store(0, Addr(i * BLOCK_SIZE), &(i + 1).to_le_bytes());
        }
        assert!(s.stats().llc_evictions > 0);
        let img = s.final_memory_image();
        for i in 0..256u64 {
            assert_eq!(img.read_u64(Addr(i * BLOCK_SIZE)), i + 1, "block {i}");
        }
    }

    #[test]
    fn ward_eviction_merges_early() {
        // A ward copy evicted before the region ends must still contribute
        // its sectors ("reconciliation overlapped with eviction").
        let mut s = CoherenceSystem::new(
            Topology::new(1, 2),
            LatencyModel::xeon_gold_6126(),
            CacheConfig::tiny(),
            ProtocolId::Warden,
        );
        let base = page(0);
        let id = s.add_region(base, page(1)).unwrap();
        s.store(0, base, &77u64.to_le_bytes());
        s.store(1, base + 8, &88u64.to_le_bytes());
        // Blow core 0's cache with far-away traffic.
        for i in 100..200u64 {
            s.store(0, Addr(i * warden_mem::PAGE_SIZE), &i.to_le_bytes());
        }
        s.remove_region(id);
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(base), 77);
        assert_eq!(img.read_u64(base + 8), 88);
    }

    #[test]
    fn ward_load_avoids_fwd_latency() {
        let mut w = sys(ProtocolId::Warden);
        let mut m = sys(ProtocolId::Mesi);
        let a = page(12);
        w.add_region(a, page(13)).unwrap();
        w.store(0, a, &1u64.to_le_bytes());
        m.store(0, a, &1u64.to_le_bytes());
        let tw = w.load(1, a, 8);
        let tm = m.load(1, a, 8);
        assert!(
            tw < tm,
            "W-state read ({tw}) must be cheaper than Fwd-GetS ({tm})"
        );
    }

    #[test]
    fn stats_count_accesses() {
        let mut s = sys(ProtocolId::Mesi);
        s.load(0, Addr(0), 8);
        s.store(0, Addr(0), &[1]);
        s.rmw(0, Addr(8), &[2]);
        assert_eq!(s.stats().loads, 1);
        assert_eq!(s.stats().stores, 1);
        assert_eq!(s.stats().rmws, 1);
    }

    #[test]
    fn ward_entry_sync_serves_fresh_pre_region_data() {
        // The sound-entry intervention: core 0 writes BEFORE the region
        // exists; once the region is active, core 1's W-state read must see
        // core 0's value at the LLC, not stale memory.
        let mut s = sys(ProtocolId::Warden);
        let a = page(20);
        s.store(0, a, &0xBEEFu64.to_le_bytes()); // pre-region: Owned(0), dirty
        let id = s.add_region(a, page(21)).unwrap();
        let before = s.stats().ward_entry_syncs;
        s.load(1, a, 8); // W entry from Owned(0): must sync first
        assert_eq!(s.stats().ward_entry_syncs, before + 1);
        // Core 1's fill (and therefore the LLC) now carries 0xBEEF: remove
        // the region with only core 1 evicted and the value must survive.
        s.remove_region(id);
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(a), 0xBEEF);
    }

    #[test]
    fn entry_sync_must_not_remerge_stale_sectors() {
        // Regression (found by the full-suite image comparison): core 0
        // writes before the region exists; the entry sync snapshots its
        // sectors into the LLC; core 1 then writes a NEWER value to the same
        // bytes and reconciles away; when core 0's copy finally leaves, its
        // (already-synced, now stale) sectors must not clobber core 1's.
        let mut s = sys(ProtocolId::Warden);
        let a = page(40);
        s.store(0, a, &0x49u64.to_le_bytes()); // pre-region dirty owner
        let id = s.add_region(a, page(41)).unwrap();
        s.store(1, a, &0x13u64.to_le_bytes()); // entry sync, then newer write
                                               // Core 1's copy leaves first (eviction via reconcile of just itself
                                               // is hard to force; remove the region — multi-holder merge happens
                                               // in core order 0 then 1, so order alone cannot mask the bug).
        s.remove_region(id);
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(a), 0x13, "the in-region write must win");
    }

    #[test]
    fn ward_entry_sync_is_once_per_epoch() {
        let mut s = sys(ProtocolId::Warden);
        let a = page(22);
        s.store(0, a, &1u64.to_le_bytes());
        s.add_region(a, page(23)).unwrap();
        s.load(1, a, 8);
        s.load(2, a, 8);
        s.load(3, a, 8);
        // Only the first sharing event pays the sync.
        assert_eq!(s.stats().ward_entry_syncs, 1);
        assert_eq!(s.stats().downgrades, 0);
    }

    #[test]
    fn rmw_add_converges_under_any_order() {
        // Three cores fetch-add the same counter: the total must be exact
        // regardless of the (here: sequential) order.
        let mut s = sys(ProtocolId::Mesi);
        let a = Addr(0x900);
        for core in 0..3 {
            for _ in 0..5 {
                s.rmw_add(core, a, 8, 2);
            }
        }
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(a), 30);
    }

    #[test]
    fn rmw_add_in_ward_region_is_coherent() {
        let mut s = sys(ProtocolId::Warden);
        let a = page(24);
        let _id = s.add_region(a, page(25)).unwrap();
        s.store(0, a, &10u64.to_le_bytes()); // W copy at core 0
        s.rmw_add(1, a, 8, 5); // escapes: reconcile + coherent add
        assert!(s.stats().ward_rmw_escapes >= 1);
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(a), 15);
    }

    #[test]
    fn rmw_by_the_sole_coherent_owner_stays_local() {
        // Regression (found by proptest): an in-region atomic by the core
        // that already owns the block coherently (Owned, pre-W) must run on
        // its own copy instead of tripping the directory's no-self-owner
        // path.
        let mut s = sys(ProtocolId::Warden);
        let a = page(28);
        let _id = s.add_region(a, page(29)).unwrap();
        // CAS first (coherent GetM: Owned, not Ward), then fetch-add.
        s.rmw(0, a, &5u64.to_le_bytes());
        s.rmw_add(0, a, 8, 3);
        assert_eq!(s.stats().ward_rmw_escapes, 0);
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(a), 8);
    }

    #[test]
    fn word_sectoring_loses_adjacent_byte_writes() {
        // The correctness argument for byte sectoring (§6.1): with 8-byte
        // sectors, two cores writing adjacent bytes of one word inside a
        // WARD region clobber each other at reconciliation.
        let run = |sector_bytes: u64| {
            let mut s = CoherenceSystem::new(
                Topology::new(1, 2),
                LatencyModel::xeon_gold_6126(),
                CacheConfig {
                    sector_bytes,
                    ..CacheConfig::paper(2)
                },
                ProtocolId::Warden,
            );
            let a = page(4);
            let id = s.add_region(a, page(5)).unwrap();
            s.store(0, a, &[0xAA]);
            s.store(1, a + 1, &[0xBB]);
            s.remove_region(id);
            let img = s.final_memory_image();
            (img.read_u8(a), img.read_u8(a + 1))
        };
        assert_eq!(run(1), (0xAA, 0xBB), "byte sectors keep both writes");
        let (x, y) = run(8);
        assert!(
            (x, y) != (0xAA, 0xBB),
            "word sectors must lose one neighbour (got {x:#x},{y:#x})"
        );
    }

    #[test]
    fn ward_partial_forces_sole_survivor_invalidation() {
        // Core 0's ward copy evicts mid-region (its sectors merge into the
        // LLC while core 1 still holds a copy). Core 1's surviving copy now
        // lacks core 0's bytes, so reconciliation must invalidate it rather
        // than downgrade it in place.
        let mut s = CoherenceSystem::new(
            Topology::new(1, 2),
            LatencyModel::xeon_gold_6126(),
            CacheConfig::tiny(),
            ProtocolId::Warden,
        );
        let base = page(0);
        let id = s.add_region(base, page(1)).unwrap();
        s.store(0, base, &0xAAu64.to_le_bytes());
        s.store(1, base + 8, &0xBBu64.to_le_bytes());
        // Evict core 0's ward copy with conflicting traffic.
        for i in 100..200u64 {
            s.store(0, Addr(i * warden_mem::PAGE_SIZE), &i.to_le_bytes());
        }
        s.remove_region(id);
        // Core 1's copy must be gone (a read misses past L2)…
        let t = s.load(1, base + 8, 8);
        assert!(t >= s.latency_model().l3, "stale survivor kept: {t}");
        // …and the merged image holds both values.
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(base), 0xAA);
        assert_eq!(img.read_u64(base + 8), 0xBB);
    }

    #[test]
    fn reconcile_keeps_sole_owner_cached() {
        // §5.2's no-sharing case: the single holder keeps a (clean) copy and
        // continues to hit locally after the region ends.
        let mut s = sys(ProtocolId::Warden);
        let a = page(26);
        let id = s.add_region(a, page(27)).unwrap();
        s.store(0, a, &7u64.to_le_bytes());
        s.remove_region(id);
        assert_eq!(s.load(0, a, 8), s.latency_model().l1, "post-region L1 hit");
    }

    #[test]
    fn region_instructions_have_latency() {
        let mut s = sys(ProtocolId::Warden);
        let id = s.add_region(page(1), page(2)).unwrap();
        let lat = s.remove_region(id);
        assert!(lat >= s.latency_model().region_instr);
    }

    #[test]
    fn message_counters_track_socket_crossings() {
        let mut s = sys(ProtocolId::Mesi);
        // Block 1 homes on socket 1; core 0 is on socket 0.
        s.load(0, Addr(64), 8);
        assert!(s.stats().ctrl_inter >= 1, "request crossed the link");
        assert!(s.stats().data_inter >= 1, "data crossed the link");
        // Block 0 homes on socket 0: local traffic only.
        let (ci, di) = (s.stats().ctrl_inter, s.stats().data_inter);
        s.load(0, Addr(0), 8);
        assert_eq!(s.stats().ctrl_inter, ci);
        assert_eq!(s.stats().data_inter, di);
    }

    #[test]
    fn overlapping_regions_defer_reconciliation() {
        let mut s = sys(ProtocolId::Warden);
        let a = page(30);
        let id1 = s.add_region(a, page(32)).unwrap(); // pages 30,31
        let id2 = s.add_region(page(31), page(33)).unwrap(); // pages 31,32
        s.store(0, page(31), &1u64.to_le_bytes());
        s.store(1, page(31) + 8, &2u64.to_le_bytes());
        let before = s.stats().recon_blocks;
        s.remove_region(id1);
        // Page 31 is still covered by id2: nothing reconciled yet.
        assert_eq!(s.stats().recon_blocks, before);
        s.remove_region(id2);
        assert!(s.stats().recon_blocks > before);
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(page(31)), 1);
        assert_eq!(img.read_u64(page(31) + 8), 2);
    }

    #[test]
    fn set_memory_installs_initial_image() {
        let mut mem = Memory::new();
        mem.write_u64(Addr(0x4000), 99);
        let mut s = sys(ProtocolId::Mesi);
        s.set_memory(mem);
        s.load(0, Addr(0x4000), 8); // fetches the preloaded value
        let img = s.final_memory_image();
        assert_eq!(img.read_u64(Addr(0x4000)), 99);
    }

    #[test]
    #[should_panic(expected = "cold caches")]
    fn set_memory_rejects_warm_caches() {
        let mut s = sys(ProtocolId::Mesi);
        s.load(0, Addr(0), 8);
        s.set_memory(Memory::new());
    }

    #[test]
    fn msi_pays_an_upgrade_where_mesi_writes_silently() {
        let run = |protocol| {
            let mut s = sys(protocol);
            let a = Addr(0x7000);
            s.load(0, a, 8); // read first…
            s.store(0, a, &1u64.to_le_bytes()); // …then write
            (s.stats().upgrades, s.final_memory_image().read_u64(a))
        };
        let (mesi_up, mesi_v) = run(ProtocolId::Mesi);
        let (msi_up, msi_v) = run(ProtocolId::Msi);
        assert_eq!(mesi_up, 0, "MESI: silent E→M");
        assert_eq!(msi_up, 1, "MSI: S→M upgrade");
        assert_eq!(mesi_v, msi_v);
    }

    #[test]
    fn msi_never_grants_exclusive_reads() {
        let mut s = sys(ProtocolId::Msi);
        s.load(0, Addr(0x7100), 8);
        s.load(1, Addr(0x7100), 8);
        // Under MESI the second read would downgrade the first reader's E
        // copy; under MSI both are plain Shared — no forwards at all.
        assert_eq!(s.stats().fwd_gets, 0);
        assert_eq!(s.stats().downgrades, 0);
    }

    #[test]
    fn msi_ignores_regions_like_mesi() {
        let mut s = sys(ProtocolId::Msi);
        assert!(s.add_region(page(1), page(2)).is_none());
        assert_eq!(s.stats().region_adds, 0);
    }

    #[test]
    fn load_latency_classes_are_ordered() {
        let mut s = sys(ProtocolId::Mesi);
        let a = Addr(0x6000); // block homes on socket 0, core 0 local
        let t_mem = s.load(0, a, 8); // LLC miss -> memory
        let t_l1 = s.load(0, a, 8);
        s.store(1, a, &[9]); // now dirty at core 1 (invalidates core 0)
        let t_fwd = s.load(0, a, 8); // forward chain
        let lat = s.latency_model();
        assert_eq!(t_l1, lat.l1);
        assert!(t_mem >= lat.l3 + lat.dram);
        assert!(t_fwd >= lat.l3 + lat.fwd && t_fwd < t_mem + lat.fwd);
    }
}
