//! Event counters collected by the coherence engine.

use std::fmt;
use std::ops::{Add, AddAssign};
use warden_mem::codec::{CodecError, Decoder, Encoder};

/// Every counter field in declaration order — the canonical field list shared
/// by the accumulation, encode and decode macros so a newly added counter
/// fails to compile unless it is wired into all three.
macro_rules! for_each_counter {
    ($m:ident, $($args:tt)*) => {
        $m!(
            $($args)*:
            loads,
            stores,
            rmws,
            l1_hits,
            l2_hits,
            llc_hits,
            llc_misses,
            invalidations,
            downgrades,
            fwd_gets,
            fwd_getm,
            inv_msgs,
            upgrades,
            writebacks,
            llc_evictions,
            llc_writebacks,
            inclusion_invalidations,
            ward_serves,
            ward_transitions,
            ward_avoided_inv,
            ward_avoided_dg,
            ward_rmw_escapes,
            ward_entry_syncs,
            ward_stale_retries,
            recon_blocks,
            recon_writebacks,
            recon_drops,
            region_adds,
            region_removes,
            region_overflows,
            region_peak,
            ctrl_intra,
            ctrl_inter,
            data_intra,
            data_inter,
            dram_reads,
            dram_writes,
            dir_lookups,
        );
    };
}

/// Aggregate counters for one simulated run of the coherence system.
///
/// The evaluation figures are computed from differences between a MESI run
/// and a WARDen run of the same trace, so the engine only needs to count
/// events faithfully — it never needs "what MESI would have done" style
/// shadow accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Demand loads processed.
    pub loads: u64,
    /// Demand stores processed.
    pub stores: u64,
    /// Atomic read-modify-writes processed.
    pub rmws: u64,

    /// Loads/stores that hit in the L1.
    pub l1_hits: u64,
    /// Accesses that missed L1 but hit the private L2.
    pub l2_hits: u64,
    /// Accesses served by the home LLC slice (data present).
    pub llc_hits: u64,
    /// Accesses that had to fetch from memory.
    pub llc_misses: u64,

    /// Private-cache copies invalidated by coherence (counted per cache, so
    /// a copy resident in both L1 and L2 counts twice — matching the paper's
    /// "invalidations and downgrades are counted per cache").
    pub invalidations: u64,
    /// Private-cache copies downgraded M/E→S by coherence (per cache).
    pub downgrades: u64,
    /// Fwd-GetS interventions sent to a dirty owner.
    pub fwd_gets: u64,
    /// Fwd-GetM interventions sent to an owner.
    pub fwd_getm: u64,
    /// Invalidation messages sent to sharers.
    pub inv_msgs: u64,
    /// S→M upgrade transactions.
    pub upgrades: u64,

    /// Dirty blocks written back on private-cache eviction (PutM).
    pub writebacks: u64,
    /// LLC lines evicted.
    pub llc_evictions: u64,
    /// LLC lines written back to memory on eviction.
    pub llc_writebacks: u64,
    /// Private copies invalidated due to LLC inclusion victims.
    pub inclusion_invalidations: u64,

    /// Requests served in the W state without invalidating or downgrading
    /// any other copy.
    pub ward_serves: u64,
    /// Blocks that transitioned into the W state.
    pub ward_transitions: u64,
    /// Invalidations a MESI directory would have sent but the W state
    /// suppressed (analysis counter, not used by the timing model).
    pub ward_avoided_inv: u64,
    /// Downgrades a MESI directory would have sent but the W state
    /// suppressed (analysis counter).
    pub ward_avoided_dg: u64,
    /// Atomic RMWs that targeted a W block and forced an on-demand
    /// single-block reconciliation (coherent escape).
    pub ward_rmw_escapes: u64,
    /// Dirty-owner snapshots performed as blocks entered the W state (the
    /// sound-entry intervention: one per block per region epoch).
    pub ward_entry_syncs: u64,
    /// Write misses that found a stale W entry outside any active region and
    /// retried the directory transaction after reconciling the block. Each
    /// retry re-runs the LLC lookup, so the cache-level accounting identity
    /// is `l1_hits + l2_hits + llc_hits + llc_misses ==
    /// accesses() + ward_stale_retries`.
    pub ward_stale_retries: u64,

    /// Blocks processed by reconciliation (had at least one private copy).
    pub recon_blocks: u64,
    /// Dirty private copies written back during reconciliation.
    pub recon_writebacks: u64,
    /// Clean private copies dropped during reconciliation.
    pub recon_drops: u64,

    /// Add-Region instructions accepted.
    pub region_adds: u64,
    /// Remove-Region instructions processed.
    pub region_removes: u64,
    /// Add-Region instructions rejected because the region store was full
    /// (those addresses fall back to plain MESI).
    pub region_overflows: u64,
    /// Peak simultaneous regions.
    pub region_peak: u64,

    /// Control messages that stayed within a socket.
    pub ctrl_intra: u64,
    /// Control messages that crossed the inter-socket link.
    pub ctrl_inter: u64,
    /// Data (block) messages that stayed within a socket.
    pub data_intra: u64,
    /// Data (block) messages that crossed the inter-socket link.
    pub data_inter: u64,

    /// Blocks read from memory.
    pub dram_reads: u64,
    /// Blocks written to memory.
    pub dram_writes: u64,
    /// Directory lookups performed.
    pub dir_lookups: u64,
}

impl CoherenceStats {
    /// Fresh, all-zero counters.
    pub fn new() -> CoherenceStats {
        CoherenceStats::default()
    }

    /// Total demand accesses.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores + self.rmws
    }

    /// Invalidations plus downgrades — the cost metric of paper Figure 9.
    pub fn inv_plus_dg(&self) -> u64 {
        self.invalidations + self.downgrades
    }

    /// All protocol messages (control + data).
    pub fn total_messages(&self) -> u64 {
        self.ctrl_intra + self.ctrl_inter + self.data_intra + self.data_inter
    }

    /// Messages that crossed the inter-socket link.
    pub fn intersocket_messages(&self) -> u64 {
        self.ctrl_inter + self.data_inter
    }

    /// Every counter as a `(name, value)` pair, in declaration order — the
    /// canonical flat view the golden-stats fixtures and the observability
    /// exporters print. Driven by the same macro as the codec, so a new
    /// counter shows up here (and in the goldens) automatically.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        macro_rules! list {
            ($self:ident: $($f:ident),* $(,)?) => {
                return vec![ $( (stringify!($f), $self.$f) ),* ];
            };
        }
        for_each_counter!(list, self);
    }

    /// Serialize every counter, in declaration order, for a checkpoint.
    pub fn encode_into(&self, enc: &mut Encoder) {
        macro_rules! put {
            ($self:ident, $enc:ident: $($f:ident),* $(,)?) => {
                $( $enc.put_u64($self.$f); )*
            };
        }
        for_each_counter!(put, self, enc);
    }

    /// Decode counters serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<CoherenceStats, CodecError> {
        let mut s = CoherenceStats::new();
        macro_rules! take {
            ($s:ident, $dec:ident: $($f:ident),* $(,)?) => {
                $( $s.$f = $dec.take_u64()?; )*
            };
        }
        for_each_counter!(take, s, dec);
        Ok(s)
    }
}

impl Add for CoherenceStats {
    type Output = CoherenceStats;
    fn add(mut self, rhs: CoherenceStats) -> CoherenceStats {
        self += rhs;
        self
    }
}

impl AddAssign for CoherenceStats {
    fn add_assign(&mut self, rhs: CoherenceStats) {
        macro_rules! acc {
            ($($f:ident),* $(,)?) => { $( self.$f += rhs.$f; )* };
        }
        acc!(
            loads,
            stores,
            rmws,
            l1_hits,
            l2_hits,
            llc_hits,
            llc_misses,
            invalidations,
            downgrades,
            fwd_gets,
            fwd_getm,
            inv_msgs,
            upgrades,
            writebacks,
            llc_evictions,
            llc_writebacks,
            inclusion_invalidations,
            ward_serves,
            ward_transitions,
            ward_avoided_inv,
            ward_avoided_dg,
            ward_rmw_escapes,
            ward_entry_syncs,
            ward_stale_retries,
            recon_blocks,
            recon_writebacks,
            recon_drops,
            region_adds,
            region_removes,
            region_overflows,
            ctrl_intra,
            ctrl_inter,
            data_intra,
            data_inter,
            dram_reads,
            dram_writes,
            dir_lookups,
        );
        self.region_peak = self.region_peak.max(rhs.region_peak);
    }
}

impl fmt::Display for CoherenceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "accesses {} (L1 {} / L2 {} / LLC {} / mem {})",
            self.accesses(),
            self.l1_hits,
            self.l2_hits,
            self.llc_hits,
            self.llc_misses
        )?;
        writeln!(
            f,
            "inv {} dg {} ward-serves {} recon-blocks {}",
            self.invalidations, self.downgrades, self.ward_serves, self.recon_blocks
        )?;
        write!(
            f,
            "msgs intra {}c/{}d inter {}c/{}d",
            self.ctrl_intra, self.data_intra, self.ctrl_inter, self.data_inter
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_all_fields() {
        let mut a = CoherenceStats::new();
        a.loads = 1;
        a.invalidations = 2;
        a.region_peak = 5;
        let mut b = CoherenceStats::new();
        b.loads = 10;
        b.downgrades = 3;
        b.region_peak = 2;
        let c = a + b;
        assert_eq!(c.loads, 11);
        assert_eq!(c.inv_plus_dg(), 5);
        // Peak is a max, not a sum.
        assert_eq!(c.region_peak, 5);
    }

    #[test]
    fn derived_metrics() {
        let mut s = CoherenceStats::new();
        s.loads = 3;
        s.stores = 2;
        s.rmws = 1;
        s.ctrl_intra = 4;
        s.data_inter = 6;
        assert_eq!(s.accesses(), 6);
        assert_eq!(s.total_messages(), 10);
        assert_eq!(s.intersocket_messages(), 6);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", CoherenceStats::new()).is_empty());
    }

    #[test]
    fn codec_roundtrip_covers_every_field() {
        // Give each field a distinct value so a swapped or skipped field in
        // the codec cannot cancel out.
        let mut s = CoherenceStats::new();
        let mut i = 1u64;
        macro_rules! fill {
            ($s:ident, $i:ident: $($f:ident),* $(,)?) => {
                $( $s.$f = $i; $i += 1; )*
            };
        }
        for_each_counter!(fill, s, i);
        assert!(i > 38, "expected at least 38 counters");
        assert_eq!(s.fields().len() as u64, i - 1, "fields() covers the list");
        let mut enc = Encoder::new();
        s.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = CoherenceStats::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, s);
    }
}
