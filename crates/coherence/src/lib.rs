//! Directory-based MESI cache coherence and the WARDen protocol extension.
//!
//! This crate implements the paper's primary hardware contribution:
//!
//! * a baseline directory-based **MESI** protocol over private L1/L2 caches
//!   and per-socket shared LLC slices with co-located directories,
//! * the **WARDen** extension (paper §5): a *W* coherence state that serves
//!   requests to blocks inside active WARD regions without invalidating or
//!   downgrading other copies,
//! * the **region store** (paper §6.1): the directory-side CAM tracking up
//!   to 1024 simultaneous WARD regions, with safe fallback to MESI on
//!   overflow, and
//! * **reconciliation** (paper §5.2): when a region is removed, every WARD
//!   block is flushed from the private caches and merged per byte-sector
//!   into the LLC — false sharing merges exactly; benign WAW (true sharing)
//!   resolves deterministically.
//!
//! The engine moves *real data bytes*, so the repository's tests can verify
//! end-to-end that disabling coherence inside WARD regions still yields the
//! same final memory image as MESI.
//!
//! # Example
//!
//! ```
//! use warden_coherence::{CacheConfig, CoherenceSystem, LatencyModel, ProtocolId, Topology};
//! use warden_mem::{Addr, PAGE_SIZE};
//!
//! let mut sys = CoherenceSystem::new(
//!     Topology::new(2, 12),
//!     LatencyModel::xeon_gold_6126(),
//!     CacheConfig::paper(12),
//!     ProtocolId::Warden,
//! );
//! let region = sys.add_region(Addr(0), Addr(PAGE_SIZE)).expect("capacity available");
//! // Two cores race benign writes; the W state suppresses all invalidations.
//! sys.store(0, Addr(0), &[1]);
//! sys.store(13, Addr(1), &[1]);
//! assert_eq!(sys.stats().invalidations, 0);
//! sys.remove_region(region);
//! let image = sys.final_memory_image();
//! assert_eq!(image.read_u8(Addr(0)), 1);
//! assert_eq!(image.read_u8(Addr(1)), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod error;
mod obs;
mod protocol;
mod region;
mod state;
mod stats;
mod system;
mod topo;

pub use check::{
    CheckerReport, InvariantChecker, InvariantKind, InvariantViolation, ProtocolMutation,
};
pub use error::CoherenceError;
pub use obs::{decode_events, encode_events, EventClass, EventSink, ProtocolEvent};
pub use protocol::{
    DlsProtocol, MesiProtocol, MsiProtocol, Protocol, SelfInvProtocol, WardenProtocol,
};
pub use region::{AddRegion, RegionId, RegionStore};
pub use state::{DirState, LlcLine, PrivLine, PrivState, ProtocolId};
pub use stats::CoherenceStats;
pub use system::{AccessKind, CacheConfig, CoherenceSystem, DirKind, LocalHit, WriteVal};
pub use topo::{CoreId, LatencyModel, SocketId, Topology};
