//! Typed errors for recoverable misuse of the coherence engine.
//!
//! The panicking entry points ([`crate::CoherenceSystem::load`] and friends)
//! remain the convenient API for trusted callers (the replay engine feeds
//! them validated traces); the `try_*` variants return a [`CoherenceError`]
//! instead, so callers handling untrusted input — decoded trace files, fault
//! injectors, fuzzers — can reject bad operations without unwinding.

use std::fmt;
use warden_mem::Addr;

/// A rejected coherence-engine operation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoherenceError {
    /// The core id does not exist on this machine.
    CoreOutOfRange {
        /// The offending core id.
        core: usize,
        /// Cores on the machine.
        num_cores: usize,
    },
    /// An access would straddle a cache-block boundary.
    CrossesBlockBoundary {
        /// Access address.
        addr: Addr,
        /// Access size in bytes.
        size: u64,
    },
    /// A store or RMW carried no bytes.
    EmptyAccess {
        /// Access address.
        addr: Addr,
    },
    /// An atomic's operand width is outside `1..=8` bytes.
    BadRmwSize {
        /// The offending size.
        size: u64,
    },
    /// Region bounds are not page-aligned.
    UnalignedRegion {
        /// Region start.
        start: Addr,
        /// Region end (exclusive).
        end: Addr,
    },
    /// Region bounds describe an empty or inverted range.
    EmptyRegion {
        /// Region start.
        start: Addr,
        /// Region end (exclusive).
        end: Addr,
    },
    /// `set_memory` was called after the caches warmed up.
    CachesNotCold,
    /// A protocol name did not match any registered protocol.
    UnknownProtocol {
        /// The unrecognized name.
        name: String,
    },
    /// A configuration value is invalid (see the message for which).
    BadConfig(String),
}

impl fmt::Display for CoherenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherenceError::CoreOutOfRange { core, num_cores } => {
                write!(
                    f,
                    "core {core} out of range (machine has {num_cores} cores)"
                )
            }
            CoherenceError::CrossesBlockBoundary { addr, size } => {
                write!(f, "access at {addr} size {size} crosses a block boundary")
            }
            CoherenceError::EmptyAccess { addr } => write!(f, "empty access at {addr}"),
            CoherenceError::BadRmwSize { size } => {
                write!(f, "rmw size {size} outside 1..=8 bytes")
            }
            CoherenceError::UnalignedRegion { start, end } => {
                write!(f, "region [{start}, {end}) bounds must be page-aligned")
            }
            CoherenceError::EmptyRegion { start, end } => {
                write!(f, "region [{start}, {end}) must be non-empty")
            }
            CoherenceError::CachesNotCold => {
                write!(f, "set_memory requires cold caches")
            }
            CoherenceError::UnknownProtocol { name } => {
                write!(
                    f,
                    "unknown protocol {name:?} (registered: msi, mesi, warden, si, dls)"
                )
            }
            CoherenceError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoherenceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = CoherenceError::CrossesBlockBoundary {
            addr: Addr(0x3c),
            size: 8,
        };
        assert!(e.to_string().contains("crosses a block boundary"));
        let e = CoherenceError::BadConfig("l1 latency must be below l2".into());
        assert!(e.to_string().contains("l1 latency"));
    }
}
