//! The pluggable protocol boundary.
//!
//! A coherence protocol is a *policy* layered over the shared machinery in
//! [`CoherenceSystem`] (the "datapath": private caches, LLC slices with
//! co-located directories, the write-mask merge unit, the message and
//! latency accounting). The [`Protocol`] trait owns every per-protocol
//! decision:
//!
//! * how a demand read or write miss is served at the directory
//!   ([`Protocol::get_shared`] / [`Protocol::get_modified`]),
//! * how atomics are made coherent ([`Protocol::rmw`]),
//! * whether WARD-region instructions are honoured
//!   ([`Protocol::uses_regions`]),
//! * what happens at a task-boundary sync point ([`Protocol::task_sync`]),
//! * which invariants the checker holds the protocol to
//!   ([`Protocol::check_block`]), and
//! * how observability events are classified for reporting
//!   ([`Protocol::classify`]).
//!
//! Implementations are stateless singletons (all machine state lives in the
//! [`CoherenceSystem`]), registered by [`ProtocolId`] and resolved with
//! [`ProtocolId::imp`]. The five registered protocols:
//!
//! | id       | private caches | writes visible      | invalidation traffic |
//! |----------|----------------|---------------------|----------------------|
//! | `msi`    | MSI            | immediately         | on every conflict    |
//! | `mesi`   | MESI           | immediately         | on every conflict    |
//! | `warden` | MESI + W state | immediately / region| outside WARD regions |
//! | `si`     | self-inv/SD    | at sync points      | only on atomics      |
//! | `dls`    | bypassed       | immediately (LLC)   | none                 |

use crate::check::InvariantChecker;
use crate::obs::{EventClass, ProtocolEvent};
use crate::state::ProtocolId;
use crate::system::{CoherenceSystem, WardPolicy, WriteVal};
use crate::topo::CoreId;
use warden_mem::{Addr, BlockAddr};

/// One pluggable coherence protocol: the directory state machine, region
/// hooks, sync-point behaviour, invariant set and event classification for
/// a [`ProtocolId`].
///
/// Implementations are zero-sized and stateless; every method receives the
/// [`CoherenceSystem`] that holds the actual caches and statistics. The
/// shared directory machinery (`CoherenceSystem::dir_get_shared` and
/// friends) is parameterized rather than duplicated, so the MESI-family
/// protocols stay bit-identical to the pre-trait implementation.
pub trait Protocol: std::fmt::Debug + Sync {
    /// The identity this implementation is registered under.
    fn id(&self) -> ProtocolId;

    /// Whether Add-Region / Remove-Region instructions are honoured (only
    /// WARDen's region CAM consumes them; everyone else treats them as
    /// no-ops, like a machine without the region ISA extension).
    fn uses_regions(&self) -> bool {
        false
    }

    /// Serve a read that missed the private hierarchy.
    fn get_shared(&self, sys: &mut CoherenceSystem, core: CoreId, block: BlockAddr) -> u64;

    /// Serve a write that missed a writable private copy. `coherent_only`
    /// forces baseline (non-ward) semantics; the RMW paths use it.
    fn get_modified(
        &self,
        sys: &mut CoherenceSystem,
        core: CoreId,
        block: BlockAddr,
        offset: u64,
        val: WriteVal<'_>,
        coherent_only: bool,
    ) -> u64;

    /// Perform an atomic read-modify-write coherently.
    fn rmw(&self, sys: &mut CoherenceSystem, core: CoreId, addr: Addr, val: WriteVal<'_>) -> u64;

    /// A sync point (task boundary, work acquisition) reached by `core`.
    /// Returns the latency to charge; protocols with eager coherence have
    /// nothing to do.
    fn task_sync(&self, sys: &mut CoherenceSystem, core: CoreId) -> u64 {
        let _ = (sys, core);
        0
    }

    /// Validate one block's settled state against this protocol's
    /// invariant set.
    fn check_block(&self, sys: &CoherenceSystem, chk: &mut InvariantChecker, block: BlockAddr) {
        sys.check_block_coherent(chk, block, WardPolicy::InRegion);
    }

    /// Classify an observability event for this protocol's reports. The
    /// same wire event means different things under different protocols
    /// (a ward-served GetS is region machinery under WARDen but the normal
    /// serve path under self-invalidation).
    fn classify(&self, ev: &ProtocolEvent) -> EventClass {
        match ev {
            ProtocolEvent::GetS { ward: true, .. } | ProtocolEvent::GetM { ward: true, .. } => {
                EventClass::Ward
            }
            ProtocolEvent::GetS { .. } | ProtocolEvent::GetM { .. } => EventClass::Demand,
            ProtocolEvent::WardEntrySync { .. }
            | ProtocolEvent::RmwEscape { .. }
            | ProtocolEvent::Reconcile { .. } => EventClass::Ward,
            ProtocolEvent::RegionAdd { .. }
            | ProtocolEvent::RegionOverflow { .. }
            | ProtocolEvent::RegionRemove { .. } => EventClass::Region,
            ProtocolEvent::PrivEviction { .. } | ProtocolEvent::LlcEviction { .. } => {
                EventClass::Eviction
            }
        }
    }
}

/// Plain MSI: no Exclusive state, so unshared reads fill Shared and the
/// first write to a read block always pays an upgrade transaction.
#[derive(Debug)]
pub struct MsiProtocol;

impl Protocol for MsiProtocol {
    fn id(&self) -> ProtocolId {
        ProtocolId::Msi
    }

    fn get_shared(&self, sys: &mut CoherenceSystem, core: CoreId, block: BlockAddr) -> u64 {
        sys.dir_get_shared(core, block, false, false)
    }

    fn get_modified(
        &self,
        sys: &mut CoherenceSystem,
        core: CoreId,
        block: BlockAddr,
        offset: u64,
        val: WriteVal<'_>,
        _coherent_only: bool,
    ) -> u64 {
        sys.dir_get_modified(core, block, offset, val, false)
    }

    fn rmw(&self, sys: &mut CoherenceSystem, core: CoreId, addr: Addr, val: WriteVal<'_>) -> u64 {
        sys.store_path(core, addr, val)
    }
}

/// The baseline directory MESI protocol (paper §2.2): unshared reads fill
/// Exclusive, conflicts invalidate or downgrade eagerly.
#[derive(Debug)]
pub struct MesiProtocol;

impl Protocol for MesiProtocol {
    fn id(&self) -> ProtocolId {
        ProtocolId::Mesi
    }

    fn get_shared(&self, sys: &mut CoherenceSystem, core: CoreId, block: BlockAddr) -> u64 {
        sys.dir_get_shared(core, block, false, true)
    }

    fn get_modified(
        &self,
        sys: &mut CoherenceSystem,
        core: CoreId,
        block: BlockAddr,
        offset: u64,
        val: WriteVal<'_>,
        _coherent_only: bool,
    ) -> u64 {
        sys.dir_get_modified(core, block, offset, val, false)
    }

    fn rmw(&self, sys: &mut CoherenceSystem, core: CoreId, addr: Addr, val: WriteVal<'_>) -> u64 {
        sys.store_path(core, addr, val)
    }
}

/// MESI plus the W state (paper §5): accesses inside an active WARD region
/// are served without invalidating or downgrading other copies; region
/// removal reconciles by write-mask merge.
#[derive(Debug)]
pub struct WardenProtocol;

impl Protocol for WardenProtocol {
    fn id(&self) -> ProtocolId {
        ProtocolId::Warden
    }

    fn uses_regions(&self) -> bool {
        true
    }

    fn get_shared(&self, sys: &mut CoherenceSystem, core: CoreId, block: BlockAddr) -> u64 {
        let ward = sys.in_ward_region(core, block);
        sys.dir_get_shared(core, block, ward, true)
    }

    fn get_modified(
        &self,
        sys: &mut CoherenceSystem,
        core: CoreId,
        block: BlockAddr,
        offset: u64,
        val: WriteVal<'_>,
        coherent_only: bool,
    ) -> u64 {
        let ward = !coherent_only && sys.in_ward_region(core, block);
        sys.dir_get_modified(core, block, offset, val, ward)
    }

    fn rmw(&self, sys: &mut CoherenceSystem, core: CoreId, addr: Addr, val: WriteVal<'_>) -> u64 {
        sys.ward_rmw(core, addr, val)
    }
}

/// Self-invalidation/self-downgrade: every demand access is served with
/// ward semantics (no remote invalidations or downgrades), and a core makes
/// its writes globally visible — and drops its possibly-stale clean copies
/// — at sync points. Atomics sync first, then execute coherently.
#[derive(Debug)]
pub struct SelfInvProtocol;

impl Protocol for SelfInvProtocol {
    fn id(&self) -> ProtocolId {
        ProtocolId::SelfInv
    }

    fn get_shared(&self, sys: &mut CoherenceSystem, core: CoreId, block: BlockAddr) -> u64 {
        sys.dir_get_shared(core, block, true, true)
    }

    fn get_modified(
        &self,
        sys: &mut CoherenceSystem,
        core: CoreId,
        block: BlockAddr,
        offset: u64,
        val: WriteVal<'_>,
        coherent_only: bool,
    ) -> u64 {
        sys.dir_get_modified(core, block, offset, val, !coherent_only)
    }

    fn rmw(&self, sys: &mut CoherenceSystem, core: CoreId, addr: Addr, val: WriteVal<'_>) -> u64 {
        sys.si_rmw(core, addr, val)
    }

    fn task_sync(&self, sys: &mut CoherenceSystem, core: CoreId) -> u64 {
        sys.si_sync(core)
    }

    fn check_block(&self, sys: &CoherenceSystem, chk: &mut InvariantChecker, block: BlockAddr) {
        // The W state is this protocol's normal serve state, not a
        // region-scoped privilege: every coherent invariant applies except
        // W-in-region. Sync-point residue is checked at the sync itself
        // (`CoherenceSystem::si_sync`).
        sys.check_block_coherent(chk, block, WardPolicy::Anywhere);
    }

    fn classify(&self, ev: &ProtocolEvent) -> EventClass {
        match ev {
            // Ward-served accesses are this protocol's ordinary demand
            // path; the sync-point machinery is what deserves its own row.
            ProtocolEvent::GetS { .. } | ProtocolEvent::GetM { .. } => EventClass::Demand,
            ProtocolEvent::WardEntrySync { .. }
            | ProtocolEvent::RmwEscape { .. }
            | ProtocolEvent::Reconcile { .. } => EventClass::Sync,
            ProtocolEvent::RegionAdd { .. }
            | ProtocolEvent::RegionOverflow { .. }
            | ProtocolEvent::RegionRemove { .. } => EventClass::Region,
            ProtocolEvent::PrivEviction { .. } | ProtocolEvent::LlcEviction { .. } => {
                EventClass::Eviction
            }
        }
    }
}

/// Directoryless shared LLC: the private hierarchy is bypassed, every
/// access is served at the block's home LLC slice, and no private dirty
/// line can exist — the LLC is the single coherence point.
#[derive(Debug)]
pub struct DlsProtocol;

impl Protocol for DlsProtocol {
    fn id(&self) -> ProtocolId {
        ProtocolId::Dls
    }

    fn get_shared(&self, sys: &mut CoherenceSystem, core: CoreId, block: BlockAddr) -> u64 {
        sys.dls_get_shared(core, block)
    }

    fn get_modified(
        &self,
        sys: &mut CoherenceSystem,
        core: CoreId,
        block: BlockAddr,
        offset: u64,
        val: WriteVal<'_>,
        _coherent_only: bool,
    ) -> u64 {
        sys.dls_get_modified(core, block, offset, val)
    }

    fn rmw(&self, sys: &mut CoherenceSystem, core: CoreId, addr: Addr, val: WriteVal<'_>) -> u64 {
        // The LLC is the serialization point, so an atomic is just a
        // directory write like any other.
        sys.dls_get_modified(core, addr.block(), addr.block_offset(), val)
    }

    fn check_block(&self, sys: &CoherenceSystem, chk: &mut InvariantChecker, block: BlockAddr) {
        sys.check_block_dls(chk, block);
    }

    fn classify(&self, ev: &ProtocolEvent) -> EventClass {
        match ev {
            ProtocolEvent::GetS { .. } | ProtocolEvent::GetM { .. } => EventClass::Demand,
            ProtocolEvent::PrivEviction { .. } | ProtocolEvent::LlcEviction { .. } => {
                EventClass::Eviction
            }
            // Nothing else can legally occur; classify defensively.
            _ => EventClass::Ward,
        }
    }
}

static MSI: MsiProtocol = MsiProtocol;
static MESI: MesiProtocol = MesiProtocol;
static WARDEN: WardenProtocol = WardenProtocol;
static SELF_INV: SelfInvProtocol = SelfInvProtocol;
static DLS: DlsProtocol = DlsProtocol;

impl ProtocolId {
    /// Resolve this id to its registered implementation.
    pub fn imp(self) -> &'static dyn Protocol {
        match self {
            ProtocolId::Msi => &MSI,
            ProtocolId::Mesi => &MESI,
            ProtocolId::Warden => &WARDEN,
            ProtocolId::SelfInv => &SELF_INV,
            ProtocolId::Dls => &DLS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_resolves_to_a_matching_impl() {
        for p in ProtocolId::ALL {
            assert_eq!(p.imp().id(), p, "registry wired to the wrong impl");
        }
    }

    #[test]
    fn only_warden_uses_regions() {
        for p in ProtocolId::ALL {
            assert_eq!(p.imp().uses_regions(), p == ProtocolId::Warden);
        }
    }

    #[test]
    fn classification_is_protocol_specific() {
        let ward_gets = ProtocolEvent::GetS {
            core: 0,
            block: warden_mem::BlockAddr(1),
            dir: crate::system::DirKind::Uncached,
            ward: true,
        };
        assert_eq!(
            ProtocolId::Warden.imp().classify(&ward_gets),
            EventClass::Ward
        );
        assert_eq!(
            ProtocolId::SelfInv.imp().classify(&ward_gets),
            EventClass::Demand
        );
        let recon = ProtocolEvent::Reconcile {
            block: warden_mem::BlockAddr(1),
            holders: 2,
            writebacks: 1,
            drops: 1,
        };
        assert_eq!(ProtocolId::Warden.imp().classify(&recon), EventClass::Ward);
        assert_eq!(ProtocolId::SelfInv.imp().classify(&recon), EventClass::Sync);
    }
}
