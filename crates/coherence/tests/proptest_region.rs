//! Oracle-based property tests for the WARD region store: arbitrary
//! interleavings of overlapping adds, removes, `remove_covering` calls and
//! capacity overflows must keep the page index consistent with the live
//! region list, behave deterministically, and round-trip through the codec.

use proptest::prelude::*;
use warden_coherence::{AddRegion, RegionId, RegionStore};
use warden_mem::codec::{Decoder, Encoder};
use warden_mem::{Addr, PAGE_SIZE};

/// One operation against the store, in page units.
#[derive(Clone, Debug)]
enum Op {
    /// Add `[start_page, start_page + len)` in the near page universe.
    Add { start_page: u64, len: u64 },
    /// Add a region at a far-away base (exercises the `PageMap` spill path,
    /// like the fault injector's decoy regions do).
    AddFar { slot: u64, len: u64 },
    /// Remove the `k % len`-th live region (by position in id order).
    Remove { k: usize },
    /// Remove whatever region owns `page`, if any.
    RemoveCovering { page: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..12, 1u64..5).prop_map(|(start_page, len)| Op::Add { start_page, len }),
        (0u64..12, 1u64..5).prop_map(|(start_page, len)| Op::Add { start_page, len }),
        (0u64..4, 1u64..3).prop_map(|(slot, len)| Op::AddFar { slot, len }),
        (0usize..16).prop_map(|k| Op::Remove { k }),
        (0u64..16).prop_map(|page| Op::RemoveCovering { page }),
    ]
}

/// Far bases are ~40 GiB apart so they always land in `PageMap` spill
/// storage rather than the dense window.
fn far_base(slot: u64) -> u64 {
    (10_000_000 + slot * 10_000_000) * PAGE_SIZE
}

/// Naive reference: live regions as `(id, start, end)` byte ranges, in
/// insertion (= ascending id) order.
#[derive(Default)]
struct Model {
    live: Vec<(u64, u64, u64)>,
    next_id: u64,
    overflows: u64,
}

impl Model {
    /// The page's owner: the lowest live id whose range covers it.
    fn owner_of(&self, page_base: u64) -> Option<u64> {
        self.live
            .iter()
            .filter(|&&(_, s, e)| s <= page_base && page_base < e)
            .map(|&(id, _, _)| id)
            .min()
    }

    /// Every page base covered by at least one live region.
    fn covered_pages(&self) -> Vec<u64> {
        let mut pages: Vec<u64> = self
            .live
            .iter()
            .flat_map(|&(_, s, e)| (s / PAGE_SIZE..e / PAGE_SIZE).map(|p| p * PAGE_SIZE))
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }
}

/// Apply one op to both the store and the model, checking the op-level
/// results agree.
fn apply(op: &Op, store: &mut RegionStore, model: &mut Model, capacity: usize) {
    match *op {
        Op::Add { start_page, len }
        | Op::AddFar {
            slot: start_page,
            len,
        } => {
            let start = match op {
                Op::AddFar { slot, .. } => far_base(*slot),
                _ => start_page * PAGE_SIZE,
            };
            let end = start + len * PAGE_SIZE;
            let got = store.add(Addr(start), Addr(end));
            if model.live.len() == capacity {
                assert_eq!(got, AddRegion::Overflow);
                model.overflows += 1;
            } else {
                assert_eq!(got, AddRegion::Added(RegionId(model.next_id)));
                model.live.push((model.next_id, start, end));
                model.next_id += 1;
            }
        }
        Op::Remove { k } => {
            if model.live.is_empty() {
                // Any id is unknown; removal must be a no-op returning None.
                assert_eq!(store.remove(RegionId(model.next_id + 7)), None);
                return;
            }
            let (id, s, e) = model.live.remove(k % model.live.len());
            assert_eq!(store.remove(RegionId(id)), Some((Addr(s), Addr(e))));
        }
        Op::RemoveCovering { page } => {
            let base = page * PAGE_SIZE;
            let got = store.remove_covering(Addr(base));
            match model.owner_of(base) {
                Some(id) => {
                    let pos = model.live.iter().position(|&(i, _, _)| i == id).unwrap();
                    let (_, s, e) = model.live.remove(pos);
                    assert_eq!(got, Some((RegionId(id), Addr(s), Addr(e))));
                }
                None => assert_eq!(got, None),
            }
        }
    }
}

/// The store's page index matches the model: a page is mapped iff some live
/// region covers it, and its owner is the lowest live covering id.
fn check_consistency(store: &RegionStore, model: &Model) {
    assert_eq!(store.len(), model.live.len());
    assert_eq!(store.overflows(), model.overflows);
    for base in model.covered_pages() {
        assert_eq!(
            store.region_of(Addr(base)),
            model.owner_of(base).map(RegionId),
            "page base {base:#x}"
        );
    }
    // Pages nobody covers (near universe + far slots) must be absent.
    for page in 0..20u64 {
        let base = page * PAGE_SIZE;
        if model.owner_of(base).is_none() {
            assert!(!store.contains(Addr(base)));
        }
    }
    for slot in 0..4u64 {
        let base = far_base(slot);
        if model.owner_of(base).is_none() {
            assert!(!store.contains(Addr(base)));
        }
    }
}

fn encode(store: &RegionStore) -> Vec<u8> {
    let mut enc = Encoder::new();
    store.encode_into(&mut enc);
    enc.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of overlapping adds, removes, covering removes and
    /// overflows keeps page↔region bookkeeping consistent with the naive
    /// model, and the final state round-trips through the codec.
    #[test]
    fn interleavings_stay_consistent_and_round_trip(
        capacity in 1usize..6,
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut store = RegionStore::new(capacity);
        let mut model = Model::default();
        for op in &ops {
            apply(op, &mut store, &mut model, capacity);
            check_consistency(&store, &model);
        }

        let bytes = encode(&store);
        let mut dec = Decoder::new(&bytes);
        let restored = RegionStore::decode_from(&mut dec).expect("decodes");
        dec.finish().expect("no trailing bytes");
        // Canonical: re-encoding reproduces the bytes, and the restored
        // store answers lookups exactly like the original.
        prop_assert_eq!(encode(&restored), bytes);
        check_consistency(&restored, &model);
        prop_assert_eq!(restored.peak(), store.peak());
    }

    /// Two stores driven by the same operation sequence are observationally
    /// identical — including after removes that force overlapping pages to
    /// be reassigned (the old hash-scan reassignment was nondeterministic).
    #[test]
    fn identically_driven_stores_encode_identically(
        capacity in 1usize..6,
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut a = RegionStore::new(capacity);
        let mut b = RegionStore::new(capacity);
        let mut model_a = Model::default();
        let mut model_b = Model::default();
        for op in &ops {
            apply(op, &mut a, &mut model_a, capacity);
            apply(op, &mut b, &mut model_b, capacity);
        }
        prop_assert_eq!(encode(&a), encode(&b));
    }
}
