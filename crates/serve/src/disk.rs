//! The crash-safe disk tier behind the in-memory result cache.
//!
//! Two kinds of entry live in one directory, both wrapped in the
//! checkpoint module's checksummed frame (magic, version, length, payload,
//! FNV-1a-64 checksum — every strict prefix and every bit flip is a typed
//! error, never a panic):
//!
//! - **result entries** (`r-*.ent`): a finished [`OutcomeSummary`] plus
//!   the compute time it cost, keyed by the same `(options, trace,
//!   machine, protocol)` fingerprint as the memory cache — a server
//!   restart serves repeats bit-identically from disk with zero
//!   re-simulations;
//! - **checkpoint entries** (`c-*.ent`): a framed [`warden_sim`] engine
//!   snapshot taken every `checkpoint_every` scheduler steps while a
//!   simulation runs (and once more on cooperative cancellation). A later
//!   request for the same key whose result is gone — evicted, cancelled
//!   mid-flight, or lost to a crash — resumes from the newest frame
//!   instead of cycle 0. The engine's identity-bound resume re-verifies
//!   the program/machine/protocol/options fingerprints inside the frame,
//!   so a hash collision or stale file can never resume the wrong run.
//!
//! Writes go through [`Storage::write_atomic`] (temp file + `fsync` +
//! rename + parent `fsync`), so a crash at any point leaves either the old
//! entry or the new one, never a mixture. Opening the tier runs an
//! **fsck-style scan**: orphaned `*.tmp` files are swept, every entry is
//! read and verified, and anything truncated, corrupt, version-skewed or
//! misnamed is **quarantined** into a `quarantine/` subdirectory — the
//! scan never panics and never deletes bytes it cannot prove worthless.
//!
//! The tier enforces a byte budget with cost-aware eviction (value ×
//! size, like the memory cache): results weigh their measured compute
//! time, checkpoints the steps they save. Every storage failure degrades —
//! a typed counter bumps ([`DiskStats`]) and the caller recomputes; no
//! request ever fails because the disk did.

use crate::proto::OutcomeSummary;
use crate::server::CacheKey;
use crate::storage::{is_enospc, Storage};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use warden_mem::codec::{fnv1a64, CodecError, Decoder, Encoder};
use warden_sim::checkpoint::{self, CheckpointError};

/// How to run a [`DiskTier`].
#[derive(Clone, Debug)]
pub struct DiskTierConfig {
    /// Directory holding the entries (created if missing).
    pub dir: PathBuf,
    /// Byte budget across all entries; cost-aware eviction keeps residency
    /// under it. `u64::MAX` is unbounded.
    pub budget_bytes: u64,
    /// Scheduler steps between periodic checkpoint frames of a running
    /// simulation (`0` disables periodic frames; a cancelled run still
    /// leaves one final frame).
    pub checkpoint_every: u64,
}

/// Default disk budget: generous for summaries, bounded for soak runs.
pub const DEFAULT_DISK_BUDGET: u64 = 64 << 20;
/// Default steps between checkpoint frames — coarse enough to cost nothing
/// on tiny traces, fine enough that a paper-scale replay leaves several
/// frames behind.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 250_000;

impl DiskTierConfig {
    /// A tier rooted at `dir` with default budget and checkpoint cadence.
    pub fn at(dir: impl Into<PathBuf>) -> DiskTierConfig {
        DiskTierConfig {
            dir: dir.into(),
            budget_bytes: DEFAULT_DISK_BUDGET,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.budget_bytes == 0 {
            return Err("the disk budget must be non-zero (use u64::MAX for unbounded)".into());
        }
        Ok(())
    }
}

/// One decoded on-disk entry: the cache key it belongs to plus its body.
/// The codec is public so the fuzz suite can hold it to the
/// every-prefix-fails / every-corruption-is-typed contract directly.
#[derive(Clone, Debug, PartialEq)]
pub struct DiskEntry {
    /// The content address this entry serves.
    pub key: CacheKey,
    /// Result or checkpoint body.
    pub body: DiskBody,
}

/// The body of a [`DiskEntry`].
#[derive(Clone, Debug, PartialEq)]
pub enum DiskBody {
    /// A finished simulation summary and the compute time it cost (µs),
    /// which weighs the entry for eviction.
    Result {
        /// The served summary (boxed: it dwarfs the checkpoint variant).
        summary: Box<OutcomeSummary>,
        /// Leader compute time in microseconds.
        compute_us: u64,
    },
    /// A paused-engine frame taken `steps` into the replay. The bytes are
    /// themselves a complete checkpoint frame (identity header included).
    Checkpoint {
        /// Scheduler steps completed at the frame.
        steps: u64,
        /// The framed engine snapshot.
        frame: Vec<u8>,
    },
}

const KIND_RESULT: u8 = 0;
const KIND_CHECKPOINT: u8 = 1;

impl DiskEntry {
    /// Serialize into a checksummed file image (checkpoint frame around
    /// the entry payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match &self.body {
            DiskBody::Result { .. } => enc.put_u8(KIND_RESULT),
            DiskBody::Checkpoint { .. } => enc.put_u8(KIND_CHECKPOINT),
        }
        enc.put_u64(self.key.options_fp);
        enc.put_u64(self.key.trace_fp);
        enc.put_u64(self.key.machine_fp);
        enc.put_u8(self.key.protocol);
        match &self.body {
            DiskBody::Result {
                summary,
                compute_us,
            } => {
                summary.encode_into(&mut enc);
                enc.put_u64(*compute_us);
            }
            DiskBody::Checkpoint { steps, frame } => {
                enc.put_u64(*steps);
                enc.put_bytes(frame);
            }
        }
        checkpoint::frame(enc.bytes())
    }

    /// Decode a file image. Truncation, bit corruption, version skew and
    /// malformed payloads are all typed [`CheckpointError`]s — the fsck
    /// scan quarantines on any of them, it never panics.
    pub fn decode(bytes: &[u8]) -> Result<DiskEntry, CheckpointError> {
        let payload = checkpoint::unframe(bytes)?;
        let mut dec = Decoder::new(payload);
        let kind = dec.take_u8()?;
        let key = CacheKey {
            options_fp: dec.take_u64()?,
            trace_fp: dec.take_u64()?,
            machine_fp: dec.take_u64()?,
            protocol: dec.take_u8()?,
        };
        let body = match kind {
            KIND_RESULT => DiskBody::Result {
                summary: Box::new(OutcomeSummary::decode_from(&mut dec)?),
                compute_us: dec.take_u64()?,
            },
            KIND_CHECKPOINT => DiskBody::Checkpoint {
                steps: dec.take_u64()?,
                frame: dec.take_bytes()?.to_vec(),
            },
            t => {
                return Err(CheckpointError::Corrupt(CodecError::BadTag {
                    what: "disk entry kind",
                    tag: t as u64,
                }))
            }
        };
        dec.finish()?;
        Ok(DiskEntry { key, body })
    }
}

/// Counters the tier exports through the server's metrics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Result entries served.
    pub hits: u64,
    /// Result lookups that found nothing usable.
    pub misses: u64,
    /// Checkpoint frames served for a resume attempt.
    pub checkpoint_hits: u64,
    /// Checkpoint frames durably written.
    pub checkpoints_written: u64,
    /// Entries durably written (results + checkpoints).
    pub writes: u64,
    /// Entries moved to `quarantine/` (torn, corrupt, version-skewed,
    /// misnamed) — at open-time fsck or on a failed read.
    pub quarantined: u64,
    /// Entries evicted for the byte budget.
    pub evictions: u64,
    /// Bytes those evictions reclaimed.
    pub evicted_bytes: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// High-water residency.
    pub resident_peak: u64,
    /// Writes refused by a full disk (`ENOSPC`) — served degraded from
    /// memory + recompute instead.
    pub enospc_degraded: u64,
    /// Writes failed for any other reason (also degraded, never fatal).
    pub write_errors: u64,
    /// Reads that failed at the I/O layer (not decode failures — those
    /// quarantine).
    pub read_errors: u64,
}

struct Slot {
    bytes: u64,
    /// Eviction weight: what the entry saves × what it costs to keep.
    weight: u128,
    /// Insertion order, the tiebreak (older evicts first).
    seq: u64,
}

struct Index {
    slots: HashMap<String, Slot>,
    resident: u64,
    next_seq: u64,
}

/// The disk tier. All methods degrade on storage failure — they bump a
/// typed counter and return "miss"/unit, never an error the serving path
/// would have to surface.
pub struct DiskTier {
    cfg: DiskTierConfig,
    storage: Arc<dyn Storage>,
    index: Mutex<Index>,
    hits: AtomicU64,
    misses: AtomicU64,
    checkpoint_hits: AtomicU64,
    checkpoints_written: AtomicU64,
    writes: AtomicU64,
    quarantined: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    resident_peak: AtomicU64,
    enospc_degraded: AtomicU64,
    write_errors: AtomicU64,
    read_errors: AtomicU64,
}

const ENTRY_SUFFIX: &str = ".ent";
const TMP_SUFFIX: &str = ".tmp";
const QUARANTINE_DIR: &str = "quarantine";

fn key_hash(kind: u8, key: &CacheKey) -> u64 {
    let mut enc = Encoder::new();
    enc.put_u8(kind);
    enc.put_u64(key.options_fp);
    enc.put_u64(key.trace_fp);
    enc.put_u64(key.machine_fp);
    enc.put_u8(key.protocol);
    fnv1a64(enc.bytes())
}

fn entry_name(kind: u8, key: &CacheKey) -> String {
    let prefix = if kind == KIND_RESULT { 'r' } else { 'c' };
    format!("{prefix}-{:016x}{ENTRY_SUFFIX}", key_hash(kind, key))
}

fn body_kind(body: &DiskBody) -> u8 {
    match body {
        DiskBody::Result { .. } => KIND_RESULT,
        DiskBody::Checkpoint { .. } => KIND_CHECKPOINT,
    }
}

/// Eviction weight. Results weigh their measured compute time; a
/// checkpoint frame saves roughly its steps of replay, scaled down so a
/// frame never outweighs the finished result it is a prefix of.
fn entry_weight(body: &DiskBody, bytes: u64) -> u128 {
    let value = match body {
        DiskBody::Result { compute_us, .. } => (*compute_us).max(1),
        DiskBody::Checkpoint { steps, .. } => (*steps / 100).max(1),
    };
    value as u128 * bytes.max(1) as u128
}

impl DiskTier {
    /// Open (creating if missing) a tier rooted at `cfg.dir`, running the
    /// fsck scan: sweep orphaned temp files, verify every entry, and
    /// quarantine anything unreadable. Never panics on a damaged
    /// directory; only a genuinely unusable root (cannot create or list)
    /// is an error.
    pub fn open(cfg: DiskTierConfig, storage: Arc<dyn Storage>) -> Result<DiskTier, String> {
        cfg.validate()?;
        storage
            .create_dir_all(&cfg.dir)
            .map_err(|e| format!("cannot create disk tier at {}: {e}", cfg.dir.display()))?;
        storage
            .create_dir_all(&cfg.dir.join(QUARANTINE_DIR))
            .map_err(|e| format!("cannot create quarantine dir: {e}"))?;
        let tier = DiskTier {
            storage,
            index: Mutex::new(Index {
                slots: HashMap::new(),
                resident: 0,
                next_seq: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            checkpoint_hits: AtomicU64::new(0),
            checkpoints_written: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            resident_peak: AtomicU64::new(0),
            enospc_degraded: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
            cfg,
        };
        tier.fsck()?;
        Ok(tier)
    }

    /// The tier's root directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Steps between periodic checkpoint frames (0 = disabled).
    pub fn checkpoint_every(&self) -> u64 {
        self.cfg.checkpoint_every
    }

    fn fsck(&self) -> Result<(), String> {
        let paths = self
            .storage
            .list(&self.cfg.dir)
            .map_err(|e| format!("cannot scan disk tier {}: {e}", self.cfg.dir.display()))?;
        let mut scanned: Vec<(String, PathBuf)> = Vec::new();
        for path in paths {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name == QUARANTINE_DIR {
                continue;
            }
            if name.ends_with(TMP_SUFFIX) {
                // An interrupted write's orphan; the rename never happened,
                // so nothing references it.
                let _ = self.storage.remove(&path);
                continue;
            }
            if name.ends_with(ENTRY_SUFFIX) {
                scanned.push((name.to_string(), path));
            }
        }
        // Deterministic admission order regardless of directory iteration.
        scanned.sort();
        for (name, path) in scanned {
            match self.storage.read(&path) {
                Ok(bytes) => match DiskEntry::decode(&bytes) {
                    Ok(entry) if entry_name(body_kind(&entry.body), &entry.key) == name => {
                        self.admit(
                            &name,
                            bytes.len() as u64,
                            entry_weight(&entry.body, bytes.len() as u64),
                        );
                    }
                    // Decodes but under the wrong name (stale rename, hash
                    // drift): treat as damage, not data.
                    Ok(_) => self.quarantine(&name),
                    Err(_) => self.quarantine(&name),
                },
                Err(_) => {
                    self.read_errors.fetch_add(1, Ordering::Relaxed);
                    self.quarantine(&name);
                }
            }
        }
        Ok(())
    }

    /// Move a damaged entry aside (never delete what might be evidence);
    /// fall back to removal if even the rename fails.
    fn quarantine(&self, name: &str) {
        let from = self.cfg.dir.join(name);
        let to = self.cfg.dir.join(QUARANTINE_DIR).join(name);
        if self.storage.rename(&from, &to).is_err() {
            let _ = self.storage.remove(&from);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let mut idx = self.index.lock().expect("disk index lock");
        if let Some(slot) = idx.slots.remove(name) {
            idx.resident -= slot.bytes;
        }
    }

    fn admit(&self, name: &str, bytes: u64, weight: u128) {
        let mut idx = self.index.lock().expect("disk index lock");
        if let Some(old) = idx.slots.remove(name) {
            idx.resident -= old.bytes;
        }
        // Evict-before-insert, cheapest weight first (oldest on ties), so
        // residency never overshoots the budget.
        while idx.resident.saturating_add(bytes) > self.cfg.budget_bytes {
            let victim = idx
                .slots
                .iter()
                .min_by_key(|(_, s)| (s.weight, s.seq))
                .map(|(n, _)| n.clone());
            let Some(victim) = victim else { break };
            let slot = idx.slots.remove(&victim).expect("victim indexed");
            idx.resident -= slot.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.evicted_bytes.fetch_add(slot.bytes, Ordering::Relaxed);
            let _ = self.storage.remove(&self.cfg.dir.join(&victim));
        }
        if bytes > self.cfg.budget_bytes {
            // Larger than the whole budget: serve it, don't retain it.
            let _ = self.storage.remove(&self.cfg.dir.join(name));
            return;
        }
        let seq = idx.next_seq;
        idx.next_seq += 1;
        idx.slots
            .insert(name.to_string(), Slot { bytes, weight, seq });
        idx.resident += bytes;
        self.resident_peak
            .fetch_max(idx.resident, Ordering::Relaxed);
    }

    fn indexed(&self, name: &str) -> bool {
        self.index
            .lock()
            .expect("disk index lock")
            .slots
            .contains_key(name)
    }

    /// Read and verify the entry at `name`, quarantining on any damage.
    fn load(&self, name: &str, kind: u8, key: &CacheKey) -> Option<DiskEntry> {
        if !self.indexed(name) {
            return None;
        }
        match self.storage.read(&self.cfg.dir.join(name)) {
            Ok(bytes) => match DiskEntry::decode(&bytes) {
                Ok(entry) if entry.key == *key && body_kind(&entry.body) == kind => Some(entry),
                // A different key under this name is a hash collision
                // (last-writer-wins): a miss, not damage.
                Ok(_) => None,
                Err(_) => {
                    self.quarantine(name);
                    None
                }
            },
            Err(e) => {
                if e.kind() != io::ErrorKind::NotFound {
                    self.read_errors.fetch_add(1, Ordering::Relaxed);
                }
                self.quarantine(name);
                None
            }
        }
    }

    /// Look up a finished result. `None` is a miss (including every
    /// degraded read — the caller recomputes).
    pub fn result(&self, key: &CacheKey) -> Option<(OutcomeSummary, u64)> {
        let name = entry_name(KIND_RESULT, key);
        match self.load(&name, KIND_RESULT, key) {
            Some(DiskEntry {
                body:
                    DiskBody::Result {
                        summary,
                        compute_us,
                    },
                ..
            }) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((*summary, compute_us))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Look up the newest checkpoint frame for `key`.
    pub fn checkpoint(&self, key: &CacheKey) -> Option<(u64, Vec<u8>)> {
        let name = entry_name(KIND_CHECKPOINT, key);
        match self.load(&name, KIND_CHECKPOINT, key) {
            Some(DiskEntry {
                body: DiskBody::Checkpoint { steps, frame },
                ..
            }) => {
                self.checkpoint_hits.fetch_add(1, Ordering::Relaxed);
                Some((steps, frame))
            }
            _ => None,
        }
    }

    fn put(&self, key: &CacheKey, body: DiskBody) {
        let kind = body_kind(&body);
        let name = entry_name(kind, key);
        let entry = DiskEntry { key: *key, body };
        let image = entry.encode();
        let weight = entry_weight(&entry.body, image.len() as u64);
        match self.storage.write_atomic(&self.cfg.dir.join(&name), &image) {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                if kind == KIND_CHECKPOINT {
                    self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
                }
                self.admit(&name, image.len() as u64, weight);
            }
            Err(e) if is_enospc(&e) => {
                // Disk full: degrade — memory and recompute keep serving.
                self.enospc_degraded.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // write_atomic never damages the destination, so whatever
                // the index holds for this name is still the old, valid
                // entry (or nothing).
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Durably store a finished result, and drop the key's checkpoint —
    /// the frame is a strict prefix of work that is now complete.
    pub fn put_result(&self, key: &CacheKey, summary: &OutcomeSummary, compute_us: u64) {
        self.put(
            key,
            DiskBody::Result {
                summary: Box::new(summary.clone()),
                compute_us,
            },
        );
        self.discard_checkpoint(key);
    }

    /// Durably store (replacing) the key's checkpoint frame.
    pub fn put_checkpoint(&self, key: &CacheKey, steps: u64, frame: &[u8]) {
        self.put(
            key,
            DiskBody::Checkpoint {
                steps,
                frame: frame.to_vec(),
            },
        );
    }

    /// Remove the key's checkpoint entry (normal completion — not damage).
    pub fn discard_checkpoint(&self, key: &CacheKey) {
        let name = entry_name(KIND_CHECKPOINT, key);
        let mut idx = self.index.lock().expect("disk index lock");
        if let Some(slot) = idx.slots.remove(&name) {
            idx.resident -= slot.bytes;
        }
        drop(idx);
        let _ = self.storage.remove(&self.cfg.dir.join(&name));
    }

    /// Quarantine the key's checkpoint entry: the outer frame verified but
    /// the engine refused it (identity mismatch, inner corruption).
    pub fn quarantine_checkpoint(&self, key: &CacheKey) {
        self.quarantine(&entry_name(KIND_CHECKPOINT, key));
    }

    /// Entries currently indexed.
    pub fn len(&self) -> usize {
        self.index.lock().expect("disk index lock").slots.len()
    }

    /// Whether the tier holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DiskStats {
        let idx = self.index.lock().expect("disk index lock");
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            checkpoint_hits: self.checkpoint_hits.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            resident_bytes: idx.resident,
            resident_peak: self.resident_peak.load(Ordering::Relaxed),
            enospc_degraded: self.enospc_degraded.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            read_errors: self.read_errors.load(Ordering::Relaxed),
        }
    }
}
