//! A sharded, content-addressed result cache with single-flight semantics
//! and a cost-aware byte budget.
//!
//! The cache maps a key to a value computed exactly once: the first thread
//! to ask for a missing key becomes the **leader** and runs the compute
//! closure; every concurrent thread asking for the same key **coalesces**
//! onto that in-flight computation and blocks on a condvar until the leader
//! publishes the value. N identical requests therefore cost one
//! simulation — the batching mechanism behind `warden-serve`.
//!
//! Keys are spread over independently locked shards so unrelated requests
//! never contend; the per-key flight state lives outside the shard lock, so
//! a shard is only held for map lookups and residency accounting, never for
//! the seconds a simulation takes.
//!
//! This is the *memory* tier: a miss here does not necessarily mean a full
//! simulation. When a [`crate::DiskTier`] is configured, the leader's
//! compute closure first consults the durable tier (persisted result, then
//! prefix checkpoint) and only simulates from cycle 0 as a last resort —
//! see `server::leader_compute` and DESIGN.md §7i.
//!
//! # Failure and cancellation
//!
//! A leader that fails (typed error *or* panic — the closure runs under
//! `catch_unwind`, the same isolation discipline as the campaign runner's
//! workers) marks the flight failed, wakes every waiter with the error, and
//! removes the entry so the next request retries fresh; a failure is never
//! cached and a panicking leader can never strand its waiters.
//!
//! A leader whose computation is **cancelled** (its request's deadline
//! expired and the cooperative [`warden_sim::CancelToken`] fired) vacates
//! its slot the same way, but wakes waiters with [`FlightState::Cancelled`]
//! rather than an error: a waiter loops back and retries for leadership
//! under *its own* deadline instead of inheriting the leader's failure.
//! One slow client can therefore never poison an entry for patient ones.
//!
//! # Byte budget and eviction
//!
//! A [`SingleFlight::bounded`] cache carries a total byte budget, split
//! evenly across shards so every eviction decision is lock-local and
//! deterministic. Each published value is weighed by a caller-supplied
//! weigher; when a shard exceeds its slice of the budget it evicts
//! completed entries in ascending **cost weight** — measured compute time
//! (µs) × resident size (bytes), oldest first on ties — so the entries
//! that are cheapest to recompute are sacrificed first. In-flight
//! (pending) entries are never evicted: a leader's slot cannot be pulled
//! out from under its waiters. A value larger than a whole shard's budget
//! is served to its callers but never retained.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use warden_obs::AtomicGauge;

/// How a value was obtained from [`SingleFlight::get_or_compute`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// This call ran the compute closure (cache miss, leader).
    Fresh,
    /// This call waited on a concurrent identical computation.
    Coalesced,
    /// The value was already cached.
    Cached,
}

/// What a leader's compute closure produced.
pub enum Computed<V> {
    /// The computation completed; publish and (budget permitting) retain.
    Ready(V),
    /// The computation was cooperatively cancelled. The slot is vacated
    /// and waiters retry for leadership instead of inheriting a failure.
    Cancelled,
}

/// Why [`SingleFlight::get_or_compute_with`] returned no value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlightError {
    /// This caller's own computation reported [`Computed::Cancelled`].
    Cancelled,
    /// The computation failed (typed error or panic payload).
    Failed(String),
}

/// Monotonic counters and residency gauges describing cache behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Calls served from a completed entry.
    pub hits: u64,
    /// Calls that ran the compute closure.
    pub misses: u64,
    /// Calls that waited on an in-flight computation.
    pub coalesced: u64,
    /// Leader computations that failed (error or panic).
    pub failures: u64,
    /// Leader computations that were cooperatively cancelled.
    pub cancelled: u64,
    /// Entries removed (or refused retention) to stay within budget.
    pub evictions: u64,
    /// Total bytes released by evictions.
    pub evicted_bytes: u64,
    /// Bytes currently retained across all shards.
    pub resident_bytes: u64,
    /// High-water mark of [`CacheStats::resident_bytes`].
    pub resident_peak: u64,
}

enum FlightState<V> {
    Pending,
    Ready(V),
    Failed(String),
    Cancelled,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

struct Entry<V> {
    flight: Arc<Flight<V>>,
    /// Whether this entry's bytes are counted in the shard's residency
    /// (set when the leader publishes; pending entries are never retained
    /// and never evicted).
    retained: bool,
    bytes: u64,
    /// Eviction cost: compute µs × bytes. Lowest evicts first.
    weight: u128,
    /// Publication order, for deterministic ties (oldest evicts first).
    seq: u64,
}

struct ShardMap<K, V> {
    map: HashMap<K, Entry<V>>,
    resident: u64,
    seq: u64,
}

type Shard<K, V> = Mutex<ShardMap<K, V>>;
type Weigher<V> = Box<dyn Fn(&V) -> u64 + Send + Sync>;

/// The sharded single-flight cache. `V` is cloned out on every hit, so
/// callers wrap heavyweight values in an `Arc`.
pub struct SingleFlight<K, V> {
    shards: Box<[Shard<K, V>]>,
    /// Per-shard slice of the byte budget (`u64::MAX` when unbounded).
    shard_budget: u64,
    weigher: Weigher<V>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    failures: AtomicU64,
    cancelled: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    resident: AtomicGauge,
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    /// An unbounded cache with `shards` independently locked shards (at
    /// least one). Values are weighed by their shallow size, so residency
    /// is still reported, but nothing is ever evicted.
    pub fn new(shards: usize) -> SingleFlight<K, V> {
        SingleFlight::bounded(shards, u64::MAX, |_| std::mem::size_of::<V>() as u64)
    }

    /// A bounded cache: `budget_bytes` total, split evenly across `shards`
    /// (each shard evicts locally against its own slice, so decisions are
    /// deterministic and never take more than one lock). `weigher` reports
    /// each value's resident size in bytes.
    pub fn bounded(
        shards: usize,
        budget_bytes: u64,
        weigher: impl Fn(&V) -> u64 + Send + Sync + 'static,
    ) -> SingleFlight<K, V> {
        let shards = shards.max(1);
        let shard_budget = if budget_bytes == u64::MAX {
            u64::MAX
        } else {
            budget_bytes / shards as u64
        };
        SingleFlight {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(ShardMap {
                        map: HashMap::new(),
                        resident: 0,
                        seq: 0,
                    })
                })
                .collect(),
            shard_budget,
            weigher: Box::new(weigher),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            resident: AtomicGauge::new(),
        }
    }

    fn shard_of(&self, key: &K) -> &Shard<K, V> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Entries across all shards (in-flight computations count — they own
    /// a map slot from the moment a leader claims them).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").map.len())
            .sum()
    }

    /// Whether no entry exists in any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently retained across all shards.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.value()
    }

    /// High-water mark of resident bytes over the cache's lifetime.
    pub fn resident_peak(&self) -> u64 {
        self.resident.peak()
    }

    /// The per-shard slice of the byte budget (`u64::MAX` if unbounded).
    pub fn shard_budget(&self) -> u64 {
        self.shard_budget
    }

    /// A snapshot of the counters and residency gauges.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            resident_bytes: self.resident.value(),
            resident_peak: self.resident.peak(),
        }
    }

    /// Fetch `key`, computing it with `f` on a miss. Exactly one caller
    /// runs `f` per key; concurrent callers block until it publishes.
    /// Returns the value and how it was obtained. A failed computation
    /// (error or panic) propagates to the leader *and* every coalesced
    /// waiter, and leaves the key absent so a later call retries.
    pub fn get_or_compute(
        &self,
        key: K,
        f: impl FnOnce() -> Result<V, String>,
    ) -> Result<(V, Source), String> {
        self.get_or_compute_with(key, || f().map(Computed::Ready))
            .map_err(|e| match e {
                FlightError::Failed(msg) => msg,
                // Unreachable here: the adapter above never reports
                // `Computed::Cancelled`, and another leader's cancellation
                // makes this caller retry, not fail.
                FlightError::Cancelled => "computation cancelled".to_string(),
            })
    }

    /// [`SingleFlight::get_or_compute`] with cooperative cancellation: the
    /// closure may report [`Computed::Cancelled`] (its request's deadline
    /// expired), which vacates the slot and returns
    /// [`FlightError::Cancelled`] to *this* caller only. Waiters coalesced
    /// onto a cancelled leader loop back and retry for leadership under
    /// their own deadlines, so `f` must stay cheap to re-enter when the
    /// caller itself is already cancelled.
    pub fn get_or_compute_with(
        &self,
        key: K,
        f: impl FnOnce() -> Result<Computed<V>, String>,
    ) -> Result<(V, Source), FlightError> {
        let mut f = Some(f);
        loop {
            let (flight, leader) = {
                let mut shard = self.shard_of(&key).lock().expect("cache shard lock");
                match shard.map.get(&key) {
                    Some(entry) => (Arc::clone(&entry.flight), false),
                    None => {
                        let flight = Arc::new(Flight {
                            state: Mutex::new(FlightState::Pending),
                            cv: Condvar::new(),
                        });
                        shard.map.insert(
                            key.clone(),
                            Entry {
                                flight: Arc::clone(&flight),
                                retained: false,
                                bytes: 0,
                                weight: 0,
                                seq: 0,
                            },
                        );
                        (flight, true)
                    }
                }
            };

            if leader {
                let f = f.take().expect("a caller leads at most once");
                return self.lead(&key, &flight, f);
            }

            // Waiter: block on the flight, outside every shard lock. The
            // guard is dropped before the outer loop re-locks the shard.
            let mut state = flight.state.lock().expect("flight lock");
            let mut waited = false;
            loop {
                match &*state {
                    FlightState::Ready(v) => {
                        let v = v.clone();
                        if waited {
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                            return Ok((v, Source::Coalesced));
                        }
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((v, Source::Cached));
                    }
                    FlightState::Failed(msg) => {
                        return Err(FlightError::Failed(msg.clone()));
                    }
                    FlightState::Cancelled => {
                        // The leader's deadline expired, not ours: the
                        // slot is already vacant, so go claim it.
                        break;
                    }
                    FlightState::Pending => {
                        waited = true;
                        state = flight.cv.wait(state).expect("flight lock");
                    }
                }
            }
            drop(state);
        }
    }

    /// Run the compute closure as the flight's leader and publish the
    /// outcome (value, failure, or cancellation) to the map and waiters.
    fn lead(
        &self,
        key: &K,
        flight: &Arc<Flight<V>>,
        f: impl FnOnce() -> Result<Computed<V>, String>,
    ) -> Result<(V, Source), FlightError> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Err(format!("computation panicked: {msg}"))
        });
        let compute_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

        match result {
            Ok(Computed::Ready(v)) => {
                *flight.state.lock().expect("flight lock") = FlightState::Ready(v.clone());
                flight.cv.notify_all();
                self.retain(key, flight, &v, compute_us);
                Ok((v, Source::Fresh))
            }
            Ok(Computed::Cancelled) => {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                self.vacate(key, flight);
                *flight.state.lock().expect("flight lock") = FlightState::Cancelled;
                flight.cv.notify_all();
                Err(FlightError::Cancelled)
            }
            Err(msg) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                self.vacate(key, flight);
                *flight.state.lock().expect("flight lock") = FlightState::Failed(msg.clone());
                flight.cv.notify_all();
                Err(FlightError::Failed(msg))
            }
        }
    }

    /// Remove `key`'s slot if it still belongs to `flight`, *before* the
    /// terminal state is published, so nobody can coalesce onto a flight
    /// that will never succeed.
    fn vacate(&self, key: &K, flight: &Arc<Flight<V>>) {
        let mut shard = self.shard_of(key).lock().expect("cache shard lock");
        if shard
            .map
            .get(key)
            .is_some_and(|e| Arc::ptr_eq(&e.flight, flight))
        {
            shard.map.remove(key);
        }
    }

    /// Account a freshly published value against the shard's budget slice
    /// and evict the cheapest completed entries until it fits. A value
    /// that alone exceeds the slice is served but never retained.
    fn retain(&self, key: &K, flight: &Arc<Flight<V>>, v: &V, compute_us: u64) {
        let bytes = (self.weigher)(v);
        let weight = u128::from(compute_us.max(1)) * u128::from(bytes.max(1));
        let mut shard = self.shard_of(key).lock().expect("cache shard lock");
        if !shard
            .map
            .get(key)
            .is_some_and(|e| Arc::ptr_eq(&e.flight, flight))
        {
            return; // Slot reassigned (cannot happen today, but stay safe).
        }
        if bytes > self.shard_budget {
            shard.map.remove(key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.evicted_bytes.fetch_add(bytes, Ordering::Relaxed);
            return;
        }
        // Make room *before* accounting the new entry, so the resident
        // gauge — and therefore its peak — never exceeds the budget, even
        // transiently. `bytes <= shard_budget` here, so evicting retained
        // entries (resident reaches 0 in the limit) always makes it fit.
        while shard.resident.saturating_add(bytes) > self.shard_budget {
            let victim = shard
                .map
                .iter()
                .filter(|(_, e)| e.retained)
                .min_by_key(|(_, e)| (e.weight, e.seq))
                .map(|(k, _)| k.clone())
                .expect("resident > 0 implies a retained entry");
            let evicted = shard.map.remove(&victim).expect("victim present");
            shard.resident -= evicted.bytes;
            self.resident.sub(evicted.bytes);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.evicted_bytes
                .fetch_add(evicted.bytes, Ordering::Relaxed);
        }
        let seq = shard.seq;
        shard.seq += 1;
        let entry = shard.map.get_mut(key).expect("slot verified above");
        entry.retained = true;
        entry.bytes = bytes;
        entry.weight = weight;
        entry.seq = seq;
        shard.resident += bytes;
        self.resident.add(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn value_computed_once_then_cached() {
        let cache: SingleFlight<u64, u64> = SingleFlight::new(4);
        let probe = AtomicUsize::new(0);
        let compute = || {
            probe.fetch_add(1, Ordering::SeqCst);
            Ok(42)
        };
        let (v, src) = cache.get_or_compute(7, compute).unwrap();
        assert_eq!((v, src), (42, Source::Fresh));
        let (v, src) = cache
            .get_or_compute(7, || panic!("must not recompute"))
            .unwrap();
        assert_eq!((v, src), (42, Source::Cached));
        assert_eq!(probe.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.failures), (1, 1, 0));
        assert_eq!(s.resident_bytes, std::mem::size_of::<u64>() as u64);
    }

    #[test]
    fn failure_is_not_cached_and_retries_fresh() {
        let cache: SingleFlight<u64, u64> = SingleFlight::new(4);
        let err = cache
            .get_or_compute(1, || Err("boom".to_string()))
            .unwrap_err();
        assert_eq!(err, "boom");
        assert!(cache.is_empty(), "a failure must vacate the slot");
        let (v, src) = cache.get_or_compute(1, || Ok(9)).unwrap();
        assert_eq!((v, src), (9, Source::Fresh));
        assert_eq!(cache.stats().failures, 1);
    }

    #[test]
    fn panicking_leader_fails_typed_and_vacates() {
        let cache: SingleFlight<u64, u64> = SingleFlight::new(1);
        let err = cache
            .get_or_compute(3, || panic!("exploding compute"))
            .unwrap_err();
        assert!(err.contains("exploding compute"), "{err}");
        assert!(cache.is_empty());
        // The key is usable again afterwards.
        assert_eq!(cache.get_or_compute(3, || Ok(1)).unwrap().0, 1);
    }

    #[test]
    fn concurrent_identical_requests_coalesce() {
        let cache: Arc<SingleFlight<u64, u64>> = Arc::new(SingleFlight::new(4));
        let probe = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let probe = Arc::clone(&probe);
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    gate.wait();
                    let (v, _) = cache
                        .get_or_compute(5, || {
                            probe.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough for the
                            // other threads to pile on.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(77)
                        })
                        .unwrap();
                    v
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 77);
        }
        assert_eq!(
            probe.load(Ordering::SeqCst),
            1,
            "single-flight: one compute for 8 concurrent callers"
        );
    }

    #[test]
    fn cancelled_leader_vacates_and_caller_sees_cancelled() {
        let cache: SingleFlight<u64, u64> = SingleFlight::new(2);
        let err = cache
            .get_or_compute_with(9, || Ok(Computed::Cancelled))
            .unwrap_err();
        assert_eq!(err, FlightError::Cancelled);
        assert!(cache.is_empty(), "a cancellation must vacate the slot");
        let s = cache.stats();
        assert_eq!((s.cancelled, s.failures), (1, 0));
        // The key is immediately computable by the next caller.
        let (v, src) = cache
            .get_or_compute_with(9, || Ok(Computed::Ready(11)))
            .unwrap();
        assert_eq!((v, src), (11, Source::Fresh));
    }

    #[test]
    fn waiters_on_a_cancelled_leader_retry_for_leadership() {
        let cache: Arc<SingleFlight<u64, u64>> = Arc::new(SingleFlight::new(1));
        let entered = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let cache = Arc::clone(&cache);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                cache.get_or_compute_with(1, || {
                    entered.wait(); // waiters can now pile on
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    Ok(Computed::Cancelled)
                })
            })
        };
        entered.wait();
        // This caller coalesces onto the doomed leader, then must retry
        // and win the slot with its own (successful) computation.
        let (v, src) = cache
            .get_or_compute_with(1, || Ok(Computed::Ready(123)))
            .unwrap();
        assert_eq!(v, 123);
        assert_eq!(src, Source::Fresh, "the retry runs its own compute");
        assert_eq!(leader.join().unwrap(), Err(FlightError::Cancelled));
        assert_eq!(cache.stats().cancelled, 1);
    }

    #[test]
    fn budget_evicts_cheapest_weight_first() {
        // One shard, 100-byte budget. Weight = compute µs × bytes; entry 1
        // is made expensive (a deliberate 10 ms compute) so the cheap
        // 30-byte entry is deterministically the lighter weight.
        let cache: SingleFlight<u64, Vec<u8>> =
            SingleFlight::bounded(1, 100, |v: &Vec<u8>| v.len() as u64);
        cache
            .get_or_compute(1, || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                Ok(vec![0u8; 60])
            })
            .unwrap();
        cache.get_or_compute(2, || Ok(vec![0u8; 30])).unwrap();
        assert_eq!(cache.resident_bytes(), 90);
        // 40 more bytes forces an eviction; total would be 130 > 100.
        cache.get_or_compute(3, || Ok(vec![0u8; 40])).unwrap();
        let s = cache.stats();
        assert!(s.evictions >= 1, "{s:?}");
        assert!(
            cache.resident_bytes() <= 100,
            "budget exceeded: {} resident",
            cache.resident_bytes()
        );
        assert!(
            cache.resident_peak() <= 100,
            "peak {} > budget — eviction must make room before insert",
            cache.resident_peak()
        );
        // The 30-byte entry is the lightest weight (same-scale compute
        // times, smallest size), so it is the first sacrificed.
        let (_, src) = cache.get_or_compute(1, || Ok(vec![0u8; 60])).unwrap();
        assert_eq!(src, Source::Cached, "heavy entry must survive eviction");
    }

    #[test]
    fn oversize_value_is_served_but_not_retained() {
        let cache: SingleFlight<u64, Vec<u8>> =
            SingleFlight::bounded(1, 64, |v: &Vec<u8>| v.len() as u64);
        let (v, src) = cache.get_or_compute(1, || Ok(vec![7u8; 1000])).unwrap();
        assert_eq!((v.len(), src), (1000, Source::Fresh));
        assert!(cache.is_empty(), "oversize entries must not be retained");
        assert_eq!(cache.resident_bytes(), 0);
        let s = cache.stats();
        assert_eq!((s.evictions, s.evicted_bytes), (1, 1000));
        // A second request recomputes — the value was never cached.
        let (_, src) = cache.get_or_compute(1, || Ok(vec![7u8; 1000])).unwrap();
        assert_eq!(src, Source::Fresh);
    }

    #[test]
    fn in_flight_entries_are_never_evicted() {
        // A pending leader occupies a slot with zero resident bytes; a
        // concurrent publish that overflows the budget must evict around
        // it, never through it.
        let cache: Arc<SingleFlight<u64, Vec<u8>>> =
            Arc::new(SingleFlight::bounded(1, 64, |v: &Vec<u8>| v.len() as u64));
        let entered = Arc::new(std::sync::Barrier::new(2));
        let release = Arc::new(std::sync::Barrier::new(2));
        let pending = {
            let cache = Arc::clone(&cache);
            let entered = Arc::clone(&entered);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                cache.get_or_compute(1, || {
                    entered.wait();
                    release.wait(); // stay in flight while keys 2, 3 publish
                    Ok(vec![1u8; 10])
                })
            })
        };
        entered.wait();
        cache.get_or_compute(2, || Ok(vec![2u8; 40])).unwrap();
        // 40 more bytes overflow the 64-byte budget. The only retained
        // entry is key 2; the eviction loop must take it and skip the
        // pending flight for key 1.
        cache.get_or_compute(3, || Ok(vec![3u8; 40])).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2, "pending flight + key 3 must survive");
        release.wait();
        let (v, _) = pending.join().unwrap().unwrap();
        assert_eq!(v.len(), 10);
        assert_eq!(cache.resident_bytes(), 50); // key 3 (40) + key 1 (10)
    }
}
