//! A sharded, content-addressed result cache with single-flight semantics.
//!
//! The cache maps a key to a value computed exactly once: the first thread
//! to ask for a missing key becomes the **leader** and runs the compute
//! closure; every concurrent thread asking for the same key **coalesces**
//! onto that in-flight computation and blocks on a condvar until the leader
//! publishes the value. N identical requests therefore cost one
//! simulation — the batching mechanism behind `warden-serve`.
//!
//! Keys are spread over independently locked shards so unrelated requests
//! never contend; the per-key flight state lives outside the shard lock, so
//! a shard is only held for map lookups, never for the seconds a
//! simulation takes.
//!
//! A leader that fails (typed error *or* panic — the closure runs under
//! `catch_unwind`, the same isolation discipline as the campaign runner's
//! workers) marks the flight failed, wakes every waiter with the error, and
//! removes the entry so the next request retries fresh; a failure is never
//! cached and a panicking leader can never strand its waiters.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a value was obtained from [`SingleFlight::get_or_compute`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// This call ran the compute closure (cache miss, leader).
    Fresh,
    /// This call waited on a concurrent identical computation.
    Coalesced,
    /// The value was already cached.
    Cached,
}

/// Monotonic counters describing cache behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Calls served from a completed entry.
    pub hits: u64,
    /// Calls that ran the compute closure.
    pub misses: u64,
    /// Calls that waited on an in-flight computation.
    pub coalesced: u64,
    /// Leader computations that failed (error or panic).
    pub failures: u64,
}

enum FlightState<V> {
    Pending,
    Ready(V),
    Failed(String),
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

type Shard<K, V> = Mutex<HashMap<K, Arc<Flight<V>>>>;

/// The sharded single-flight cache. `V` is cloned out on every hit, so
/// callers wrap heavyweight values in an `Arc`.
pub struct SingleFlight<K, V> {
    shards: Box<[Shard<K, V>]>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    failures: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    /// A cache with `shards` independently locked shards (at least one).
    pub fn new(shards: usize) -> SingleFlight<K, V> {
        let shards = shards.max(1);
        SingleFlight {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> &Shard<K, V> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Completed entries across all shards (in-flight computations count —
    /// they own a map slot from the moment a leader claims them).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").len())
            .sum()
    }

    /// Whether no entry exists in any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the hit/miss/coalesce/failure counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
        }
    }

    /// Fetch `key`, computing it with `f` on a miss. Exactly one caller
    /// runs `f` per key; concurrent callers block until it publishes.
    /// Returns the value and how it was obtained. A failed computation
    /// (error or panic) propagates to the leader *and* every coalesced
    /// waiter, and leaves the key absent so a later call retries.
    pub fn get_or_compute(
        &self,
        key: K,
        f: impl FnOnce() -> Result<V, String>,
    ) -> Result<(V, Source), String> {
        let (flight, leader) = {
            let mut shard = self.shard_of(&key).lock().expect("cache shard lock");
            match shard.get(&key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending),
                        cv: Condvar::new(),
                    });
                    shard.insert(key.clone(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };

        if leader {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let result = catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                Err(format!("computation panicked: {msg}"))
            });
            match result {
                Ok(v) => {
                    *flight.state.lock().expect("flight lock") = FlightState::Ready(v.clone());
                    flight.cv.notify_all();
                    Ok((v, Source::Fresh))
                }
                Err(msg) => {
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    // Vacate the slot *before* waking waiters so nobody can
                    // coalesce onto a flight that will never succeed.
                    let mut shard = self.shard_of(&key).lock().expect("cache shard lock");
                    if shard.get(&key).is_some_and(|cur| Arc::ptr_eq(cur, &flight)) {
                        shard.remove(&key);
                    }
                    drop(shard);
                    *flight.state.lock().expect("flight lock") = FlightState::Failed(msg.clone());
                    flight.cv.notify_all();
                    Err(msg)
                }
            }
        } else {
            let mut state = flight.state.lock().expect("flight lock");
            let mut waited = false;
            loop {
                match &*state {
                    FlightState::Ready(v) => {
                        let v = v.clone();
                        if waited {
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                            return Ok((v, Source::Coalesced));
                        }
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((v, Source::Cached));
                    }
                    FlightState::Failed(msg) => return Err(msg.clone()),
                    FlightState::Pending => {
                        waited = true;
                        state = flight.cv.wait(state).expect("flight lock");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn value_computed_once_then_cached() {
        let cache: SingleFlight<u64, u64> = SingleFlight::new(4);
        let probe = AtomicUsize::new(0);
        let compute = || {
            probe.fetch_add(1, Ordering::SeqCst);
            Ok(42)
        };
        let (v, src) = cache.get_or_compute(7, compute).unwrap();
        assert_eq!((v, src), (42, Source::Fresh));
        let (v, src) = cache
            .get_or_compute(7, || panic!("must not recompute"))
            .unwrap();
        assert_eq!((v, src), (42, Source::Cached));
        assert_eq!(probe.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.failures), (1, 1, 0));
    }

    #[test]
    fn failure_is_not_cached_and_retries_fresh() {
        let cache: SingleFlight<u64, u64> = SingleFlight::new(4);
        let err = cache
            .get_or_compute(1, || Err("boom".to_string()))
            .unwrap_err();
        assert_eq!(err, "boom");
        assert!(cache.is_empty(), "a failure must vacate the slot");
        let (v, src) = cache.get_or_compute(1, || Ok(9)).unwrap();
        assert_eq!((v, src), (9, Source::Fresh));
        assert_eq!(cache.stats().failures, 1);
    }

    #[test]
    fn panicking_leader_fails_typed_and_vacates() {
        let cache: SingleFlight<u64, u64> = SingleFlight::new(1);
        let err = cache
            .get_or_compute(3, || panic!("exploding compute"))
            .unwrap_err();
        assert!(err.contains("exploding compute"), "{err}");
        assert!(cache.is_empty());
        // The key is usable again afterwards.
        assert_eq!(cache.get_or_compute(3, || Ok(1)).unwrap().0, 1);
    }

    #[test]
    fn concurrent_identical_requests_coalesce() {
        let cache: Arc<SingleFlight<u64, u64>> = Arc::new(SingleFlight::new(4));
        let probe = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let probe = Arc::clone(&probe);
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    gate.wait();
                    let (v, _) = cache
                        .get_or_compute(5, || {
                            probe.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough for the
                            // other threads to pile on.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(77)
                        })
                        .unwrap();
                    v
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 77);
        }
        assert_eq!(
            probe.load(Ordering::SeqCst),
            1,
            "single-flight: one compute for 8 concurrent callers"
        );
    }
}
