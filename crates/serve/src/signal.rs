//! Minimal SIGTERM-to-drain plumbing for serve daemons.
//!
//! The workspace vendors no `libc`, so this module carries its own
//! one-symbol binding to the C library's `signal(2)` wrapper (present in
//! every process `std` links on Unix). The handler does the only thing a
//! signal handler safely can: store to a `static` atomic. Daemons poll
//! [`drain_requested`] from their control loop and run the ordinary
//! graceful drain — SIGTERM becomes indistinguishable from an operator
//! typing the quit command.
//!
//! This is deliberately the *only* `unsafe` code in the workspace, and it
//! is two expressions long: a handler installation and an `extern` fn
//! that stores a boolean.

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::*;

    const SIGTERM: i32 = 15;
    /// `SIG_ERR` as glibc and musl define it.
    const SIG_ERR: usize = usize::MAX;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigterm(_signum: i32) {
        // Async-signal-safe: one relaxed store, nothing else.
        DRAIN.store(true, Ordering::Relaxed);
    }

    pub fn install() -> bool {
        // SAFETY: `signal` is the C library's own wrapper (std already
        // links it); the handler only stores to a static atomic, which is
        // async-signal-safe.
        unsafe { signal(SIGTERM, on_sigterm as *const () as usize) != SIG_ERR }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() -> bool {
        false
    }
}

/// Install the SIGTERM handler. Returns `false` (and changes nothing) on
/// platforms without Unix signals or if installation fails; callers keep
/// working, they just cannot be drained by signal.
pub fn install_sigterm_drain() -> bool {
    imp::install()
}

/// Whether a SIGTERM has arrived since [`install_sigterm_drain`]. Sticky:
/// once true, stays true for the life of the process.
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_install_reports() {
        // The flag must start clear; installation succeeds on Unix. (The
        // handler itself is exercised by the serve-daemon integration
        // path, not by raising signals inside the test harness.)
        assert!(!drain_requested() || cfg!(not(unix)));
        if cfg!(unix) {
            assert!(install_sigterm_drain());
        }
    }
}
